// ConcurrentHashMap — open addressing over TaggedBucket: the key claim
// arbitrates which key owns a bucket (arbitrary-CW insert race, as in
// ConcurrentHashSet) and the bucket's LiveTag arbitrates which *write* —
// upsert or erase — commits per round (paper-faithful CAS-LT, as in
// ConWriteCell). The two arbitrations compose: for N threads upserting
// and erasing the same key in round r, exactly one claims the bucket (if
// it was empty) and exactly one — not necessarily the same thread — wins
// the round-r write; everyone else returns kLost wait-free and reads the
// committed outcome after the step barrier.
//
// Values are plain (non-atomic) payloads published by the step barrier,
// the exact ConWriteCell contract: find() is valid from serial code or
// after the barrier that closed the writing round, not mid-round.
//
// Lifecycle: an erase commits a *tombstone* — the key keeps its bucket
// (probe chains must keep walking through it) but the LiveTag's liveness
// bit goes dead, so find()/size() no longer see it while a later round's
// upsert can revive it in place. Tombstones are reclaimed by the same
// cooperative chunk-swept migration that grows the table, run toward a
// target sized from the live count: dead buckets are simply not migrated.
// Dropping them is sound because migrations happen between rounds and
// rounds are strictly increasing, so a dropped bucket's committed round
// can never be raced again. needs_reclaim() watches the tombstone-ratio
// watermark (HashConfig::reclaim_ratio) for the step-boundary trigger.
//
// Probing shares the set's control-byte sidecar (hash_common.hpp): one
// byte per bucket — kCtrlEmpty, kCtrlTombstone while the bucket's LiveTag
// is dead, or the owning key's H2 fingerprint while it is live — scanned
// 16 lanes per util::Group snapshot. The byte is published with a release
// store only by the thread whose RMW made the liveness transition (the
// claim winner, the revive winner, the erase's round winner), and it is
// only ever a filter: every fingerprint hit re-runs the authoritative
// claim/tag protocol, and empty/tombstone lanes stay candidates, so stale
// bytes cost extra verifies, never wrong answers.
#pragma once

#include <omp.h>

#include <atomic>
#include <bit>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/tagged_bucket.hpp"
#include "ds/hash_common.hpp"
#include "util/aligned_buffer.hpp"
#include "util/sanitizer.hpp"
#include "util/simd.hpp"

namespace crcw::ds {

/// Outcome of a round-arbitrated upsert or erase.
enum class MapUpsert {
  kWon,   ///< this thread's write is the round's committed one
  kLost,  ///< another thread won this (key, round); read it post-barrier
  kFull,  ///< probe walk exhausted: grow, then retry
};

template <typename Key, typename Value>
  requires std::unsigned_integral<Key> && std::is_nothrow_default_constructible_v<Value>
class ConcurrentHashMap {
 public:
  static constexpr Key kEmptyKey = TaggedBucket<Key>::kEmptyKey;

  explicit ConcurrentHashMap(std::uint64_t capacity, HashConfig cfg = {})
      : cfg_(std::move(cfg)),
        telemetry_(cfg_),
        buckets_(bucket_count_for(required_buckets(capacity, cfg_.max_load))),
        ctrl_(buckets_.size()),  // value-initialised atomics = all kCtrlEmpty
        mask_(buckets_.size() - 1) {}

  [[nodiscard]] std::uint64_t bucket_count() const noexcept { return buckets_.size(); }

  /// Live keys only: claimed buckets minus tombstones. Exact from serial
  /// code or post-barrier.
  [[nodiscard]] std::uint64_t size() const noexcept {
    return occupied_.total() - dead_.total();
  }
  /// Claimed buckets, live or dead — what probe-chain length (and thus
  /// needs_grow) actually depends on.
  [[nodiscard]] std::uint64_t occupied() const noexcept { return occupied_.total(); }
  /// Current tombstones (erased keys still holding their buckets).
  [[nodiscard]] std::uint64_t tombstones() const noexcept { return dead_.total(); }

  /// First-writer-wins insert (no round): the claim winner — or, for a
  /// tombstoned key, the winner of the idempotent revive — stores `v`;
  /// everyone else observes the key as present. This is the build-phase
  /// primitive (semijoin's arbitrary pick among duplicate build keys).
  /// Returns kInserted for the winner, kFound otherwise; value is
  /// barrier-published.
  SetInsert insert_first(Key key, const Value& v) {
    Bucket* bucket = nullptr;
    std::uint64_t b = 0;
    const SetInsert r = claim_bucket(key, bucket, b);
    if (r == SetInsert::kInserted) {
      // Fresh claims are born live (LiveTag's polarity): the build-phase
      // fast path is one CAS plus the barrier-published store, no tag RMW.
      const util::TsanIgnoreWritesScope published_by_barrier;
      bucket->value = v;
      return r;
    }
    if (r == SetInsert::kFound && !bucket->tagged.tag().live()) {
      telemetry_.cas();
      if (bucket->tagged.tag().mark_live()) {  // revive: first flipper wins
        dead_.sub(1);
        ctrl_[b].store(ctrl_h2(mix64(key)), std::memory_order_release);
        const util::TsanIgnoreWritesScope published_by_barrier;
        bucket->value = v;
        return SetInsert::kInserted;
      }
    }
    return r;
  }

  /// Round-arbitrated upsert: claims the bucket if empty, then races the
  /// bucket's LiveTag with CAS-LT for round `round`. One winner per
  /// (key, round) — among upserts AND erases — stores `v`; rounds must be
  /// strictly increasing per the LiveTag contract (use one counter per
  /// map, advanced between barriers).
  MapUpsert upsert(round_t round, Key key, const Value& v) {
    Bucket* bucket = nullptr;
    std::uint64_t b = 0;
    if (claim_bucket(key, bucket, b) == SetInsert::kFull) return MapUpsert::kFull;
    bool was_live = false;
    if (!acquire_round(*bucket, round, /*live=*/true, was_live)) return MapUpsert::kLost;
    if (!was_live) {  // tombstone revive: the round winner republishes the fp
      dead_.sub(1);
      ctrl_[b].store(ctrl_h2(mix64(key)), std::memory_order_release);
    }
    const util::TsanIgnoreWritesScope published_by_barrier;
    bucket->value = v;
    return MapUpsert::kWon;
  }

  /// Winner-computes upsert: the factory runs only in the winning thread.
  template <typename Factory>
    requires std::is_invocable_r_v<Value, Factory>
  MapUpsert upsert_with(round_t round, Key key, Factory&& make) {
    Bucket* bucket = nullptr;
    std::uint64_t b = 0;
    if (claim_bucket(key, bucket, b) == SetInsert::kFull) return MapUpsert::kFull;
    bool was_live = false;
    if (!acquire_round(*bucket, round, /*live=*/true, was_live)) return MapUpsert::kLost;
    if (!was_live) {
      dead_.sub(1);
      ctrl_[b].store(ctrl_h2(mix64(key)), std::memory_order_release);
    }
    Value made = std::forward<Factory>(make)();
    const util::TsanIgnoreWritesScope published_by_barrier;
    bucket->value = std::move(made);
    return MapUpsert::kWon;
  }

  /// Round-arbitrated erase: the same CAS-LT race as upsert, committing a
  /// tombstone instead of a value. One winner per (key, round) across both
  /// op kinds — a same-round erase/upsert pair on one key resolves to
  /// whichever CAS landed, exactly the paper's arbitrary-CW pick. Erasing
  /// an absent key claims (and immediately tombstones) a bucket so the
  /// arbitration stays symmetric — a same-round upsert loser must observe
  /// the erase's commit on the key's tag; the wasted bucket is recycled by
  /// the next reclaim sweep.
  MapUpsert erase(round_t round, Key key) {
    Bucket* bucket = nullptr;
    std::uint64_t b = 0;
    if (claim_bucket(key, bucket, b) == SetInsert::kFull) return MapUpsert::kFull;
    bool was_live = false;
    if (!acquire_round(*bucket, round, /*live=*/false, was_live)) return MapUpsert::kLost;
    if (was_live) {  // live → dead: the round winner publishes the tombstone byte
      dead_.add(1);
      ctrl_[b].store(kCtrlTombstone, std::memory_order_release);
    }
    telemetry_.tombstone();
    return MapUpsert::kWon;
  }

  /// Pointer to the committed value for `key`, or nullptr (absent or
  /// erased). Read from serial code or after the barrier that closed the
  /// writing round.
  [[nodiscard]] const Value* find(Key key) const noexcept {
    const Bucket* bucket = find_bucket(key);
    if (bucket == nullptr || !bucket->tagged.tag().live()) return nullptr;
    return &bucket->value;
  }

  [[nodiscard]] bool contains(Key key) const noexcept { return find(key) != nullptr; }

  /// Serial/post-barrier iteration over committed live (key, value) pairs.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Bucket& bucket : buckets_) {
      const Key k = bucket.tagged.key();
      if (k != kEmptyKey && bucket.tagged.tag().live()) fn(k, bucket.value);
    }
  }

  /// One entry of a cut-predicated scan: the committed value and the round
  /// that committed it (the round travels into snapshot files so restore
  /// can stamp the LiveTag exactly).
  struct ScanEntry {
    Key key;
    Value value;
    round_t round;
  };

  /// Cut-predicated scan: calls fn(key, value, round) for every entry whose
  /// committed write is live with round <= cut_round. Safe CONCURRENTLY
  /// with writers committing rounds > cut_round — the consistent-snapshot
  /// read the round structure makes cheap (Blelloch & Wei's atomic-copy
  /// observation: a version word beside every slot buys multi-word
  /// consistency with plain loads). Per bucket it is a seqlock-shaped
  /// double read of the packed (round, live) word around the plain value
  /// load:
  ///
  ///   p1 = packed; v = value; fence(acquire); p2 = packed;
  ///   emit iff p1 == p2 && live(p1) && round(p1) <= cut_round
  ///
  /// Soundness: a CAS-LT writer commits its (round, live) word BEFORE its
  /// value store, and rounds are strictly increasing, so p1 == p2 with
  /// round <= cut proves no post-cut writer touched the bucket across the
  /// value load; p1 != p2 (or a post-cut round in either) means the entry
  /// was overwritten after the cut and is excluded either way. NOT safe
  /// concurrently with grow/reclaim (the swap frees this array) — cut
  /// holders must keep migrations parked, which is exactly what the serve
  /// schedulers' held-cut discipline does.
  template <typename Fn>
  void for_each_at(round_t cut_round, Fn&& fn) const {
    for (const Bucket& bucket : buckets_) {
      const Key k = bucket.tagged.key();
      if (k == kEmptyKey) continue;
      const std::uint64_t p1 = bucket.tagged.tag().packed();
      if ((p1 & 1) == 0 || (p1 >> 1) > cut_round) continue;
      const Value v = bucket.value;  // racy iff p2 below disagrees; then dropped
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t p2 = bucket.tagged.tag().packed();
      if (p1 == p2) fn(k, v, static_cast<round_t>(p1 >> 1));
    }
  }

  /// Collecting wrapper over for_each_at — the checkpoint writer's unit of
  /// work. Same concurrency contract.
  [[nodiscard]] std::vector<ScanEntry> scan_at(round_t cut_round) const {
    std::vector<ScanEntry> out;
    out.reserve(size());
    for_each_at(cut_round, [&out](Key k, const Value& v, round_t r) {
      out.push_back(ScanEntry{k, v, r});
    });
    return out;
  }

  /// Serial restore of one committed (key, value, round) entry into this
  /// table — the snapshot restore path. Claims the bucket and stamps the
  /// packed LiveTag directly (like the migration sweep carries it), so
  /// CAS-LT writes at rounds > `round` behave exactly as they would have
  /// against the original table. Returns false iff the probe walk
  /// exhausted (table sized too small for the snapshot).
  bool restore_slot(Key key, const Value& v, round_t round) {
    Bucket* bucket = nullptr;
    std::uint64_t b = 0;
    const SetInsert r = claim_bucket(key, bucket, b);
    if (r == SetInsert::kFull) return false;
    bucket->value = v;
    bucket->tagged.tag().restore(LiveTag::pack(round, /*live=*/true));
    ctrl_[b].store(ctrl_h2(mix64(key)), std::memory_order_release);
    return true;
  }

  // -- cooperative migration: grow and tombstone reclaim --------------------
  // One protocol, two directions. grow_prepare sizes the target up from
  // the current array; reclaim_prepare sizes it from the live count so a
  // churned table shrinks back. Either way the sweep (grow_help) skips
  // dead buckets, so every migration is also a reclaim.

  [[nodiscard]] bool needs_grow() const noexcept {
    return static_cast<double>(occupied()) >
           cfg_.max_load * static_cast<double>(buckets_.size());
  }

  /// Tombstone-ratio watermark (HashConfig::reclaim_ratio), checked at
  /// step boundaries like needs_grow. The band between the two thresholds
  /// is the hysteresis that keeps churny workloads from alternating
  /// grow/shrink every step.
  [[nodiscard]] bool needs_reclaim() const noexcept {
    const std::uint64_t dead = tombstones();
    return dead > 0 && static_cast<double>(dead) >=
                           cfg_.reclaim_ratio * static_cast<double>(buckets_.size());
  }

  void grow_prepare(std::uint64_t factor = 2) {
    if (factor < 2) factor = 2;
    migration_prepare(bucket_count_for(buckets_.size() * factor));
  }

  /// Open a migration sized for the live keys: tombstones are dropped by
  /// the sweep and the array shrinks back toward size()/max_load. The
  /// target keeps max_load headroom, so the rebuilt table is never
  /// immediately grow-worthy.
  void reclaim_prepare() {
    migration_prepare(bucket_count_for(required_buckets(size(), cfg_.max_load)));
  }

  [[nodiscard]] bool growing() const noexcept { return migration_ != nullptr; }

  /// Chunk-swept cooperative migration; see concurrent_hash_set.hpp. Each
  /// live bucket's key, value, and packed (round, live) tag move together,
  /// so post-migration CAS-LT writes keep refusing already-committed
  /// rounds. Dead buckets are dropped — their committed rounds are behind
  /// every future round, so nothing can race them after the swap.
  void grow_help() {
    Migration& mig = *migration_;
    const std::uint64_t end = buckets_.size();
    for (;;) {
      const std::uint64_t begin = mig.cursor.fetch_add(cfg_.migrate_chunk,
                                                       std::memory_order_relaxed);
      if (begin >= end) return;
      telemetry_.chunk_claim();
      const std::uint64_t stop = std::min(begin + cfg_.migrate_chunk, end);
      std::uint64_t moved = 0;
      std::uint64_t dropped = 0;
      std::uint64_t probes = 0;
      for (std::uint64_t i = begin; i < stop; ++i) {
        Bucket& old = buckets_[i];
        const Key k = old.tagged.key();
        if (k == kEmptyKey) continue;
        if (!old.tagged.tag().live()) {
          ++dropped;
          continue;
        }
        migrate_into(mig, k, old, probes);
        ++moved;
      }
      if (moved > 0) mig.live_moved.fetch_add(moved, std::memory_order_relaxed);
      if (dropped > 0) mig.dropped.fetch_add(dropped, std::memory_order_relaxed);
      if (probes > 0) telemetry_.probes(probes);  // one flush per chunk
      telemetry_.migrated(stop - begin);
    }
  }

  void grow_finish() {
    assert(growing() && "grow_finish without grow_prepare");
    assert(migration_->cursor.load(std::memory_order_relaxed) >= buckets_.size() &&
           "grow_finish before the migration sweep completed");
    buckets_ = std::move(migration_->buckets);
    ctrl_ = std::move(migration_->ctrl);
    mask_ = migration_->mask;
    // The rebuilt array holds exactly the migrated live keys: reset the
    // sharded counters to that truth (serial here, like the swap itself).
    occupied_.reset();
    occupied_.add(migration_->live_moved.load(std::memory_order_relaxed));
    dead_.reset();
    telemetry_.reclaimed(migration_->dropped.load(std::memory_order_relaxed));
    migration_.reset();
  }

  void grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    grow_prepare(factor);
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    grow_finish();
  }

  bool maybe_grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    if (!needs_grow()) return false;
    grow_parallel(threads, factor);
    return true;
  }

  /// Cooperative rebuild toward the live count: drops every tombstone and
  /// shrinks the array if churn left it oversized.
  void reclaim_parallel(int threads = 0) {
    reclaim_prepare();
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    grow_finish();
  }

  /// Watermark-gated reclaim for step boundaries. Returns true iff a
  /// rebuild ran.
  bool maybe_reclaim_parallel(int threads = 0) {
    if (!needs_reclaim()) return false;
    reclaim_parallel(threads);
    return true;
  }

  /// Signal-driven variant of needs_reclaim: the static watermark still
  /// fires on its own, but a caller holding probe-path telemetry (its own
  /// or this table's — telemetry_signal()) can also trigger on observed
  /// degradation: probe-length p99 at or past HashConfig::reclaim_probe_p99,
  /// or H2 false positives past reclaim_fp_rate of the group loads. Both
  /// signal triggers are gated on a tombstone floor of 1/64 of the buckets,
  /// because the telemetry is cumulative: without the floor a bad-probe
  /// past would re-fire every step after the sweep already dropped the
  /// tombstones that caused it.
  [[nodiscard]] bool needs_reclaim(const ReclaimSignal& sig) const noexcept {
    if (needs_reclaim()) return true;
    const std::uint64_t dead = tombstones();
    if (dead < buckets_.size() / 64 + 1) return false;
    if (cfg_.reclaim_probe_p99 != 0 && sig.probe_p99 >= cfg_.reclaim_probe_p99) return true;
    return cfg_.reclaim_fp_rate > 0.0 && sig.group_loads > 0 &&
           static_cast<double>(sig.fingerprint_fps) >
               cfg_.reclaim_fp_rate * static_cast<double>(sig.group_loads);
  }

  /// Signal-gated reclaim for step boundaries; the serve pumps pass
  /// telemetry_signal() so churned tables rebuild as soon as probes
  /// degrade, not only at the tombstone-ratio watermark. Returns true iff
  /// a rebuild ran.
  bool maybe_reclaim_parallel(int threads, const ReclaimSignal& sig) {
    if (!needs_reclaim(sig)) return false;
    reclaim_parallel(threads);
    return true;
  }

  /// This table's own probe-path observations, ready to feed back into
  /// maybe_reclaim_parallel. All-zero when telemetry is off.
  [[nodiscard]] ReclaimSignal telemetry_signal() const noexcept {
    return telemetry_.signal();
  }

  /// Backlog-sized grow (ROADMAP "resize-storm tail"): one grow sized for
  /// `backlog` further inserts on top of the current occupancy, instead of
  /// a cascade of ×2 grows each re-migrating every key. Returns true iff a
  /// grow ran. Serial/step-boundary only, like every grow entry point.
  /// Sizes from occupied(), not size(): tombstones hold buckets (and
  /// lengthen probes) until a reclaim drops them.
  bool maybe_grow_for_backlog(std::uint64_t backlog, int threads = 0) {
    const std::uint64_t occ = occupied();
    const std::uint64_t demand =
        backlog > std::numeric_limits<std::uint64_t>::max() - occ
            ? std::numeric_limits<std::uint64_t>::max()
            : occ + backlog;
    const std::uint64_t want = bucket_count_for(required_buckets(demand, cfg_.max_load));
    if (want <= buckets_.size()) return false;
    // Both sides are powers of two, so the division is exact — the old
    // `size * factor < want` doubling loop could wrap to 0 for huge
    // backlogs and never terminate.
    grow_parallel(threads, want / buckets_.size());
    return true;
  }

  // -- telemetry ------------------------------------------------------------

  [[nodiscard]] TableTelemetry& telemetry() noexcept { return telemetry_; }
  void flush_round() noexcept { telemetry_.flush_round(); }

  // -- test/debug introspection (serial or post-barrier only) ---------------

  /// Raw control byte for bucket `i` — lets tests assert the sidecar
  /// invariants (empty / tombstone / fingerprint) across upsert, erase,
  /// revive and reclaim without poking at internals.
  [[nodiscard]] std::uint8_t debug_ctrl(std::uint64_t i) const noexcept {
    return ctrl_[i].load(std::memory_order_acquire);
  }

  /// Index of the bucket claimed by `key` (live or tombstoned), or ~0 if
  /// unclaimed. Always a scalar walk, so it double-checks the group path.
  [[nodiscard]] std::uint64_t debug_bucket_of(Key key) const noexcept {
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      const Key current = buckets_[b].tagged.key();
      if (current == key) return b;
      if (current == kEmptyKey) return ~std::uint64_t{0};
      b = (b + 1) & mask_;
    }
    return ~std::uint64_t{0};
  }

 private:
  struct Bucket {
    TaggedBucket<Key> tagged;
    Value value{};
  };

  struct Migration {
    util::AlignedBuffer<Bucket> buckets;
    util::AlignedBuffer<std::atomic<std::uint8_t>> ctrl;
    std::uint64_t mask = 0;
    alignas(util::kCacheLineSize) std::atomic<std::uint64_t> cursor{0};
    std::atomic<std::uint64_t> live_moved{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  void migration_prepare(std::uint64_t target_buckets) {
    assert(!growing() && "migration_prepare while a migration is already open");
    auto mig = std::make_unique<Migration>();
    mig->buckets = util::AlignedBuffer<Bucket>(target_buckets);
    mig->ctrl = util::AlignedBuffer<std::atomic<std::uint8_t>>(target_buckets);
    mig->mask = mig->buckets.size() - 1;
    migration_ = std::move(mig);
  }

  /// CAS-LT on the bucket's LiveTag with the telemetry mirroring
  /// InstrumentedTag<CasLtPolicy>: the pre-load skip issues no RMW, so
  /// `atomics` counts only real compare-exchanges.
  bool acquire_round(Bucket& bucket, round_t round, bool live, bool& was_live) {
    LiveTag& tag = bucket.tagged.tag();
    if (tag.last_round() >= round) return false;  // skip: no atomic issued
    telemetry_.cas();
    return tag.try_acquire(round, live, was_live);
  }

  [[nodiscard]] bool group_probing() const noexcept {
    return cfg_.group_probe && buckets_.size() >= util::kGroupWidth;
  }

  /// Shared claim tail: the winner seeds the fingerprint byte (fresh
  /// claims are born live) before anyone can observe the key as present
  /// through the sidecar — though observing it through a stale empty byte
  /// first is fine too, since empty lanes are always verified.
  SetInsert resolve_claim(BucketClaim claim, std::uint64_t b, std::uint8_t fp,
                          Bucket*& bucket, std::uint64_t& index) {
    switch (claim) {
      case BucketClaim::kWon:
        ctrl_[b].store(fp, std::memory_order_release);
        telemetry_.cas();
        telemetry_.win();
        occupied_.add(1);
        bucket = &buckets_[b];
        index = b;
        return SetInsert::kInserted;
      case BucketClaim::kHeld:
        bucket = &buckets_[b];
        index = b;
        return SetInsert::kFound;
      case BucketClaim::kOther:
        break;
    }
    return SetInsert::kFull;  // sentinel for "probe on" — never escapes
  }

  [[gnu::noinline]] SetInsert claim_scalar(Key key, Bucket*& bucket, std::uint64_t& index,
                                           ProbeStats& stats) {
    const std::uint64_t mixed = mix64(key);
    const std::uint8_t fp = ctrl_h2(mixed);
    std::uint64_t b = mixed & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      ++stats.probes;
      const BucketClaim claim = buckets_[b].tagged.claim(key);
      if (claim != BucketClaim::kOther) return resolve_claim(claim, b, fp, bucket, index);
      b = (b + 1) & mask_;
    }
    return SetInsert::kFull;
  }

  /// Group walk over the sidecar; candidate lanes (fingerprint match,
  /// tombstone, empty) re-run the one-shot claim protocol verbatim, so the
  /// arbitration outcome is bit-for-bit the scalar walk's. A lane whose
  /// byte matched the fingerprint but whose claim says kOther is a
  /// verified H2 false positive.
  [[gnu::noinline]] SetInsert claim_group(Key key, Bucket*& bucket, std::uint64_t& index,
                                          ProbeStats& stats) {
    const std::uint64_t mixed = mix64(key);
    const std::uint8_t fp = ctrl_h2(mixed);
    GroupWalk walk(mixed & mask_, buckets_.size());
    for (std::uint32_t lanes = walk.first(); !walk.done(); lanes = walk.next()) {
      const util::Group grp = util::Group::load(&ctrl_[walk.base()]);
      ++stats.group_loads;
      const std::uint32_t h2m = grp.match(fp) & lanes;
      std::uint32_t cand = (h2m | grp.match_special()) & lanes;
      while (cand != 0) {
        const auto lane = static_cast<unsigned>(std::countr_zero(cand));
        cand &= cand - 1;
        const std::uint64_t b = walk.base() + lane;
        ++stats.probes;
        const BucketClaim claim = buckets_[b].tagged.claim(key);
        if (claim != BucketClaim::kOther) return resolve_claim(claim, b, fp, bucket, index);
        if (((h2m >> lane) & 1u) != 0) ++stats.fps;
      }
    }
    return SetInsert::kFull;
  }

  /// Probe walk + claim; on kInserted/kFound, `bucket` points at the key's
  /// bucket (live or tombstoned — liveness is the caller's concern) and
  /// `index` is its slot, so callers can publish sidecar bytes on the
  /// liveness transitions they win. Throws for the reserved sentinel key.
  /// A fresh claim is born live (its LiveTag starts that way), so only
  /// occupied_ moves here; dead_ moves exactly when a LiveTag RMW flips
  /// the bit, with the winner deriving the transition from its own CAS's
  /// observed word — no second pass, no double counting.
  SetInsert claim_bucket(Key key, Bucket*& bucket, std::uint64_t& index) {
    if (key == kEmptyKey) {
      throw std::invalid_argument("ConcurrentHashMap: the all-ones key is reserved");
    }
    assert(!growing() && "write during cooperative migration: missing barrier");
    ProbeStats stats;
    // Home-lane fast path, mirrored from the walks' probe 0. Home is lane
    // zero of both walks and a claim must land on the earliest free lane,
    // so running the one-shot claim protocol on it first changes no
    // arbitration outcome — the common claim resolves in one step without
    // a group snapshot, and only a stranger at home pays for the outlined
    // walk (which re-checks home once, a benign extra probe).
    const std::uint64_t mixed = mix64(key);
    const std::uint64_t home = mixed & mask_;
    ++stats.probes;
    const BucketClaim claim = buckets_[home].tagged.claim(key);
    const SetInsert r =
        claim != BucketClaim::kOther
            ? resolve_claim(claim, home, ctrl_h2(mixed), bucket, index)
            : group_probing() ? claim_group(key, bucket, index, stats)
                              : claim_scalar(key, bucket, index, stats);
    telemetry_.walk(stats);
    return r;
  }

  [[nodiscard]] const Bucket* find_bucket(Key key) const noexcept {
    if (key == kEmptyKey) return nullptr;
    // Home-bucket fast path against the authoritative word — exactly the
    // scalar walk's first step, shared by both probe modes so the common
    // case inlines small at every call site. A match is a hit; an empty
    // home is a sound miss (a displaced key implies its home was claimed
    // at insert time, and buckets never unclaim outside barrier-separated
    // migrations, so key-elsewhere ⇒ home non-empty). Only a stranger at
    // home pays for the outlined walk.
    const std::uint64_t mixed = mix64(key);
    const std::uint64_t home = mixed & mask_;
    const Key at_home = buckets_[home].tagged.key();
    if (at_home == key) return &buckets_[home];
    if (at_home == kEmptyKey) return nullptr;
    return find_bucket_slow(key, mixed, home);
  }

  /// Displaced-chain tail of find_bucket(), outlined (noinline) so the
  /// inlined fast path stays a handful of instructions at every call site.
  /// `home` has already been verified to hold a different key.
  [[nodiscard, gnu::noinline]] const Bucket* find_bucket_slow(
      Key key, std::uint64_t mixed, std::uint64_t home) const noexcept {
    if (group_probing()) {
      const std::uint8_t fp = ctrl_h2(mixed);
      GroupWalk walk(home, buckets_.size());
      for (std::uint32_t lanes = walk.first(); !walk.done(); lanes = walk.next()) {
        const util::Group grp = util::Group::load(&ctrl_[walk.base()]);
        // Read-only walk: fingerprint candidates first (a full byte means
        // a permanently claimed bucket, so a key match is authoritative
        // wherever it sits), then the sentinel lanes in order — only they
        // can terminate the chain, and each one is verified against the
        // bucket word so a stale empty hiding this key is still caught.
        std::uint32_t fpm = grp.match(fp) & lanes;
        while (fpm != 0) {
          const std::uint64_t b = walk.base() + std::countr_zero(fpm);
          fpm &= fpm - 1;
          if (buckets_[b].tagged.key() == key) return &buckets_[b];
        }
        std::uint32_t spec = grp.match_special() & lanes;
        while (spec != 0) {
          const std::uint64_t b = walk.base() + std::countr_zero(spec);
          spec &= spec - 1;
          const Key current = buckets_[b].tagged.key();
          if (current == key) return &buckets_[b];
          if (current == kEmptyKey) return nullptr;
        }
      }
      return nullptr;
    }
    std::uint64_t b = (home + 1) & mask_;
    for (std::uint64_t probe = 1; probe <= mask_; ++probe) {
      const Key current = buckets_[b].tagged.key();
      if (current == key) return &buckets_[b];
      if (current == kEmptyKey) return nullptr;
      b = (b + 1) & mask_;
    }
    return nullptr;
  }

  /// Migration insert: the claim always wins eventually (keys unique in
  /// the old array, and the target is sized for every live key); the value
  /// and the packed (round, live) word travel together, and the target's
  /// sidecar byte is seeded so the first post-swap walk finds it populated
  /// (relaxed — grow_finish's barrier publishes the whole array). Old
  /// buckets are quiescent during the sweep (barrier before grow_help), so
  /// plain reads of value/tag are safe. Probe counts accumulate in
  /// `probes` and flush once per chunk from grow_help.
  void migrate_into(Migration& mig, Key key, const Bucket& old, std::uint64_t& probes) {
    const std::uint64_t mixed = mix64(key);
    std::uint64_t b = mixed & mig.mask;
    for (;;) {
      ++probes;
      const BucketClaim claim = mig.buckets[b].tagged.claim(key);
      if (claim == BucketClaim::kWon) {
        telemetry_.cas();
        mig.ctrl[b].store(ctrl_h2(mixed), std::memory_order_relaxed);
        mig.buckets[b].value = old.value;
        mig.buckets[b].tagged.tag().restore(old.tagged.tag().packed());
        return;
      }
      assert(claim == BucketClaim::kOther && "duplicate key in migration sweep");
      b = (b + 1) & mig.mask;
    }
  }

  HashConfig cfg_;
  TableTelemetry telemetry_;
  util::AlignedBuffer<Bucket> buckets_;
  // Control-byte sidecar, one byte per bucket (filter only — see the header
  // comment). Declared after buckets_ to match the ctor init order.
  util::AlignedBuffer<std::atomic<std::uint8_t>> ctrl_;
  std::uint64_t mask_;
  ShardedCounter occupied_;
  ShardedCounter dead_;
  std::unique_ptr<Migration> migration_;
};

}  // namespace crcw::ds
