// Shared vocabulary of the ds/ hash tables: the key mixer, probe/capacity
// arithmetic, sharded size counters, and the telemetry knob.
//
// Layering: ds/ sits on core/ (TaggedBucket, RoundTag, SlotAllocator) and
// util/, and reports into obs/ the same way the arbiters do — through a
// ContentionSite, so table probes/migrations land in the same
// MetricsRegistry snapshots and BENCH_*.json counters as the CW kernels.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/cacheline.hpp"
#include "util/simd.hpp"

namespace crcw::ds {

/// splitmix64's finalizer (util/rng.hpp uses the same constants inside
/// SplitMix64::next): a full-avalanche 64-bit mixer, so linear probing over
/// a power-of-two table sees well-spread home slots even for sequential
/// keys. test_rng.cpp's avalanche smoke test pins the quality claim.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Seeded variant: used when a table rehashes into a different bucket
/// permutation (DHash's "change the hash function" move) and by the
/// avalanche test to decorrelate streams.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x, std::uint64_t seed) noexcept {
  return mix64(x + 0x9e3779b97f4a7c15ull * seed);
}

/// Smallest power of two >= max(n, 2) — bucket counts stay pow2 so the
/// probe sequence can mask instead of mod. Requests beyond 2^63 clamp to
/// 2^63 (the largest representable power of two) instead of hitting
/// std::bit_ceil's not-representable undefined behaviour; a table that big
/// cannot be allocated anyway, so the clamp only keeps sizing arithmetic
/// on huge backlogs well-defined.
[[nodiscard]] constexpr std::uint64_t bucket_count_for(std::uint64_t n) noexcept {
  constexpr std::uint64_t kMaxBuckets = std::uint64_t{1} << 63;
  if (n >= kMaxBuckets) return kMaxBuckets;
  return std::bit_ceil(n < 2 ? std::uint64_t{2} : n);
}

/// Buckets needed so `capacity` keys sit at or below `max_load` — a
/// *ceiling* division. The truncating `capacity / max_load` this replaces
/// could hand back a power of two one notch too small (e.g. 5 keys at
/// max_load 0.6 → trunc(8.33) = 8 buckets = load 0.625), so a freshly
/// constructed table already violated its load factor and needs_grow()
/// fired before the first insert. The post-ceil correction loop absorbs
/// the double-rounding edge where ceil() lands exactly on a value whose
/// product with max_load still reads below capacity.
[[nodiscard]] inline std::uint64_t required_buckets(std::uint64_t capacity,
                                                    double max_load) {
  if (max_load <= 0.0 || max_load > 1.0) {
    throw std::invalid_argument("ds: max_load must be in (0, 1]");
  }
  if (capacity < 1) capacity = 1;
  auto need = static_cast<std::uint64_t>(static_cast<double>(capacity) / max_load);
  while (static_cast<double>(capacity) > max_load * static_cast<double>(need)) ++need;
  return need;
}

/// String-key adapter: hashes a byte string into the tables' uint64 key
/// space — FNV-1a over the bytes, then the splitmix64 finalizer on top
/// (FNV alone avalanches poorly in the high bits, and the tables derive
/// home slots from the high-quality mix64 of the key anyway, so the
/// finalize keeps distinct short strings from clustering). The all-ones
/// result is remapped: it is the tables' reserved empty sentinel, and a
/// valid string must never hash to it.
[[nodiscard]] constexpr std::uint64_t string_key(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
  h = mix64(h);
  return h == ~std::uint64_t{0} ? 0 : h;
}

// -- edge-key adapter --------------------------------------------------------
// The streaming subsystem (src/stream) stores undirected edges in the
// uint64 key space of these tables: canonical order (min, max) packed as
// hi<<32|lo, so {u,v} and {v,u} collide onto one key and the one-CAS
// arbitration per (key, round) is per *edge*. mix64 on top spreads the
// packed keys across buckets/shards like any other key. The all-ones key
// would be the self-loop at vertex 0xffffffff — callers reject self-loops
// (and vertex ids are bounded well below 2^32), so the tables' reserved
// sentinel stays unreachable.

/// Packs an undirected edge {u, v} into one canonical uint64 key.
[[nodiscard]] constexpr std::uint64_t pack_edge(std::uint32_t u, std::uint32_t v) noexcept {
  const std::uint32_t lo = u < v ? u : v;
  const std::uint32_t hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/// Unpacks a canonical edge key into (lo, hi) endpoints.
struct EdgeKey {
  std::uint32_t u;  ///< the smaller endpoint
  std::uint32_t v;  ///< the larger endpoint
};
[[nodiscard]] constexpr EdgeKey unpack_edge(std::uint64_t key) noexcept {
  return {static_cast<std::uint32_t>(key), static_cast<std::uint32_t>(key >> 32)};
}

// -- control-byte sidecar vocabulary ----------------------------------------
// The open tables keep one byte per bucket beside the bucket array: a
// 7-bit H2 fingerprint of the owning key (high bit set), or one of two
// reserved control values. Probe walks scan these bytes 16 at a time
// (util::Group) and only touch the bucket line for lanes whose byte could
// be the probed key — a filter, never a source of truth: every hit is
// re-verified against the atomic claim word (docs/architecture.md, "SIMD
// group probing").

/// Control byte of an unclaimed bucket. Zero on purpose: freshly
/// value-initialised sidecars (AlignedBuffer, migration targets) are
/// all-empty with no initialisation sweep.
inline constexpr std::uint8_t kCtrlEmpty = 0x00;
/// Control byte of a claimed-but-erased bucket. Probe walks must keep
/// verifying these lanes (the key still owns the bucket; an insert may
/// revive it), which the candidate masks include explicitly.
inline constexpr std::uint8_t kCtrlTombstone = 0x01;

/// Bit offset of the H2 fingerprint slice inside mix64(key). Chosen so the
/// fingerprint shares no bits with either consumer of the same mixed word:
/// bucket homes use the LOW bits (mix64 & mask — up to bit 38 even for an
/// absurd 2^38-bucket table) and the serve layer's shard router uses bits
/// [32, 39) (ShardedScheduler::shard_of: mix64 >> 32 over ≤ 2^7 shards).
/// Slicing [39, 46) keeps H2 independent of both, so the keys that collide
/// into one probe chain still fan out across fingerprint values —
/// tests/test_hash_probe.cpp pins the independence claim.
inline constexpr unsigned kH2Shift = 39;

/// The 7-bit fingerprint with the high bit set: full bytes can never
/// collide with kCtrlEmpty/kCtrlTombstone.
[[nodiscard]] constexpr std::uint8_t ctrl_h2(std::uint64_t mixed) noexcept {
  return static_cast<std::uint8_t>(0x80u | ((mixed >> kH2Shift) & 0x7Fu));
}

/// Per-operation probe tallies, accumulated in registers during the walk
/// and flushed through TableTelemetry::walk() once at the end — the probe
/// loop itself issues no counter RMWs (the per-bucket probes(1) this
/// replaces was one sharded fetch_add per bucket visited).
struct ProbeStats {
  std::uint64_t probes = 0;       ///< buckets verified or claimed
  std::uint64_t group_loads = 0;  ///< 16-byte control groups snapshot
  std::uint64_t fps = 0;          ///< fingerprint hits that verified false
};

/// Cursor over the aligned 16-lane control groups of one probe walk: the
/// first group masks off the lanes before the home bucket (they belong to
/// earlier probe chains), then whole groups follow in wrapping order. The
/// walk revisits the starting group once at the end so the masked-off
/// lanes are still covered — groups()+1 steps visit every lane at least
/// once, which is what makes a kFull verdict sound.
class GroupWalk {
 public:
  GroupWalk(std::uint64_t home, std::uint64_t buckets) noexcept
      : groups_(buckets / util::kGroupWidth),
        group_(home / util::kGroupWidth),
        first_lanes_(~std::uint32_t{0} << (home % util::kGroupWidth)) {}

  /// Lane mask of the current group (call once, before any next()).
  [[nodiscard]] std::uint32_t first() const noexcept { return first_lanes_; }
  /// Advances to the next group (wrapping past the last) and returns its
  /// lane mask (all lanes — only the first group is partial).
  [[nodiscard]] std::uint32_t next() noexcept {
    ++steps_;
    group_ = group_ + 1 == groups_ ? 0 : group_ + 1;
    return ~std::uint32_t{0};
  }
  /// True once every group (plus the wrap revisit) has been offered.
  [[nodiscard]] bool done() const noexcept { return steps_ > groups_; }
  /// Bucket index of the current group's lane 0.
  [[nodiscard]] std::uint64_t base() const noexcept { return group_ * util::kGroupWidth; }

 private:
  std::uint64_t groups_;
  std::uint64_t group_;
  std::uint64_t steps_ = 0;
  std::uint32_t first_lanes_;
};

/// Outcome of a key insert (set and map build phases share it).
enum class SetInsert {
  kInserted,  ///< this thread committed the key (the arbitration winner)
  kFound,     ///< the key was already present (possibly committed this round
              ///< by a racing thread — the loser observes it wait-free)
  kFull,      ///< the probe walk exhausted the table: grow, then retry
};

/// A telemetry snapshot feeding the signal-driven reclaim trigger (the
/// ROADMAP probe-path follow-on): instead of waiting for the static
/// tombstone-ratio watermark, a step boundary can hand the table what the
/// probe path actually observed — the probe-length p99 and the H2
/// false-positive tally — and reclaim as soon as walks demonstrably
/// degrade. Tables with telemetry off produce a zero signal, which never
/// fires; the static watermark then decides alone.
struct ReclaimSignal {
  std::uint64_t probe_p99 = 0;        ///< buckets verified per op, p99
  std::uint64_t fingerprint_fps = 0;  ///< cumulative H2 false positives
  std::uint64_t group_loads = 0;      ///< cumulative sidecar group snapshots
};

/// Construction-time knobs shared by the ds/ tables.
struct HashConfig {
  /// Bucket count = bucket_count_for(capacity / max_load) so `capacity`
  /// keys fit below the load factor that keeps linear probing short.
  double max_load = 0.5;
  /// Buckets migrated per shared-cursor claim during cooperative resize
  /// (the chunked sweep; one RMW per chunk, like SlotAllocator grants).
  std::uint64_t migrate_chunk = 256;
  /// Tombstone-ratio watermark: needs_reclaim() fires once dead buckets
  /// make up this fraction of the table. Checked at step boundaries only
  /// (like needs_grow); 0.25 leaves a hysteresis band below max_load so a
  /// reclaim sweep is never immediately followed by a backlog grow.
  double reclaim_ratio = 0.25;
  /// Telemetry-driven reclaim trigger (0 = off): needs_reclaim(signal)
  /// additionally fires when the observed probe-length p99 reaches this
  /// many buckets per operation. Gated on a minimum tombstone floor
  /// (1/64 of the buckets) because the probe histogram is cumulative — a
  /// long-probe past would re-fire every step after the sweep already
  /// dropped the tombstones that caused it, and a reclaim can only help
  /// while there are tombstones to drop.
  std::uint64_t reclaim_probe_p99 = 0;
  /// Telemetry-driven reclaim trigger (0.0 = off): fires when the observed
  /// H2 false positives exceed this fraction of the sidecar group loads
  /// (tombstone lanes stay verify candidates forever, so a churned table's
  /// false-positive rate climbs until a sweep resets the sidecar). Same
  /// tombstone floor as reclaim_probe_p99.
  double reclaim_fp_rate = 0.0;
  /// Probe via the control-byte sidecar, 16 buckets per group load (the
  /// tentpole path). OFF forces the scalar bucket-at-a-time walk — the
  /// A/B lever bench/micro_probe.cpp and the equivalence tests use; the
  /// sidecar is maintained either way, so flipping the knob between runs
  /// of the same workload is safe. Tables smaller than one group always
  /// walk scalar regardless.
  bool group_probe = true;
  /// Attach a ContentionSite and count probes/CASes/migrations. For
  /// profile passes only — counting costs sharded RMWs (see
  /// InstrumentedPolicy's caveat).
  bool telemetry = false;
  /// Adaptive retry backoff (chained set only — the open tables' CAS-LT
  /// claim is wait-free and never retries): cap the head-CAS Backoff
  /// ceiling off the site's live failure rate, re-sampled at each
  /// flush_round (util::AdaptiveBackoffCeiling). Needs `telemetry` — the
  /// failure rate comes from the site's atomics/wins counters; without it
  /// the ceiling stays at the quiet default. The ext_hash storm bench A/Bs
  /// this knob.
  bool adaptive_backoff = false;
  /// Site name when telemetry is on.
  std::string site_name = "hash";
};

/// Table occupancy counter, sharded like obs::ContentionSite so concurrent
/// inserts never bounce one line. total() is serial/post-barrier exact.
class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 32;

  void add(std::uint64_t k) noexcept {
    shards_[shard_index()].value.fetch_add(k, std::memory_order_relaxed);
  }

  /// Decrement by k. Shards are unsigned and may individually wrap (a
  /// thread can erase keys another shard counted) — only total()'s sum is
  /// meaningful, and modular arithmetic makes the sum exact regardless of
  /// which shard absorbed the subtraction.
  void sub(std::uint64_t k) noexcept {
    shards_[shard_index()].value.fetch_sub(k, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto& s : shards_) t += s.value.load(std::memory_order_relaxed);
    return t;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(util::kCacheLineSize) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  /// Dense thread index, recycled mod kShards (same contract as
  /// ContentionSite: collisions degrade to sharing, never to wrong counts).
  [[nodiscard]] static std::size_t shard_index() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
    return index % kShards;
  }

  Shard shards_[kShards];
};

/// The telemetry half every table embeds: a lazily constructed
/// ContentionSite plus inline no-op-when-off recorders. Counter mapping
/// (documented in docs/architecture.md "ds layer"):
///   attempts   buckets verified/claimed by probe walks (group probing
///              skips fingerprint-mismatched buckets entirely, so at equal
///              workload a lower attempts count at unchanged CAS/win
///              counts is the SIMD saving; attempts/wins = mean verified
///              probe length)
///   atomics    claim/tag CASes issued
///   wins       inserts that committed a new key
///   refills    chunk claims (migration sweeps, chained node grants)
///   reset_tags buckets migrated by resize sweeps
///   tombstones erase commits (one CAS each; the churn benches divide by
///              erase count to pin the one-CAS-per-(key,round) claim)
///   reclaimed  dead buckets/nodes dropped by reclaim sweeps
///   group_loads / fingerprint_fps
///              sidecar group snapshots and H2 false positives (walk())
class TableTelemetry {
 public:
  explicit TableTelemetry(const HashConfig& cfg) {
    if (cfg.telemetry) site_ = std::make_unique<obs::ContentionSite>(cfg.site_name);
  }

  void probes(std::uint64_t k) noexcept {
    if (site_) site_->add_attempts(k);
  }
  /// One probe walk's locally accumulated tallies, flushed in a single
  /// visit (≤ 3 shard RMWs + 1 histogram bump per OPERATION, not per
  /// bucket). Also feeds the probe-length histogram behind the
  /// probe_p50/p99 accessors.
  void walk(const ProbeStats& s) noexcept {
    if (site_) site_->record_walk(s.probes, s.group_loads, s.fps);
  }
  void cas() noexcept {
    if (site_) site_->count_atomic();
  }
  void win() noexcept {
    if (site_) site_->count_win();
  }
  void chunk_claim() noexcept {
    if (site_) site_->add_refills(1);
  }
  void migrated(std::uint64_t buckets) noexcept {
    if (site_ && buckets > 0) site_->add_reset_tags(buckets);
  }
  void tombstone() noexcept {
    if (site_) site_->add_tombstones(1);
  }
  void reclaimed(std::uint64_t entries) noexcept {
    if (site_ && entries > 0) site_->add_reclaimed(entries);
  }
  void flush_round() noexcept {
    if (site_) site_->flush_round();
  }

  [[nodiscard]] bool enabled() const noexcept { return site_ != nullptr; }
  [[nodiscard]] obs::ContentionSite* site() noexcept { return site_.get(); }

  /// Probe-length quantiles (buckets verified per operation; upper bounds
  /// of power-of-two histogram buckets). 0 when telemetry is off or no
  /// walk has flushed yet.
  [[nodiscard]] std::uint64_t probe_p50() const noexcept {
    return site_ ? site_->probe_lengths().quantile_upper_bound(0.5) : 0;
  }
  [[nodiscard]] std::uint64_t probe_p99() const noexcept {
    return site_ ? site_->probe_lengths().quantile_upper_bound(0.99) : 0;
  }

  /// Snapshot for the signal-driven reclaim trigger (ReclaimSignal docs);
  /// all-zero when telemetry is off, which never fires a trigger.
  [[nodiscard]] ReclaimSignal signal() const noexcept {
    ReclaimSignal sig;
    if (site_) {
      const obs::ContentionTotals t = site_->totals();
      sig.probe_p99 = probe_p99();
      sig.fingerprint_fps = t.fingerprint_fps;
      sig.group_loads = t.group_loads;
    }
    return sig;
  }

 private:
  std::unique_ptr<obs::ContentionSite> site_;
};

}  // namespace crcw::ds
