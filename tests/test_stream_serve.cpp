// StreamScheduler behind BasicServeSession and the wire: edge writes with
// round arbitration, connectivity queries with committed-read semantics,
// deletion splits, admission rejection (KV kinds, malformed edges,
// out-of-range vertices), KV backends rejecting stream kinds, and the
// end-to-end TCP loop through BasicWireServer<StreamScheduler>.
#include "stream/stream_scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "ds/hash_common.hpp"
#include "graph/reference.hpp"
#include "serve/serve_server.hpp"
#include "serve/serve_session.hpp"
#include "serve/wire_client.hpp"
#include "stream/workload.hpp"

namespace crcw::stream {
namespace {

using serve::Op;
using serve::OpFuture;
using serve::OpKind;
using serve::Result;
using StreamSession = serve::BasicServeSession<StreamScheduler>;

[[nodiscard]] serve::ServeConfig stream_config(std::uint32_t vertices = 1 << 10) {
  return serve::ServeConfig{}.with_vertices(vertices).with_expected_keys(1 << 12);
}

TEST(StreamServe, InsertThenQueryConnectivity) {
  StreamSession session(stream_config());
  // Path 1-2-3-4 in one batch; queries in a later round see it whole.
  EXPECT_TRUE(session.call(Op::edge_insert(1, 2)).won);
  EXPECT_TRUE(session.call(Op::edge_insert(2, 3)).won);
  EXPECT_TRUE(session.call(Op::edge_insert(3, 4)).won);

  const Result same = session.call(Op::same_component(1, 4));
  EXPECT_TRUE(same.won);
  EXPECT_EQ(same.value, 1u);
  const Result split = session.call(Op::same_component(1, 5));
  EXPECT_TRUE(split.won);
  EXPECT_EQ(split.value, 0u);
  const Result size = session.call(Op::component_size(2));
  EXPECT_TRUE(size.won);
  EXPECT_EQ(size.value, 4u);
  // Reflexive connectivity needs no edges.
  EXPECT_EQ(session.call(Op::same_component(9, 9)).value, 1u);
}

TEST(StreamServe, EdgeWeightLookupAndLoserObservesCommitted) {
  StreamSession session(stream_config());
  ASSERT_TRUE(session.call(Op::edge_insert(5, 6, 77)).won);

  const Result look = session.call(Op::lookup(ds::pack_edge(6, 5)));
  EXPECT_TRUE(look.won);
  EXPECT_EQ(look.value, 77u);

  // Same-round duplicate insert: one winner, loser sees committed weight.
  OpFuture a, b;
  session.submit(Op::edge_insert(7, 8, 100), a);
  session.submit(Op::edge_insert(7, 8, 200), b);
  session.flush();
  ASSERT_TRUE(a.ready() && b.ready());
  EXPECT_NE(a.result().won, b.result().won);
  const Result& winner = a.result().won ? a.result() : b.result();
  const Result& loser = a.result().won ? b.result() : a.result();
  EXPECT_EQ(loser.value, winner.value) << "loser must observe the committed weight";
  EXPECT_EQ(a.result().round, b.result().round);
}

TEST(StreamServe, EraseSplitsComponentViaRebuild) {
  StreamSession session(stream_config());
  EXPECT_TRUE(session.call(Op::edge_insert(10, 11)).won);
  EXPECT_TRUE(session.call(Op::edge_insert(11, 12)).won);
  EXPECT_TRUE(session.call(Op::edge_insert(12, 13)).won);
  ASSERT_EQ(session.call(Op::same_component(10, 13)).value, 1u);

  EXPECT_TRUE(session.call(Op::edge_erase(11, 12)).won);
  EXPECT_EQ(session.call(Op::same_component(10, 13)).value, 0u);
  EXPECT_EQ(session.call(Op::same_component(10, 11)).value, 1u);
  EXPECT_EQ(session.call(Op::same_component(12, 13)).value, 1u);
  EXPECT_EQ(session.call(Op::component_size(10)).value, 2u);
  EXPECT_GT(session.backend().cc().rebuilds(), 0u);

  // Redundant edge: erasing one of a triangle's edges splits nothing.
  for (auto [u, v] : {std::pair{20, 21}, {21, 22}, {20, 22}}) {
    EXPECT_TRUE(session.call(Op::edge_insert(static_cast<std::uint32_t>(u),
                                             static_cast<std::uint32_t>(v)))
                    .won);
  }
  EXPECT_TRUE(session.call(Op::edge_erase(20, 22)).won);
  EXPECT_EQ(session.call(Op::same_component(20, 22)).value, 1u);
}

TEST(StreamServe, QueriesAreCommittedReadsOfPriorRounds) {
  // A query batched WITH the first insert of its edge must not see it
  // (phase A runs before phase B in the same round).
  StreamSession session(stream_config());
  OpFuture query, write;
  session.submit(Op::same_component(30, 31), query);
  session.submit(Op::edge_insert(30, 31), write);
  session.flush();
  ASSERT_TRUE(query.ready() && write.ready());
  EXPECT_EQ(query.result().round, write.result().round);
  EXPECT_TRUE(write.result().won);
  EXPECT_EQ(query.result().value, 0u) << "round-r query must miss round-r hook";
  // Next round sees it.
  EXPECT_EQ(session.call(Op::same_component(30, 31)).value, 1u);
}

TEST(StreamServe, RejectsMalformedAndKvOps) {
  StreamSession session(stream_config(64));
  // KV vocabulary is not served by the stream backend.
  EXPECT_FALSE(session.call(Op::upsert(1, 2)).won);
  EXPECT_FALSE(session.call(Op::erase(1)).won);
  // Self-loops and out-of-universe endpoints are rejected at admission.
  EXPECT_FALSE(session.call(Op::edge_insert(5, 5)).won);
  EXPECT_FALSE(session.call(Op::edge_insert(5, 64)).won);
  EXPECT_FALSE(session.call(Op::edge_erase(64, 65)).won);
  EXPECT_FALSE(session.call(Op::same_component(5, 64)).won);
  EXPECT_FALSE(session.call(Op::component_size(64)).won);
  // The sentinel key via raw lookup.
  EXPECT_FALSE(session.call(Op::lookup(~std::uint64_t{0})).won);
  // Nothing reached the edge table or the forest.
  EXPECT_EQ(session.backend().graph().edges(), 0u);
  EXPECT_EQ(session.backend().cc().components(), 64u);
}

TEST(StreamServe, KvBackendsRejectStreamKinds) {
  serve::ServeSession kv;
  EXPECT_FALSE(kv.call(Op::edge_insert(1, 2)).won);
  EXPECT_FALSE(kv.call(Op::same_component(1, 2)).won);
  serve::ShardedServeSession sharded;
  EXPECT_FALSE(sharded.call(Op::edge_erase(1, 2)).won);
  EXPECT_FALSE(sharded.call(Op::component_size(3)).won);
  // And the KV tables stayed untouched.
  EXPECT_EQ(kv.stats().keys, 0u);
  EXPECT_EQ(sharded.stats().keys, 0u);
}

TEST(StreamServe, StreamConfigValidation) {
  EXPECT_THROW((void)serve::ServeConfig{}.with_vertices(1).validated(),
               std::invalid_argument);
  serve::ServeConfig cfg;
  cfg.table.reclaim_probe_p99 = 32;  // signal knob without telemetry
  cfg.table.telemetry = false;
  EXPECT_THROW((void)cfg.validated(), std::invalid_argument);
  cfg.table.telemetry = true;
  EXPECT_NO_THROW((void)cfg.validated());
  cfg.table.reclaim_fp_rate = 1.5;
  EXPECT_THROW((void)cfg.validated(), std::invalid_argument);
}

TEST(StreamServe, ReplayedWorkloadMatchesOracleCounts) {
  // A deterministic trace through the full session: final live-edge count
  // and connectivity answers must match an oracle replay of the same ops
  // under ROUND semantics — each flush window is one round, and within a
  // round the FIRST write of a key is its (key, round) arbitration winner
  // (later same-key writes lose; paper §5). A sequential oracle applying
  // every op would be checking semantics the backend intentionally does
  // not provide.
  WorkloadConfig wcfg;
  wcfg.vertices = 256;
  wcfg.seed = 17;
  const std::vector<Event> trace = generate_trace(wcfg, 2000);
  constexpr std::size_t kWindow = 128;  // < max_batch: one round per flush

  StreamSession session(stream_config(256));
  std::vector<OpFuture> futures(trace.size());
  std::set<std::uint64_t> live;
  std::set<std::uint64_t> claimed;  // keys written this window (round)
  const auto close_window = [&] {
    session.flush();
    claimed.clear();
  };
  for (std::size_t i = 0; i < trace.size(); ++i) {
    session.submit(trace[i].op, futures[i]);
    const OpKind kind = trace[i].op.kind;
    if (kind == OpKind::kEdgeInsert || kind == OpKind::kEdgeErase) {
      if (claimed.insert(trace[i].op.key).second) {  // first write wins
        if (kind == OpKind::kEdgeInsert) live.insert(trace[i].op.key);
        if (kind == OpKind::kEdgeErase) live.erase(trace[i].op.key);
      }
    }
    if (i % kWindow == kWindow - 1) close_window();
  }
  close_window();
  EXPECT_EQ(session.backend().graph().edges(), live.size());
  graph::UnionFind uf(256);
  for (const std::uint64_t key : live) {
    const ds::EdgeKey e = ds::unpack_edge(key);
    uf.unite(e.u, e.v);
  }
  const auto& cc = session.backend().cc();
  EXPECT_EQ(cc.components(), uf.num_sets());
  for (std::uint32_t v = 0; v < 256; v += 17) {
    for (std::uint32_t u = 0; u < 256; u += 13) {
      ASSERT_EQ(cc.same_component(u, v), uf.find(u) == uf.find(v))
          << u << " vs " << v;
    }
  }
}

TEST(StreamServe, WireLoopbackEndToEnd) {
  // The acceptance shape: stream ops over real TCP through the generic
  // wire server, including read-your-writes on connectivity queries.
  StreamSession session(stream_config());
  session.start_pump();
  serve::BasicWireServer<StreamScheduler> server(session, serve::WireConfig{});
  server.start();
  ASSERT_NE(server.port(), 0);

  {
    serve::WireClient client("127.0.0.1", server.port());
    ASSERT_TRUE(client.call(Op::edge_insert(40, 41)).won);
    ASSERT_TRUE(client.call(Op::edge_insert(41, 42)).won);
    // RYW: this query is re-issued until its round passes the writes.
    EXPECT_EQ(client.call(Op::same_component(40, 42)).value, 1u);
    EXPECT_EQ(client.call(Op::component_size(41)).value, 3u);
    ASSERT_TRUE(client.call(Op::edge_erase(41, 42)).won);
    EXPECT_EQ(client.call(Op::same_component(40, 42)).value, 0u);
    // Weight lookup over the wire.
    ASSERT_TRUE(client.call(Op::edge_insert(50, 51, 123)).won);
    const serve::wire::Response look = client.call(Op::lookup(ds::pack_edge(50, 51)));
    EXPECT_TRUE(look.won);
    EXPECT_EQ(look.value, 123u);
    // Pipelined mixed burst.
    std::vector<Op> ops;
    for (std::uint32_t i = 0; i < 64; ++i) ops.push_back(Op::edge_insert(100 + i, 200 + i));
    for (std::uint32_t i = 0; i < 64; ++i) ops.push_back(Op::same_component(100 + i, 200 + i));
    const auto responses = client.pipeline(ops, 16);
    EXPECT_EQ(responses.size(), ops.size());
  }

  server.stop();
  session.stop_pump();
  EXPECT_GE(server.requests_served(), 70u);
}

}  // namespace
}  // namespace crcw::stream
