// Priority CRCW cells — the strongest resolution rule of §2.
#include "core/priority.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cstdint>
#include <string>

namespace crcw {
namespace {

TEST(PriorityCell, UntouchedInitially) {
  PriorityCell<std::uint32_t, std::string> cell;
  EXPECT_TRUE(cell.untouched());
}

TEST(PriorityCell, MinimumKeyWins) {
  PriorityCell<std::uint32_t, std::string> cell;
  cell.offer(5);
  cell.offer(2);
  cell.offer(9);
  EXPECT_EQ(cell.best_key(), 2u);
  EXPECT_FALSE(cell.untouched());

  // Phase 2: only the best key commits.
  EXPECT_FALSE(cell.try_commit(5, "five"));
  EXPECT_FALSE(cell.try_commit(9, "nine"));
  EXPECT_TRUE(cell.try_commit(2, "two"));
  EXPECT_EQ(cell.read(), "two");
}

TEST(PriorityCell, ResetReopens) {
  PriorityCell<std::uint32_t, int> cell;
  cell.offer(1);
  ASSERT_TRUE(cell.try_commit(1, 10));
  cell.reset();
  EXPECT_TRUE(cell.untouched());
  cell.offer(4);
  EXPECT_TRUE(cell.try_commit(4, 40));
  EXPECT_EQ(cell.read(), 40);
}

TEST(PriorityCellStress, MinRankProtocolCommitsExactlyLowestRank) {
  // Two-phase Priority(min-rank) CW: every thread offers its rank, barrier,
  // then the winner commits. Exactly the §2 Priority semantics.
  const int threads = std::max(4, omp_get_max_threads());
  for (int round = 0; round < 100; ++round) {
    PriorityCell<std::uint32_t, int> cell;
    std::atomic<int> commits{0};
#pragma omp parallel num_threads(threads)
    {
      const auto rank = static_cast<std::uint32_t>(omp_get_thread_num());
      cell.offer(rank);
#pragma omp barrier
      if (cell.try_commit(rank, static_cast<int>(rank) * 10)) {
        commits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ASSERT_EQ(commits.load(), 1);
    ASSERT_EQ(cell.best_key(), 0u) << "min rank must win";
    ASSERT_EQ(cell.read(), 0);
  }
}

TEST(PackedPriorityCell, UntouchedAndReset) {
  PackedPriorityCell cell;
  EXPECT_TRUE(cell.untouched());
  cell.offer(3, 30);
  EXPECT_FALSE(cell.untouched());
  cell.reset();
  EXPECT_TRUE(cell.untouched());
}

TEST(PackedPriorityCell, MinKeyWinsSinglePhase) {
  PackedPriorityCell cell;
  EXPECT_TRUE(cell.offer(10, 100));
  EXPECT_TRUE(cell.offer(5, 50));    // improvement
  EXPECT_FALSE(cell.offer(7, 70));   // worse key: rejected
  EXPECT_FALSE(cell.offer(10, 99));  // worse key: rejected
  EXPECT_EQ(cell.key(), 5u);
  EXPECT_EQ(cell.payload(), 50u);
}

TEST(PackedPriorityCell, PayloadBreaksKeyTies) {
  PackedPriorityCell cell;
  cell.offer(5, 80);
  EXPECT_TRUE(cell.offer(5, 20));  // same key, smaller payload wins the tie
  EXPECT_FALSE(cell.offer(5, 60));
  EXPECT_EQ(cell.key(), 5u);
  EXPECT_EQ(cell.payload(), 20u);
}

TEST(PackedPriorityCell, PackOrderingMatchesLexicographic) {
  EXPECT_LT(PackedPriorityCell::pack(1, 0xFFFFFFFF), PackedPriorityCell::pack(2, 0));
  EXPECT_LT(PackedPriorityCell::pack(3, 5), PackedPriorityCell::pack(3, 6));
}

TEST(PackedPriorityCellStress, GlobalMinimumAlwaysSurvives) {
  const int threads = std::max(4, omp_get_max_threads());
  for (int round = 0; round < 100; ++round) {
    PackedPriorityCell cell;
#pragma omp parallel num_threads(threads)
    {
      const auto t = static_cast<std::uint32_t>(omp_get_thread_num());
      // Each thread offers several (key, payload) pairs; the global min is
      // key 1 / payload round, offered by thread 0.
      cell.offer(100 + t, t);
      if (t == 0) cell.offer(1, static_cast<std::uint32_t>(round));
      cell.offer(50 + t, t);
    }
    ASSERT_EQ(cell.key(), 1u);
    ASSERT_EQ(cell.payload(), static_cast<std::uint32_t>(round));
  }
}

}  // namespace
}  // namespace crcw
