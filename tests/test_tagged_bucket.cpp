// TaggedBucket: the claim protocol and its pairing with the RoundTag.
#include "core/tagged_bucket.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace crcw {
namespace {

TEST(TaggedBucket, FreshBucketIsEmpty) {
  TaggedBucket<std::uint64_t> b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.key(), TaggedBucket<std::uint64_t>::kEmptyKey);
  EXPECT_EQ(b.tag().last_round(), kInitialRound);
}

TEST(TaggedBucket, FirstClaimWinsLaterClaimsClassify) {
  TaggedBucket<std::uint64_t> b;
  EXPECT_EQ(b.claim(7), BucketClaim::kWon);
  EXPECT_EQ(b.key(), 7u);
  EXPECT_EQ(b.claim(7), BucketClaim::kHeld);   // same key: present
  EXPECT_EQ(b.claim(9), BucketClaim::kOther);  // different key: probe on
  EXPECT_EQ(b.key(), 7u);                      // claim never overwrites
}

TEST(TaggedBucket, ResetReopensTheBucket) {
  TaggedBucket<std::uint64_t> b;
  ASSERT_EQ(b.claim(7), BucketClaim::kWon);
  ASSERT_TRUE(b.tag().try_acquire(3));
  b.reset();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.tag().last_round(), kInitialRound);
  EXPECT_EQ(b.claim(9), BucketClaim::kWon);
}

TEST(TaggedBucket, NarrowKeysUseTheirOwnSentinel) {
  TaggedBucket<std::uint32_t> b;
  EXPECT_EQ(TaggedBucket<std::uint32_t>::kEmptyKey, 0xFFFF'FFFFu);
  EXPECT_EQ(b.claim(0xFFFF'FFFEu), BucketClaim::kWon);  // max-1 is a real key
}

TEST(TaggedBucket, ClaimThenTagComposeIndependently) {
  // The two arbitrations are separate: losing the claim does not bar a
  // thread from winning the round's value write on that bucket.
  TaggedBucket<std::uint64_t> b;
  ASSERT_EQ(b.claim(7), BucketClaim::kWon);
  EXPECT_TRUE(b.tag().try_acquire(1));
  EXPECT_FALSE(b.tag().try_acquire(1));  // one winner per round
  EXPECT_TRUE(b.tag().try_acquire(2));   // next round reopens
}

TEST(TaggedBucket, ExactlyOneWinnerUnderContention) {
  const int threads = std::max(4, omp_get_max_threads());
  for (int trial = 0; trial < 200; ++trial) {
    TaggedBucket<std::uint64_t> b;
    std::atomic<int> winners{0};
    std::atomic<int> helds{0};
    std::atomic<int> others{0};
#pragma omp parallel num_threads(threads)
    {
      // Each thread offers its own key: one claim wins, same-key rivals
      // (none here) would see kHeld, the rest must observe the winner.
      const auto key = static_cast<std::uint64_t>(omp_get_thread_num());
      switch (b.claim(key)) {
        case BucketClaim::kWon:
          winners.fetch_add(1, std::memory_order_relaxed);
          break;
        case BucketClaim::kHeld:
          helds.fetch_add(1, std::memory_order_relaxed);
          break;
        case BucketClaim::kOther:
          others.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    ASSERT_EQ(winners.load(), 1);
    ASSERT_EQ(helds.load(), 0);  // keys are distinct per thread
    ASSERT_EQ(others.load(), threads - 1);
    // The committed key belongs to some thread, and every loser saw it.
    ASSERT_LT(b.key(), static_cast<std::uint64_t>(threads));
  }
}

TEST(TaggedBucket, SameKeyRaceReportsWonOrHeldConsistently) {
  const int threads = std::max(4, omp_get_max_threads());
  for (int trial = 0; trial < 200; ++trial) {
    TaggedBucket<std::uint64_t> b;
    std::atomic<int> winners{0};
    std::atomic<int> helds{0};
#pragma omp parallel num_threads(threads)
    {
      switch (b.claim(42)) {
        case BucketClaim::kWon:
          winners.fetch_add(1, std::memory_order_relaxed);
          break;
        case BucketClaim::kHeld:
          helds.fetch_add(1, std::memory_order_relaxed);
          break;
        case BucketClaim::kOther:
          ADD_FAILURE() << "same-key race produced kOther";
          break;
      }
    }
    ASSERT_EQ(winners.load(), 1);
    ASSERT_EQ(helds.load(), threads - 1);
    ASSERT_EQ(b.key(), 42u);
  }
}

}  // namespace
}  // namespace crcw
