// TaggedBucket: the claim protocol and its pairing with the RoundTag.
#include "core/tagged_bucket.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace crcw {
namespace {

TEST(TaggedBucket, FreshBucketIsEmpty) {
  TaggedBucket<std::uint64_t> b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.key(), TaggedBucket<std::uint64_t>::kEmptyKey);
  EXPECT_EQ(b.tag().last_round(), kInitialRound);
}

TEST(TaggedBucket, FirstClaimWinsLaterClaimsClassify) {
  TaggedBucket<std::uint64_t> b;
  EXPECT_EQ(b.claim(7), BucketClaim::kWon);
  EXPECT_EQ(b.key(), 7u);
  EXPECT_EQ(b.claim(7), BucketClaim::kHeld);   // same key: present
  EXPECT_EQ(b.claim(9), BucketClaim::kOther);  // different key: probe on
  EXPECT_EQ(b.key(), 7u);                      // claim never overwrites
}

TEST(TaggedBucket, ResetReopensTheBucket) {
  TaggedBucket<std::uint64_t> b;
  ASSERT_EQ(b.claim(7), BucketClaim::kWon);
  ASSERT_TRUE(b.tag().try_acquire(3));
  b.reset();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.tag().last_round(), kInitialRound);
  EXPECT_EQ(b.claim(9), BucketClaim::kWon);
}

TEST(TaggedBucket, NarrowKeysUseTheirOwnSentinel) {
  TaggedBucket<std::uint32_t> b;
  EXPECT_EQ(TaggedBucket<std::uint32_t>::kEmptyKey, 0xFFFF'FFFFu);
  EXPECT_EQ(b.claim(0xFFFF'FFFEu), BucketClaim::kWon);  // max-1 is a real key
}

TEST(TaggedBucket, ClaimThenTagComposeIndependently) {
  // The two arbitrations are separate: losing the claim does not bar a
  // thread from winning the round's value write on that bucket.
  TaggedBucket<std::uint64_t> b;
  ASSERT_EQ(b.claim(7), BucketClaim::kWon);
  EXPECT_TRUE(b.tag().try_acquire(1));
  EXPECT_FALSE(b.tag().try_acquire(1));  // one winner per round
  EXPECT_TRUE(b.tag().try_acquire(2));   // next round reopens
}

TEST(TaggedBucket, ExactlyOneWinnerUnderContention) {
  const int threads = std::max(4, omp_get_max_threads());
  for (int trial = 0; trial < 200; ++trial) {
    TaggedBucket<std::uint64_t> b;
    std::atomic<int> winners{0};
    std::atomic<int> helds{0};
    std::atomic<int> others{0};
#pragma omp parallel num_threads(threads)
    {
      // Each thread offers its own key: one claim wins, same-key rivals
      // (none here) would see kHeld, the rest must observe the winner.
      const auto key = static_cast<std::uint64_t>(omp_get_thread_num());
      switch (b.claim(key)) {
        case BucketClaim::kWon:
          winners.fetch_add(1, std::memory_order_relaxed);
          break;
        case BucketClaim::kHeld:
          helds.fetch_add(1, std::memory_order_relaxed);
          break;
        case BucketClaim::kOther:
          others.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    ASSERT_EQ(winners.load(), 1);
    ASSERT_EQ(helds.load(), 0);  // keys are distinct per thread
    ASSERT_EQ(others.load(), threads - 1);
    // The committed key belongs to some thread, and every loser saw it.
    ASSERT_LT(b.key(), static_cast<std::uint64_t>(threads));
  }
}

TEST(LiveTag, FreshTagIsLiveAtInitialRound) {
  // Born-live polarity: a claimed bucket needs no tag RMW on the insert
  // fast path, so the fresh word must already read (kInitialRound, live).
  LiveTag tag;
  EXPECT_TRUE(tag.live());
  EXPECT_EQ(tag.last_round(), kInitialRound);
}

TEST(LiveTag, EraseAndUpsertShareOneArbitration) {
  // An erase is a CAS-LT write committing live=false: same round, same
  // word, one winner across both op kinds.
  LiveTag tag;
  bool was_live = false;
  EXPECT_TRUE(tag.try_acquire(1, /*live=*/false, was_live));
  EXPECT_TRUE(was_live);  // the erase replaced the born-live state
  EXPECT_FALSE(tag.live());
  EXPECT_FALSE(tag.try_acquire(1, /*live=*/true, was_live));  // round closed
  EXPECT_FALSE(tag.live());  // the loser's upsert changed nothing

  // Next round: an upsert revives, and the winner observes the tombstone.
  EXPECT_TRUE(tag.try_acquire(2, /*live=*/true, was_live));
  EXPECT_FALSE(was_live);
  EXPECT_TRUE(tag.live());
}

TEST(LiveTag, MarkLiveFlipsExactlyOnce) {
  LiveTag tag;
  bool was_live = false;
  ASSERT_TRUE(tag.try_acquire(1, /*live=*/false, was_live));
  EXPECT_TRUE(tag.mark_live());   // first reviver wins
  EXPECT_FALSE(tag.mark_live());  // idempotent for everyone after
  EXPECT_TRUE(tag.live());
  EXPECT_EQ(tag.last_round(), 1u);  // the flip never touches the round
}

TEST(LiveTag, PackedRoundTripsThroughRestore) {
  LiveTag tag;
  bool was_live = false;
  ASSERT_TRUE(tag.try_acquire(5, /*live=*/false, was_live));
  LiveTag copy;
  copy.restore(tag.packed());  // what a migration sweep carries
  EXPECT_EQ(copy.last_round(), 5u);
  EXPECT_FALSE(copy.live());
  EXPECT_FALSE(copy.try_acquire(5));  // monotonicity survives the move
  EXPECT_TRUE(copy.try_acquire(6));
}

TEST(LiveTag, OneWinnerAmongMixedErasesAndUpserts) {
  // N threads, half erasing and half upserting the same (key, round):
  // exactly one CAS commits, and post-barrier liveness matches the winner's
  // op kind — the tentpole's composition contract at the tag level.
  const int threads = std::max(4, omp_get_max_threads());
  for (int trial = 0; trial < 200; ++trial) {
    LiveTag tag;
    std::atomic<int> winners{0};
    std::atomic<int> erase_won{0};
    std::atomic<int> replaced_dead{0};
#pragma omp parallel num_threads(threads)
    {
      const bool erase = omp_get_thread_num() % 2 == 0;
      bool was_live = false;
      if (tag.try_acquire(1, /*live=*/!erase, was_live)) {
        winners.fetch_add(1, std::memory_order_relaxed);
        if (erase) erase_won.fetch_add(1, std::memory_order_relaxed);
        if (!was_live) replaced_dead.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ASSERT_EQ(winners.load(), 1);
    ASSERT_EQ(replaced_dead.load(), 0);  // the winner replaced the fresh live state
    ASSERT_EQ(tag.live(), erase_won.load() == 0);
    ASSERT_EQ(tag.last_round(), 1u);
  }
}

TEST(TaggedBucket, DeadClassifiesTombstonedBuckets) {
  TaggedBucket<std::uint64_t> b;
  EXPECT_FALSE(b.dead());  // empty is empty, not dead
  ASSERT_EQ(b.claim(7), BucketClaim::kWon);
  EXPECT_FALSE(b.dead());  // claimed buckets are born live
  bool was_live = false;
  ASSERT_TRUE(b.tag().try_acquire(1, /*live=*/false, was_live));
  EXPECT_TRUE(b.dead());  // claimed + tombstoned: probe walks keep going
  ASSERT_TRUE(b.tag().try_acquire(2, /*live=*/true, was_live));
  EXPECT_FALSE(b.dead());
}

TEST(TaggedBucket, SameKeyRaceReportsWonOrHeldConsistently) {
  const int threads = std::max(4, omp_get_max_threads());
  for (int trial = 0; trial < 200; ++trial) {
    TaggedBucket<std::uint64_t> b;
    std::atomic<int> winners{0};
    std::atomic<int> helds{0};
#pragma omp parallel num_threads(threads)
    {
      switch (b.claim(42)) {
        case BucketClaim::kWon:
          winners.fetch_add(1, std::memory_order_relaxed);
          break;
        case BucketClaim::kHeld:
          helds.fetch_add(1, std::memory_order_relaxed);
          break;
        case BucketClaim::kOther:
          ADD_FAILURE() << "same-key race produced kOther";
          break;
      }
    }
    ASSERT_EQ(winners.load(), 1);
    ASSERT_EQ(helds.load(), threads - 1);
    ASSERT_EQ(b.key(), 42u);
  }
}

}  // namespace
}  // namespace crcw
