// dedup: the hash-table workload, all methods against the sort baseline,
// with the resize-storm path forced.
#include "algorithms/dedup.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algorithms/dispatch.hpp"
#include "util/rng.hpp"

namespace crcw::algo {
namespace {

[[nodiscard]] std::vector<std::uint64_t> random_keys(std::size_t n,
                                                     std::uint64_t distinct,
                                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.bounded(distinct);
  return keys;
}

TEST(Dedup, EmptyInput) {
  for (const auto& method : dedup_methods()) {
    const DedupResult r = run_dedup(method, {});
    EXPECT_EQ(r.distinct, 0u) << method;
  }
}

TEST(Dedup, AllMethodsAgreeWithSortBaseline) {
  const auto keys = random_keys(20000, 3000, 11);
  const DedupResult expected = dedup_sort(keys);
  EXPECT_GT(expected.distinct, 2900u);  // 20k draws cover nearly all 3k values
  for (const auto& method : dedup_methods()) {
    const DedupResult r = run_dedup(method, keys);
    EXPECT_EQ(r.distinct, expected.distinct) << method;
  }
}

TEST(Dedup, AllDistinctAndAllEqualExtremes) {
  std::vector<std::uint64_t> distinct(5000);
  for (std::uint64_t i = 0; i < distinct.size(); ++i) distinct[i] = i * 2654435761u;
  std::vector<std::uint64_t> equal(5000, 42);
  for (const auto& method : dedup_methods()) {
    EXPECT_EQ(run_dedup(method, distinct).distinct, 5000u) << method;
    EXPECT_EQ(run_dedup(method, equal).distinct, 1u) << method;
  }
}

TEST(Dedup, ResizeStormIsExercised) {
  // Start tiny relative to the distinct count: correctness must survive
  // many cooperative grows, and the grows counter must prove they ran.
  const auto keys = random_keys(50000, 20000, 23);
  DedupOptions opts;
  opts.threads = 4;  // pin the stride so the round count is machine-independent
  opts.initial_capacity = 64;
  opts.round_chunk = 512;
  const DedupResult r = dedup_caslt(keys, opts);
  EXPECT_EQ(r.distinct, dedup_sort(keys).distinct);
  EXPECT_GE(r.grows, 5u);  // 64 → ≥20000 capacity is ≥ 8 doublings
  EXPECT_GE(r.rounds, 2u);
}

TEST(Dedup, SingleThreadMatchesMultiThread) {
  const auto keys = random_keys(10000, 1234, 31);
  DedupOptions serial;
  serial.threads = 1;
  for (const auto& method : dedup_methods()) {
    EXPECT_EQ(run_dedup(method, keys, serial).distinct,
              run_dedup(method, keys).distinct)
        << method;
  }
}

TEST(Dedup, UnknownMethodThrows) {
  EXPECT_THROW((void)run_dedup("nope", {}), std::invalid_argument);
}

TEST(Dedup, ProfileReportsTableWork) {
  const auto keys = random_keys(5000, 800, 41);
  for (const auto& method : dedup_methods()) {
    const auto totals = profile_dedup(method, keys);
    if (method == "sort") {
      EXPECT_FALSE(totals.has_value());
      continue;
    }
    ASSERT_TRUE(totals.has_value()) << method;
    EXPECT_EQ(totals->wins, 800u) << method;  // one win per distinct key
    // Every duplicate insert walks at least one node/bucket to find its
    // key (the chained pre-scan reports 0 probes on an empty chain, so the
    // floor is duplicates, not all inserts).
    EXPECT_GE(totals->attempts, keys.size() - totals->wins) << method;
    EXPECT_GE(totals->atomics, totals->wins) << method;
  }
}

}  // namespace
}  // namespace crcw::algo
