// ShardedScheduler behind BasicServeSession: routing determinism, the
// one-logical-round-across-shards guarantee, shard-local batching (the
// routing hit-rate), per-shard grow/reclaim, and read-your-writes through
// ClientSession.
#include "serve/serve_session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ds/hash_common.hpp"

namespace crcw::serve {
namespace {

[[nodiscard]] ServeConfig sharded_config(int shards) {
  return ServeConfig{}.with_shards(shards);
}

/// First key (≥ `from`) routed to `shard` — the tests pick keys per shard.
[[nodiscard]] std::uint64_t key_in_shard(const ShardedScheduler& sched, int shard,
                                         std::uint64_t from = 1) {
  for (std::uint64_t k = from;; ++k) {
    if (sched.shard_of(k) == shard) return k;
  }
}

TEST(ShardedServe, RoutingIsDeterministicAndInRange) {
  ShardedServeSession session(sharded_config(8));
  const auto& backend = session.backend();
  ASSERT_EQ(backend.shard_count(), 8);
  for (std::uint64_t k = 1; k < 2000; ++k) {
    const int s = backend.shard_of(k);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
    EXPECT_EQ(s, backend.shard_of(k));  // stable
    // shard choice uses the HIGH mix bits, decorrelated from bucket probes
    EXPECT_EQ(static_cast<std::uint64_t>(s), (ds::mix64(k) >> 32) & 7u);
  }
}

TEST(ShardedServe, ShardCountRoundsUpToPowerOfTwo) {
  ShardedServeSession session(sharded_config(3));
  EXPECT_EQ(session.backend().shard_count(), 4);
  EXPECT_EQ(session.config().shards.count, 4);
}

TEST(ShardedServe, OneLogicalRoundAcrossShards) {
  // One drain, ops spread over every shard: they all execute in the SAME
  // logical round (one arbiter round spans the shards atomically).
  ServeConfig cfg = sharded_config(4);
  cfg.batch.max_wait_us = 1'000'000;
  ShardedServeSession session(cfg);

  constexpr std::uint64_t kOps = 64;
  std::vector<OpFuture> futures(kOps);
  for (std::uint64_t i = 0; i < kOps; ++i) {
    session.submit(Op::upsert(i + 1, i), futures[i]);
  }
  session.flush();

  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(futures[i].ready()) << "op " << i;
    EXPECT_TRUE(futures[i].result().won);
    EXPECT_EQ(futures[i].result().round, 1u) << "op " << i;
  }
  EXPECT_EQ(session.backend().round(), 1u);
  EXPECT_EQ(session.backend().ops_served(), kOps);
}

TEST(ShardedServe, LookupsNeverSeeOwnRoundOnAnyShard) {
  // The cross-shard round boundary: a lookup and the first write of its
  // key in the same round must miss regardless of which shards they and
  // the round's other ops land on.
  ShardedServeSession session(sharded_config(4));
  OpFuture looks[4], writes[4];
  const auto& backend = session.backend();
  for (int s = 0; s < 4; ++s) {
    const std::uint64_t key = key_in_shard(backend, s);
    session.submit(Op::lookup(key), looks[s]);
    session.submit(Op::upsert(key, 100 + static_cast<std::uint64_t>(s)), writes[s]);
  }
  session.flush();
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(looks[s].ready());
    ASSERT_TRUE(writes[s].ready());
    EXPECT_EQ(looks[s].result().round, writes[s].result().round);
    EXPECT_FALSE(looks[s].result().won) << "shard " << s;
    EXPECT_TRUE(writes[s].result().won) << "shard " << s;
  }
}

TEST(ShardedServe, RoutedSubmitsAreShardLocal) {
  ServeConfig cfg = sharded_config(4).with_counters(true);
  ShardedServeSession session(cfg);

  constexpr std::uint64_t kOps = 512;
  std::vector<OpFuture> futures(kOps);
  for (std::uint64_t i = 0; i < kOps; ++i) {
    session.submit(Op::upsert(i + 1, i), futures[i]);
  }
  session.flush();

  const BackendStats st = session.stats();
  EXPECT_EQ(st.shard_local_ops, kOps);  // session.submit routes every op
  EXPECT_EQ(st.shard_foreign_ops, 0u);
  EXPECT_DOUBLE_EQ(st.routing_hit_rate(), 1.0);
  EXPECT_EQ(st.shards, 4);
  EXPECT_EQ(st.keys, kOps);

  // Every shard executed exactly the ops of its own keys.
  for (int s = 0; s < 4; ++s) {
    std::uint64_t expect = 0;
    for (std::uint64_t k = 1; k <= kOps; ++k) {
      if (session.backend().shard_of(k) == s) ++expect;
    }
    EXPECT_EQ(session.backend().shard_ops(s), expect) << "shard " << s;
  }
}

TEST(ShardedServe, UnroutedStraysAreReroutedAndCountedForeign) {
  // Bypass the session's router: enqueue into lane 0 (shard 0's block)
  // regardless of key. The pump must re-route the strays to the right
  // shard (correctness) and count them against the hit-rate (telemetry).
  const ServeConfig cfg = sharded_config(4).validated();
  ServeMetrics metrics(cfg.batch.counters);
  RequestQueue queue(ShardedScheduler::queue_lanes(cfg),
                     cfg.batch.resolved_lane_backlog(), cfg.batch.backoff_spins,
                     cfg.batch.sample_mask());
  ShardedScheduler sched(cfg, queue, metrics);

  const std::uint64_t foreign_key = key_in_shard(sched, 3);
  const std::uint64_t local_key = key_in_shard(sched, 0);
  OpFuture f_foreign, f_local;
  ASSERT_TRUE(queue.try_enqueue(Op::upsert(foreign_key, 7), f_foreign, 0));
  ASSERT_TRUE(queue.try_enqueue(Op::upsert(local_key, 8), f_local, 0));
  ASSERT_TRUE(sched.flush());

  ASSERT_TRUE(f_foreign.ready());
  EXPECT_TRUE(f_foreign.result().won);
  const std::uint64_t* v = sched.committed_read(foreign_key);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7u);  // landed on its own shard despite the wrong lane

  const BackendStats st = sched.stats();
  EXPECT_EQ(st.shard_foreign_ops, 1u);
  EXPECT_EQ(st.shard_local_ops, 1u);
  EXPECT_DOUBLE_EQ(st.routing_hit_rate(), 0.5);
}

TEST(ShardedServe, PerShardGrowOnlyTouchesTheLoadedShard) {
  ServeConfig cfg = sharded_config(2);
  cfg.table.expected_keys = 8;  // tiny per-shard start
  cfg.batch.max_wait_us = 1'000'000;
  ShardedServeSession session(cfg);
  const auto& backend = session.backend();
  const std::uint64_t before0 = backend.shard_table(0).bucket_count();
  const std::uint64_t before1 = backend.shard_table(1).bucket_count();

  // One big single-shard batch: every key targets shard 0.
  std::vector<OpFuture> futures(600);
  std::uint64_t k = 1;
  for (auto& f : futures) {
    k = key_in_shard(backend, 0, k + 1);
    session.submit(Op::upsert(k, k), f);
  }
  session.flush();

  EXPECT_GT(backend.shard_table(0).bucket_count(), before0);
  EXPECT_EQ(backend.shard_table(1).bucket_count(), before1);  // untouched
  for (const OpFuture& f : futures) {
    ASSERT_TRUE(f.ready());
    EXPECT_TRUE(f.result().won);
  }
}

TEST(ShardedServe, PerShardReclaimDropsTombstonesAtBatchClose) {
  ServeConfig cfg = sharded_config(2);
  cfg.batch.max_wait_us = 1'000'000;
  ShardedServeSession session(cfg);
  const auto& backend = session.backend();

  // Fill shard 0, then erase everything — the erase batch's close must
  // reclaim the tombstones of shard 0 without shard 1's involvement.
  constexpr int kKeys = 256;
  std::vector<std::uint64_t> keys;
  std::uint64_t k = 1;
  for (int i = 0; i < kKeys; ++i) {
    k = key_in_shard(backend, 0, k + 1);
    keys.push_back(k);
  }
  std::vector<OpFuture> futures(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    session.submit(Op::upsert(keys[i], 1), futures[i]);
  }
  session.flush();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    session.submit(Op::erase(keys[i]), futures[i]);
  }
  session.flush();

  EXPECT_EQ(backend.shard_table(0).size(), 0u);
  EXPECT_EQ(backend.shard_table(0).tombstones(), 0u)
      << "batch close must have reclaimed the erased shard";
  for (const OpFuture& f : futures) EXPECT_TRUE(f.result().won);
}

TEST(ShardedServe, ClientSessionReadsItsOwnWritesOnEveryShard) {
  ShardedServeSession session(sharded_config(4));
  ClientSession<ShardedServeSession> client(session);

  for (std::uint64_t i = 1; i <= 200; ++i) {
    const Result w = client.call(Op::upsert(i, i * 10));
    ASSERT_TRUE(w.won);
    const int shard = session.backend().shard_of(i);
    EXPECT_GE(client.last_write_round(shard), w.round);
    const Result r = client.call(Op::lookup(i));
    ASSERT_TRUE(r.won) << "key " << i;
    EXPECT_EQ(r.value, i * 10);
    EXPECT_GT(r.round, w.round);  // strictly later round ⇒ write visible
  }
  // The sync path never needs the retry loop — the guarantee comes from
  // the batch lifecycle; the tracker just checks it.
  EXPECT_EQ(client.stale_retries(), 0u);
}

TEST(ShardedServe, SingleShardDegeneratesToFlatBehavior) {
  ShardedServeSession session(sharded_config(1));
  EXPECT_EQ(session.backend().shard_count(), 1);
  EXPECT_EQ(session.backend().shard_of(0xdeadbeef), 0);
  ASSERT_TRUE(session.call(Op::upsert(5, 50)).won);
  EXPECT_EQ(session.call(Op::lookup(5)).value, 50u);
  EXPECT_EQ(session.stats().routing_hit_rate(), 1.0);
}

}  // namespace
}  // namespace crcw::serve
