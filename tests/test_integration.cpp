// Cross-module integration: OpenMP kernels vs the PRAM model simulator vs
// sequential references, end to end — generate, run, cross-validate.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/dispatch.hpp"
#include "algorithms/max.hpp"
#include "core/arbiter.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reference.hpp"
#include "pram/machine.hpp"
#include "sim/programs.hpp"
#include "util/rng.hpp"

namespace crcw {
namespace {

/// The headline cross-check: the OpenMP CAS-LT kernel and the PRAM model
/// simulator execute the same Maximum algorithm and must agree — the
/// implementation realises the model.
TEST(Integration, MaxKernelAgreesWithModelSimulator) {
  util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint32_t> list(60);
    for (auto& x : list) x = static_cast<std::uint32_t>(rng.bounded(1000));

    const std::uint64_t impl = algo::max_index_caslt(list);

    std::vector<sim::word_t> model_list(list.begin(), list.end());
    sim::Simulator model(sim::AccessMode::kCommon, 1, trial);
    const std::uint64_t modeled = sim::programs::max_constant_time(model, model_list);

    EXPECT_EQ(impl, modeled) << "trial " << trial;
  }
}

TEST(Integration, BfsKernelAgreesWithModelSimulator) {
  const auto g = graph::random_graph(120, 400, 9);
  const auto impl = algo::bfs_caslt(g, 0);
  sim::Simulator model(sim::AccessMode::kArbitrary, 1);
  const auto modeled = sim::programs::bfs(model, g.offsets(), g.targets(), 0);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(impl.level[v], modeled.level[v]) << v;
  }
}

/// Arbitrary-CW whole-pipeline property: whichever writes win — OpenMP
/// scheduling on the implementation side, seeded adversary on the model
/// side — the *deterministic observables* (levels, partitions) agree.
TEST(Integration, ArbitraryWinnersNeverChangeObservables) {
  const auto g = graph::random_graph(150, 450, 31);
  const auto ref_levels = graph::bfs_levels(g, 0);
  const auto ref_labels = graph::connected_components(g);

  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto b = algo::bfs_caslt(g, 0, {.threads = 8});
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(b.level[v], ref_levels[v]);
    }
    const auto c = algo::cc_caslt(g, {.threads = 8});
    ASSERT_EQ(graph::canonicalize_labels(c.label), ref_labels);
  }
}

TEST(Integration, GraphPipelineGenerateSaveLoadRun) {
  const auto dir = std::filesystem::temp_directory_path() / "crcw_integration";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "g.csr").string();

  const auto g = graph::random_graph(200, 600, 12);
  graph::save_csr_binary(path, g);
  const auto loaded = graph::load_csr_binary(path);
  ASSERT_EQ(loaded, g);

  const auto bfs = algo::bfs_caslt(loaded, 0);
  EXPECT_TRUE(graph::validate_bfs_tree(loaded, 0, bfs.level, bfs.parent));

  const auto cc = algo::cc_caslt(loaded);
  EXPECT_TRUE(graph::validate_components(loaded, cc.label));

  // BFS reachability from v and v's component must be the same vertex set.
  const auto& labels = cc.label;
  for (std::size_t v = 0; v < loaded.num_vertices(); ++v) {
    EXPECT_EQ(bfs.level[v] != -1, labels[v] == labels[0]) << v;
  }
  std::filesystem::remove_all(dir);
}

TEST(Integration, MachineDrivenBfsMatchesKernel) {
  // The same BFS written directly against pram::Machine — the PRAM round
  // counter feeding the CAS-LT arbiter — must match the packaged kernel.
  const auto g = graph::random_graph(100, 300, 44);
  const std::uint64_t n = g.num_vertices();

  pram::Machine m(pram::MachineConfig{.threads = 4});
  WriteArbiter<CasLtPolicy> arbiter(n);
  std::vector<std::int64_t> level(n, -1);
  level[0] = 0;

  bool done = false;
  std::int64_t l = 0;
  while (!done) {
    std::atomic<std::uint8_t> any{0};
    m.step(n, [&](pram::Machine::vproc_t v, round_t round) {
      if (std::atomic_ref<std::int64_t>(level[v]).load(std::memory_order_relaxed) != l) {
        return;
      }
      for (const auto u : g.neighbors(static_cast<graph::vertex_t>(v))) {
        if (std::atomic_ref<std::int64_t>(level[u]).load(std::memory_order_relaxed) == -1 &&
            arbiter.acquire_at(u, round)) {
          std::atomic_ref<std::int64_t>(level[u]).store(l + 1, std::memory_order_relaxed);
          any.store(1, std::memory_order_relaxed);
        }
      }
    });
    done = any.load() == 0;
    ++l;
  }

  const auto expected = graph::bfs_levels(g, 0);
  for (std::size_t v = 0; v < n; ++v) ASSERT_EQ(level[v], expected[v]) << v;
  EXPECT_EQ(m.counters().depth, static_cast<std::uint64_t>(l));
}

TEST(Integration, DispatchCoversEveryAdvertisedMethod) {
  const auto g = graph::random_graph(60, 150, 2);
  std::vector<std::uint32_t> list(100);
  util::Xoshiro256 rng(1);
  for (auto& x : list) x = static_cast<std::uint32_t>(rng.bounded(500));

  for (const auto& mth : algo::max_methods()) {
    EXPECT_EQ(algo::run_max(mth, list), algo::max_index_seq(list)) << mth;
  }
  const auto ref = graph::bfs_levels(g, 0);
  for (const auto& mth : algo::bfs_methods()) {
    const auto r = algo::run_bfs(mth, g, 0);
    for (std::size_t v = 0; v < ref.size(); ++v) ASSERT_EQ(r.level[v], ref[v]) << mth;
  }
  for (const auto& mth : algo::cc_methods()) {
    EXPECT_TRUE(graph::validate_components(g, algo::run_cc(mth, g).label)) << mth;
  }
}

}  // namespace
}  // namespace crcw
