// SlotAllocator — chunked per-lane slot grants and the round-end
// compaction that squeezes out the unused chunk tails. The invariant every
// test drives at: after compact(), data[0, dense) holds exactly the
// elements granted this round — none lost, none duplicated — regardless of
// which lanes granted how much.
#include "core/slot_alloc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace crcw {
namespace {

TEST(SlotAllocator, SingleLaneGrantsAreDense) {
  SlotAllocator slots(1, /*chunk=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(slots.grant(0), i);
  }
  EXPECT_EQ(slots.grants(), 20u);
  // 20 grants at chunk 8 = 3 shared RMWs, not 20.
  EXPECT_EQ(slots.refills(), 3u);
  EXPECT_EQ(slots.high_water(), 24u);
}

TEST(SlotAllocator, RefillsAreGrantsOverChunkPerLane) {
  SlotAllocator slots(2, /*chunk=*/4);
  for (int i = 0; i < 9; ++i) (void)slots.grant(0);  // ceil(9/4)  = 3
  for (int i = 0; i < 4; ++i) (void)slots.grant(1);  // ceil(4/4)  = 1
  EXPECT_EQ(slots.grants(), 13u);
  EXPECT_EQ(slots.refills(), 4u);
}

TEST(SlotAllocator, CapacityCoversWorstCaseHoles) {
  SlotAllocator slots(4, /*chunk=*/16);
  EXPECT_EQ(slots.slack(), 64u);
  EXPECT_EQ(slots.capacity_for(100), 164u);
  // high_water never exceeds capacity_for(G) for G grants: every refill
  // claims one chunk and a lane holds at most one partial chunk.
  std::vector<int> dummy(static_cast<std::size_t>(slots.capacity_for(10)));
  for (int i = 0; i < 10; ++i) (void)slots.grant(i % 4);
  EXPECT_LE(slots.high_water(), slots.capacity_for(10));
}

TEST(SlotAllocator, EmptyRoundCompactsToZero) {
  SlotAllocator slots(3);
  std::vector<int> data(static_cast<std::size_t>(slots.capacity_for(0)));
  EXPECT_EQ(slots.compact(data.data()), 0u);
  EXPECT_EQ(slots.high_water(), 0u);
}

// Drives lanes serially into a known hole pattern and checks the compacted
// prefix is a permutation of the granted values.
void check_compaction(std::size_t lanes, std::uint64_t chunk,
                      const std::vector<int>& grants_per_lane) {
  SlotAllocator slots(static_cast<int>(lanes), chunk);
  std::uint64_t total = 0;
  for (const int g : grants_per_lane) total += static_cast<std::uint64_t>(g);
  std::vector<std::uint64_t> data(static_cast<std::size_t>(slots.capacity_for(total)),
                                  static_cast<std::uint64_t>(-1));

  // Interleave grants across lanes so chunks alternate ownership.
  std::uint64_t value = 0;
  auto remaining = grants_per_lane;
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t l = 0; l < lanes; ++l) {
      if (remaining[l] > 0) {
        --remaining[l];
        any = true;
        data[slots.grant(static_cast<int>(l))] = value++;
      }
    }
  }

  const std::uint64_t dense = slots.compact(data.data());
  ASSERT_EQ(dense, total);
  std::vector<std::uint64_t> prefix(data.begin(),
                                    data.begin() + static_cast<std::ptrdiff_t>(dense));
  std::sort(prefix.begin(), prefix.end());
  for (std::uint64_t i = 0; i < dense; ++i) {
    ASSERT_EQ(prefix[static_cast<std::size_t>(i)], i) << "slot lost or duplicated";
  }
  // Next round starts from a clean cursor.
  EXPECT_EQ(slots.high_water(), 0u);
}

TEST(SlotAllocator, CompactionFillsPartialChunks) {
  check_compaction(2, 4, {5, 3});    // both lanes end mid-chunk
  check_compaction(3, 4, {4, 0, 1}); // idle lane, exact-chunk lane
  check_compaction(4, 8, {1, 1, 1, 1});  // dense << one chunk each
  check_compaction(2, 4, {8, 8});    // no holes at all
  check_compaction(1, 16, {5});      // single lane, single partial chunk
}

TEST(SlotAllocator, CompactionAcrossRoundsReusesSlots) {
  SlotAllocator slots(2, 4);
  std::vector<std::uint64_t> data(static_cast<std::size_t>(slots.capacity_for(6)));
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t v = 0; v < 6; ++v) {
      data[slots.grant(static_cast<int>(v & 1))] = v;
    }
    ASSERT_EQ(slots.compact(data.data()), 6u);
    std::vector<std::uint64_t> prefix(data.begin(), data.begin() + 6);
    std::sort(prefix.begin(), prefix.end());
    for (std::uint64_t v = 0; v < 6; ++v) ASSERT_EQ(prefix[v], v);
  }
  EXPECT_EQ(slots.grants(), 30u);  // lifetime counters survive compaction
}

TEST(SlotAllocator, ResetRoundAbandonsGrants) {
  SlotAllocator slots(1, 8);
  (void)slots.grant(0);
  (void)slots.grant(0);
  slots.reset_round();
  EXPECT_EQ(slots.high_water(), 0u);
  EXPECT_EQ(slots.grant(0), 0u);  // fresh cursor
}

TEST(SlotAllocator, RecycledSlotsAreGrantedBeforeFreshOnes) {
  SlotAllocator slots(1, /*chunk=*/4);
  // Burn the first 6 arena slots, then recycle three of them.
  for (int i = 0; i < 6; ++i) (void)slots.grant(0);
  slots.stock_recycled({2, 0, 5});
  EXPECT_EQ(slots.grant(0), 2u);
  EXPECT_EQ(slots.grant(0), 0u);
  EXPECT_EQ(slots.grant(0), 5u);
  EXPECT_EQ(slots.recycled_grants(), 3u);
  // Pool dry: grants fall back to the lane's remaining arena chunk.
  EXPECT_EQ(slots.grant(0), 6u);
  EXPECT_EQ(slots.grant(0), 7u);
}

TEST(SlotAllocator, DryPoolCostsOneProbePerGeneration) {
  SlotAllocator slots(1, /*chunk=*/4);
  slots.stock_recycled({0});
  const std::uint64_t refills_before = slots.refills();
  (void)slots.grant(0);  // claims the pool's only index (one pool RMW)
  // The next grant probes the now-dry pool once, remembers the generation,
  // and every further grant skips the pool entirely.
  (void)slots.grant(0);
  const std::uint64_t after_first_dry = slots.refills();
  for (int i = 0; i < 20; ++i) (void)slots.grant(0);
  // Only arena-chunk refills accrue after the dry probe.
  EXPECT_LE(slots.refills() - after_first_dry, (20u / 4) + 1);
  EXPECT_GE(slots.refills(), refills_before + 1);
  // Restocking opens a new generation: the pool is probed again.
  slots.stock_recycled({3});
  EXPECT_EQ(slots.grant(0), 3u);
}

TEST(SlotAllocator, DrainRecycledReturnsUngrantedIndices) {
  SlotAllocator slots(2, /*chunk=*/2);
  slots.stock_recycled({10, 11, 12, 13, 14});
  EXPECT_EQ(slots.grant(0), 10u);  // lane 0 stashes [10, 12)
  std::vector<std::uint64_t> left = slots.drain_recycled();
  std::sort(left.begin(), left.end());
  EXPECT_EQ(left, (std::vector<std::uint64_t>{11, 12, 13, 14}));
  // Drained pool is empty; the next stock folds nothing stale in.
  slots.stock_recycled({20});
  EXPECT_EQ(slots.grant(1), 20u);
}

TEST(SlotAllocator, StockFoldsUndrainedRemainderIntoNewPool) {
  SlotAllocator slots(1, /*chunk=*/8);
  slots.stock_recycled({1, 2, 3});
  EXPECT_EQ(slots.grant(0), 1u);  // 2 and 3 still stashed
  slots.stock_recycled({4});
  // The unconsumed {2, 3} survived the restock; all three grant eventually.
  std::vector<std::uint64_t> got = {slots.grant(0), slots.grant(0), slots.grant(0)};
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(slots.recycled_grants(), 4u);
}

TEST(SlotAllocatorTorture, ConcurrentGrantsNeverDuplicateRecycledSlots) {
  // Lanes race the recycled pool's shared cursor: every recycled index must
  // be granted at most once per generation, and fresh arena grants must
  // never collide with recycled ones.
  constexpr int kThreads = 4;
  constexpr int kGenerations = 20;
  SlotAllocator slots(kThreads, /*chunk=*/8);
  // Pre-burn 256 arena slots to recycle from.
  for (int i = 0; i < 256; ++i) (void)slots.grant(i % kThreads);

  for (int gen = 0; gen < kGenerations; ++gen) {
    std::vector<std::uint64_t> pool(64);
    for (std::uint64_t i = 0; i < 64; ++i) pool[i] = i;  // indices 0..63
    slots.stock_recycled(std::move(pool));

    std::vector<std::vector<std::uint64_t>> per_lane(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 40; ++i) {
          per_lane[static_cast<std::size_t>(t)].push_back(slots.grant(t));
        }
      });
    }
    for (auto& t : threads) t.join();

    std::vector<std::uint64_t> all;
    for (const auto& v : per_lane) all.insert(all.end(), v.begin(), v.end());
    ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * 40);
    std::sort(all.begin(), all.end());
    ASSERT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << "slot granted twice in generation " << gen;
    // Exactly the 64 recycled indices appear below the arena high-water
    // region claimed before this generation.
    const std::uint64_t recycled_seen = static_cast<std::uint64_t>(
        std::count_if(all.begin(), all.end(), [](std::uint64_t s) { return s < 64; }));
    ASSERT_EQ(recycled_seen, 64u) << "recycled index lost in generation " << gen;
  }
}

// The torture the allocator exists for: T threads grant concurrently
// (std::barrier between rounds), each stamps its slots with globally
// unique values, and the compacted prefix must be exactly the granted set
// — the property the frontier kernels rely on for correctness.
TEST(SlotAllocatorTorture, NoSlotLostOrDuplicated) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  constexpr std::uint64_t kMaxPerThread = 300;
  SlotAllocator slots(kThreads, /*chunk=*/16);
  std::vector<std::uint64_t> data(
      static_cast<std::size_t>(slots.capacity_for(kThreads * kMaxPerThread)));

  std::vector<std::uint64_t> counts(kThreads);
  std::barrier sync(kThreads, [&]() noexcept {});
  std::barrier round_done(kThreads);

  auto worker = [&](int lane) {
    util::SplitMix64 rng(0x5107a110cull + static_cast<std::uint64_t>(lane));
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t mine = rng.next() % (kMaxPerThread + 1);
      counts[static_cast<std::size_t>(lane)] = mine;
      for (std::uint64_t i = 0; i < mine; ++i) {
        // Globally unique stamp: (lane, i) encoded.
        data[slots.grant(lane)] = static_cast<std::uint64_t>(lane) * kMaxPerThread + i;
      }
      sync.arrive_and_wait();  // all grants for this round done
      if (lane == 0) {
        std::uint64_t total = 0;
        for (const auto c : counts) total += c;
        const std::uint64_t dense = slots.compact(data.data());
        ASSERT_EQ(dense, total);
        std::vector<std::uint64_t> prefix(
            data.begin(), data.begin() + static_cast<std::ptrdiff_t>(dense));
        std::sort(prefix.begin(), prefix.end());
        ASSERT_EQ(std::adjacent_find(prefix.begin(), prefix.end()), prefix.end())
            << "duplicated slot";
        std::uint64_t expected_i = 0;
        int expected_lane = 0;
        for (const auto v : prefix) {
          while (expected_lane < kThreads &&
                 expected_i >= counts[static_cast<std::size_t>(expected_lane)]) {
            ++expected_lane;
            expected_i = 0;
          }
          ASSERT_LT(expected_lane, kThreads);
          ASSERT_EQ(v, static_cast<std::uint64_t>(expected_lane) * kMaxPerThread +
                           expected_i)
              << "lost slot";
          ++expected_i;
        }
      }
      round_done.arrive_and_wait();  // compaction visible to everyone
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace crcw
