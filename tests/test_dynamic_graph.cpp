// DynamicGraph: canonical edge packing, round-arbitrated insert/erase
// (one winner per (edge, round) across both kinds), committed reads, the
// edge sweep, and the churn contract inherited from the table — bounded
// bucket footprint under insert/erase cycles, including the
// telemetry-driven reclaim trigger.
#include "stream/dynamic_graph.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "ds/hash_common.hpp"

namespace crcw::stream {
namespace {

TEST(EdgeKey, PackIsCanonicalAndUnpackInverts) {
  EXPECT_EQ(ds::pack_edge(3, 7), ds::pack_edge(7, 3));
  const ds::EdgeKey e = ds::unpack_edge(ds::pack_edge(7, 3));
  EXPECT_EQ(e.u, 3u);
  EXPECT_EQ(e.v, 7u);
  // Distinct pairs get distinct keys.
  EXPECT_NE(ds::pack_edge(1, 2), ds::pack_edge(1, 3));
  EXPECT_NE(ds::pack_edge(0, 1), ds::pack_edge(2, 3));
}

TEST(EdgeKey, OnlyTheMaxSelfLoopHitsTheSentinel) {
  // The table's reserved all-ones key is exactly the packed self-loop at
  // vertex 0xffffffff; valid_edge rejects every self-loop, so no valid
  // edge can collide with it.
  constexpr std::uint32_t kMax = ~std::uint32_t{0};
  EXPECT_EQ(ds::pack_edge(kMax, kMax), ~std::uint64_t{0});
  EXPECT_FALSE(DynamicGraph::valid_edge(kMax, kMax, kMax));
  EXPECT_FALSE(DynamicGraph::valid_edge(5, 5, 10));
  EXPECT_FALSE(DynamicGraph::valid_edge(5, 12, 10));  // out of universe
  EXPECT_TRUE(DynamicGraph::valid_edge(0, 9, 10));
}

TEST(DynamicGraph, InsertEraseCommittedReads) {
  DynamicGraph g(100, 16);
  EXPECT_EQ(g.edges(), 0u);
  EXPECT_EQ(g.insert(1, 2, 5, 42), ds::MapUpsert::kWon);
  EXPECT_TRUE(g.has_edge(2, 5));
  EXPECT_TRUE(g.has_edge(5, 2));  // undirected: canonical key
  ASSERT_NE(g.find(5, 2), nullptr);
  EXPECT_EQ(*g.find(5, 2), 42u);
  EXPECT_EQ(g.edges(), 1u);

  EXPECT_EQ(g.erase(2, 2, 5), ds::MapUpsert::kWon);
  EXPECT_FALSE(g.has_edge(2, 5));
  EXPECT_EQ(g.find(2, 5), nullptr);
  EXPECT_EQ(g.edges(), 0u);
}

TEST(DynamicGraph, OneWinnerPerEdgePerRoundAcrossKinds) {
  DynamicGraph g(64, 64);
  const int threads = std::max(4, omp_get_max_threads());
  for (round_t r = 1; r <= 50; ++r) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      const bool erase = (static_cast<round_t>(omp_get_thread_num()) + r) % 2 == 0;
      const ds::MapUpsert out =
          erase ? g.erase(r, 3, 9) : g.insert(r, 3, 9, r);
      if (out == ds::MapUpsert::kWon) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << r;
  }
}

TEST(DynamicGraph, ForEachEdgeSweepsLiveEdgesCanonically) {
  DynamicGraph g(32, 16);
  round_t r = 0;
  ASSERT_EQ(g.insert(++r, 4, 1, 10), ds::MapUpsert::kWon);
  ASSERT_EQ(g.insert(++r, 2, 8, 20), ds::MapUpsert::kWon);
  ASSERT_EQ(g.insert(++r, 5, 6, 30), ds::MapUpsert::kWon);
  ASSERT_EQ(g.erase(++r, 5, 6), ds::MapUpsert::kWon);

  std::vector<std::uint64_t> seen;
  g.for_each_edge([&](std::uint32_t u, std::uint32_t v, std::uint64_t w) {
    EXPECT_LT(u, v);  // canonical orientation
    seen.push_back(ds::pack_edge(u, v) ^ w);
  });
  std::sort(seen.begin(), seen.end());
  std::vector<std::uint64_t> expect = {ds::pack_edge(1, 4) ^ 10, ds::pack_edge(2, 8) ^ 20};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(seen, expect);
}

TEST(DynamicGraph, FootprintStaysBoundedUnderChurn) {
  // The churn contract, for edges: cycles of insert+erase with reclaim at
  // the step boundary must not grow the table without bound.
  ds::HashConfig cfg;
  cfg.reclaim_ratio = 0.05;  // aggressive watermark: every cycle's
                             // tombstones trip the step-boundary sweep
  DynamicGraph g(1u << 16, 256, cfg);
  round_t r = 0;
  std::uint64_t max_buckets = 0;
  for (int cycle = 0; cycle < 40; ++cycle) {
    // The scheduler's prolog: size for the incoming write backlog BEFORE
    // the round. Without it a post-erase reclaim (sized from live == 0)
    // legitimately leaves no room for the next burst.
    g.maybe_grow_for_backlog(200, 1);
    for (std::uint32_t i = 0; i < 200; ++i) {
      const std::uint32_t u = (i * 7) % 5000;
      const std::uint32_t v = u + 1 + (i % 13);
      ASSERT_NE(g.insert(++r, u, v, i), ds::MapUpsert::kFull);
    }
    std::vector<std::pair<std::uint32_t, std::uint32_t>> live;
    g.for_each_edge([&](std::uint32_t u, std::uint32_t v, std::uint64_t) {
      live.push_back({u, v});
    });
    for (const auto& [u, v] : live) ASSERT_NE(g.erase(++r, u, v), ds::MapUpsert::kFull);
    EXPECT_EQ(g.edges(), 0u);
    g.maybe_reclaim(1);
    max_buckets = std::max(max_buckets, g.table().bucket_count());
  }
  // 200 live keys at a time: a few doublings of the 256-key sizing is the
  // ceiling; unbounded growth would blow straight past this.
  EXPECT_LE(max_buckets, 4096u);
}

}  // namespace
}  // namespace crcw::stream
