// SSSP via priority concurrent writes vs Dijkstra.
#include "algorithms/sssp.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/csr.hpp"

namespace crcw::algo {
namespace {

using graph::kNoVertex;

TEST(SsspDijkstra, HandComputedSmall) {
  //   0 --1-- 1 --1-- 2
  //    \------5------/
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 5}};
  const auto d = sssp_dijkstra(3, edges, 0);
  EXPECT_EQ(d, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(SsspTwoPhase, SmallKnownAnswers) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 5}};
  const SsspResult r = sssp_two_phase(3, edges, 0);
  EXPECT_EQ(r.dist, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(r.parent[0], kNoVertex);
  EXPECT_EQ(r.parent[1], 0u);
  EXPECT_EQ(r.parent[2], 1u) << "the weight-5 shortcut must not be the parent";
  EXPECT_TRUE(validate_sssp(3, edges, 0, r));
}

TEST(SsspFetchMin, SmallKnownAnswers) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 5}};
  const SsspResult r = sssp_fetch_min(3, edges, 0);
  EXPECT_EQ(r.dist, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_TRUE(validate_sssp(3, edges, 0, r));
}

TEST(Sssp, UnreachableVertices) {
  const std::vector<WeightedEdge> edges = {{0, 1, 3}};
  for (const auto* kind : {"two_phase", "fetch_min"}) {
    const SsspResult r = std::string(kind) == "two_phase"
                             ? sssp_two_phase(4, edges, 0)
                             : sssp_fetch_min(4, edges, 0);
    EXPECT_EQ(r.dist[2], kUnreachable) << kind;
    EXPECT_EQ(r.dist[3], kUnreachable) << kind;
    EXPECT_EQ(r.parent[2], kNoVertex) << kind;
    EXPECT_TRUE(validate_sssp(4, edges, 0, r)) << kind;
  }
}

TEST(Sssp, ZeroWeightsAndTies) {
  // Multiple equal-length paths: any tight parent is fine; validate_sssp
  // checks tightness, not a specific tree.
  const std::vector<WeightedEdge> edges = {{0, 1, 2}, {0, 2, 2}, {1, 3, 2},
                                           {2, 3, 2}, {0, 3, 4}, {3, 4, 0}};
  const SsspResult r = sssp_two_phase(5, edges, 0);
  EXPECT_EQ(r.dist[3], 4u);
  EXPECT_EQ(r.dist[4], 4u);
  EXPECT_TRUE(validate_sssp(5, edges, 0, r));
}

TEST(Sssp, InputValidation) {
  const std::vector<WeightedEdge> bad = {{0, 9, 1}};
  EXPECT_THROW((void)sssp_two_phase(3, bad, 0), std::invalid_argument);
  EXPECT_THROW((void)sssp_fetch_min(3, bad, 0), std::invalid_argument);
  const std::vector<WeightedEdge> ok = {{0, 1, 1}};
  EXPECT_THROW((void)sssp_two_phase(2, ok, 7), std::invalid_argument);
}

using SsspParam = std::tuple<std::uint64_t, std::uint64_t, std::uint32_t, int>;

class SsspRandomTest : public ::testing::TestWithParam<SsspParam> {};

TEST_P(SsspRandomTest, BothVariantsMatchDijkstra) {
  const auto& [n, m, max_w, threads] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto edges = random_weighted_edges(n, m, max_w, seed);
    const auto source = static_cast<graph::vertex_t>(seed % n);
    const SsspResult a = sssp_two_phase(n, edges, source, {.threads = threads});
    ASSERT_TRUE(validate_sssp(n, edges, source, a))
        << "two_phase n=" << n << " seed=" << seed;
    const SsspResult b = sssp_fetch_min(n, edges, source, {.threads = threads});
    ASSERT_TRUE(validate_sssp(n, edges, source, b))
        << "fetch_min n=" << n << " seed=" << seed;
    ASSERT_EQ(a.dist, b.dist);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SsspRandomTest,
    ::testing::Values(
        std::make_tuple(std::uint64_t{10}, std::uint64_t{20}, 10u, 1),
        std::make_tuple(std::uint64_t{100}, std::uint64_t{400}, 100u, 4),
        std::make_tuple(std::uint64_t{100}, std::uint64_t{400}, 0u, 4),  // all zero weights
        std::make_tuple(std::uint64_t{500}, std::uint64_t{600}, 1000u, 4),
        std::make_tuple(std::uint64_t{2000}, std::uint64_t{10000}, 50u, 8)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_m" +
             std::to_string(std::get<1>(pinfo.param)) + "_w" +
             std::to_string(std::get<2>(pinfo.param)) + "_t" +
             std::to_string(std::get<3>(pinfo.param));
    });

TEST(Sssp, RoundCountIsHopBounded) {
  // A path graph settles in (diameter + 1) rounds.
  std::vector<WeightedEdge> edges;
  for (std::uint32_t i = 0; i + 1 < 64; ++i) edges.push_back({i, i + 1, 1});
  const SsspResult r = sssp_two_phase(64, edges, 0);
  EXPECT_LE(r.rounds, 65u);
  EXPECT_GE(r.rounds, 63u);
  EXPECT_EQ(r.dist[63], 63u);
}

}  // namespace
}  // namespace crcw::algo
