// Borůvka MSF via packed priority concurrent writes.
#include "algorithms/boruvka.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/reference.hpp"

namespace crcw::algo {
namespace {

TEST(Boruvka, EmptyGraph) {
  const MsfResult r = boruvka_msf(0, {});
  EXPECT_TRUE(r.edge_ids.empty());
  EXPECT_EQ(r.components, 0u);
}

TEST(Boruvka, NoEdges) {
  const MsfResult r = boruvka_msf(5, {});
  EXPECT_TRUE(r.edge_ids.empty());
  EXPECT_EQ(r.components, 5u);
  EXPECT_EQ(r.total_weight, 0u);
}

TEST(Boruvka, SingleEdge) {
  const std::vector<WeightedEdge> edges = {{0, 1, 7}};
  const MsfResult r = boruvka_msf(2, edges);
  ASSERT_EQ(r.edge_ids.size(), 1u);
  EXPECT_EQ(r.total_weight, 7u);
  EXPECT_EQ(r.components, 1u);
}

TEST(Boruvka, TriangleDropsHeaviestEdge) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}};
  const MsfResult r = boruvka_msf(3, edges);
  EXPECT_EQ(r.total_weight, 3u);
  EXPECT_EQ(r.edge_ids.size(), 2u);
  const std::set<std::uint64_t> chosen(r.edge_ids.begin(), r.edge_ids.end());
  EXPECT_FALSE(chosen.contains(2)) << "the weight-3 edge closes a cycle";
}

TEST(Boruvka, SelfLoopsIgnored) {
  const std::vector<WeightedEdge> edges = {{0, 0, 1}, {0, 1, 5}};
  const MsfResult r = boruvka_msf(2, edges);
  EXPECT_EQ(r.total_weight, 5u);
  ASSERT_EQ(r.edge_ids.size(), 1u);
  EXPECT_EQ(r.edge_ids[0], 1u);
}

TEST(Boruvka, EqualWeightsResolveByEdgeIdTotalOrder) {
  // Square with all-equal weights: the MSF picks 3 edges; weight is 3w and
  // Kruskal under the same order picks an identical total.
  const std::vector<WeightedEdge> edges = {{0, 1, 4}, {1, 2, 4}, {2, 3, 4}, {3, 0, 4}};
  const MsfResult r = boruvka_msf(4, edges);
  EXPECT_EQ(r.edge_ids.size(), 3u);
  EXPECT_EQ(r.total_weight, 12u);
}

TEST(Boruvka, DisconnectedForest) {
  const std::vector<WeightedEdge> edges = {{0, 1, 2}, {2, 3, 5}};
  const MsfResult r = boruvka_msf(5, edges);  // vertex 4 isolated
  EXPECT_EQ(r.total_weight, 7u);
  EXPECT_EQ(r.components, 3u);
}

TEST(Boruvka, RejectsBadInput) {
  const std::vector<WeightedEdge> bad = {{0, 9, 1}};
  EXPECT_THROW((void)boruvka_msf(3, bad), std::invalid_argument);
}

TEST(Kruskal, MatchesHandResult) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}};
  EXPECT_EQ(msf_weight_kruskal(3, edges), 3u);
}

class BoruvkaRandomTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t, int>> {};

TEST_P(BoruvkaRandomTest, WeightMatchesKruskalAndTreeIsSpanning) {
  const auto& [n, m, threads] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto edges = random_weighted_edges(n, m, 1000, seed);
    const MsfResult r = boruvka_msf(n, edges, {.threads = threads});

    // 1. Optimal weight (MSF weight is unique even with ties).
    ASSERT_EQ(r.total_weight, msf_weight_kruskal(n, edges))
        << "n=" << n << " m=" << m << " seed=" << seed;

    // 2. Selected edges form a forest with the right structure: |MSF| =
    //    n - #components, and using only those edges reproduces exactly
    //    the connectivity of the full graph.
    graph::UnionFind uf(n);
    for (const auto id : r.edge_ids) {
      ASSERT_TRUE(uf.unite(edges[id].u, edges[id].v)) << "cycle edge selected";
    }
    ASSERT_EQ(r.edge_ids.size(), n - r.components);

    graph::UnionFind full(n);
    for (const auto& e : edges) {
      if (e.u != e.v) full.unite(e.u, e.v);
    }
    ASSERT_EQ(uf.num_sets(), full.num_sets());
    ASSERT_EQ(r.components, full.num_sets());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoruvkaRandomTest,
    ::testing::Values(std::make_tuple(std::uint64_t{10}, std::uint64_t{15}, 1),
                      std::make_tuple(std::uint64_t{100}, std::uint64_t{80}, 4),
                      std::make_tuple(std::uint64_t{100}, std::uint64_t{400}, 4),
                      std::make_tuple(std::uint64_t{500}, std::uint64_t{2000}, 8),
                      std::make_tuple(std::uint64_t{1000}, std::uint64_t{1000}, 8)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_m" +
             std::to_string(std::get<1>(pinfo.param)) + "_t" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(Boruvka, LogarithmicRounds) {
  const auto edges = random_weighted_edges(2048, 8192, 100, 5);
  const MsfResult r = boruvka_msf(2048, edges);
  EXPECT_LE(r.rounds, 14u) << "Borůvka halves components per round";
}

TEST(RandomWeightedEdges, DeterministicAndInRange) {
  const auto a = random_weighted_edges(50, 100, 10, 3);
  const auto b = random_weighted_edges(50, 100, 10, 3);
  EXPECT_EQ(a, b);
  for (const auto& e : a) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LE(e.weight, 10u);
  }
}

}  // namespace
}  // namespace crcw::algo
