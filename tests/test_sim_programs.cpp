// Classic PRAM programs on the model simulator, including the §6
// work–depth claims.
#include "sim/programs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "util/rng.hpp"

namespace crcw::sim::programs {
namespace {

TEST(SimMax, FindsMaximum) {
  Simulator sim(AccessMode::kCommon, 1);
  const std::vector<word_t> values = {3, 9, 2, 9, 5};
  // Fig 4 tie-break: the LAST occurrence of the max wins.
  EXPECT_EQ(max_constant_time(sim, values), 3u);
}

TEST(SimMax, SingleElement) {
  Simulator sim(AccessMode::kCommon, 1);
  const std::vector<word_t> values = {7};
  EXPECT_EQ(max_constant_time(sim, values), 0u);
}

TEST(SimMax, EmptyThrows) {
  Simulator sim(AccessMode::kCommon, 1);
  EXPECT_THROW(max_constant_time(sim, {}), std::invalid_argument);
}

TEST(SimMax, ConstantDepthQuadraticWork) {
  // §6 / §7.2: depth O(1) — exactly one parallel step — and work Θ(N²).
  Simulator sim(AccessMode::kCommon, 1);
  const std::vector<word_t> values = {5, 1, 4, 2, 8, 3, 7, 6};
  (void)max_constant_time(sim, values);
  EXPECT_EQ(sim.counters().depth, 1u);
  EXPECT_EQ(sim.counters().work, 64u);
}

TEST(SimMax, WorksUnderArbitraryAndPriorityToo) {
  // Common is the weakest CRCW rule; stronger rules must simulate it (§2).
  for (const AccessMode mode :
       {AccessMode::kArbitrary, AccessMode::kPriorityMinRank, AccessMode::kPriorityMinValue}) {
    Simulator sim(mode, 1);
    const std::vector<word_t> values = {4, 11, 6};
    EXPECT_EQ(max_constant_time(sim, values), 1u) << to_string(mode);
  }
}

TEST(SimMax, FailsOnExclusiveWriteModel) {
  // The whole point of CRCW: this algorithm is illegal on CREW.
  Simulator sim(AccessMode::kCREW, 1);
  const std::vector<word_t> values = {1, 1, 1};
  EXPECT_THROW(max_constant_time(sim, values), ModelViolation);
}

TEST(SimMax, RandomListsMatchStdMax) {
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Simulator sim(AccessMode::kCommon, 1, trial);
    std::vector<word_t> values(20);
    for (auto& v : values) v = static_cast<word_t>(rng.bounded(50));
    const std::uint64_t got = max_constant_time(sim, values);
    const word_t expected = *std::max_element(values.begin(), values.end());
    EXPECT_EQ(values[got], expected);
    // Last occurrence per the tie-break.
    for (std::uint64_t j = got + 1; j < values.size(); ++j) EXPECT_LT(values[j], expected);
  }
}

TEST(SimParallelOr, OneStepAnyMode) {
  Simulator sim(AccessMode::kCommon, 1);
  const std::vector<word_t> bits = {0, 0, 1, 0};
  EXPECT_TRUE(parallel_or(sim, bits));
  EXPECT_EQ(sim.counters().depth, 1u) << "OR must take exactly one CRCW step";
}

TEST(SimParallelOr, AllZeros) {
  Simulator sim(AccessMode::kCommon, 1);
  const std::vector<word_t> bits = {0, 0, 0};
  EXPECT_FALSE(parallel_or(sim, bits));
}

TEST(SimParallelOr, AllOnesMaxContention) {
  Simulator sim(AccessMode::kCommon, 1);
  const std::vector<word_t> bits(16, 1);
  EXPECT_TRUE(parallel_or(sim, bits));
  EXPECT_EQ(sim.history().back().max_contention, 16u);
}

TEST(SimFirstOne, FindsFirstSetBit) {
  Simulator sim(AccessMode::kPriorityMinValue, 1);
  const std::vector<word_t> bits = {0, 0, 1, 0, 1, 1};
  EXPECT_EQ(first_one(sim, bits), 2u);
}

TEST(SimFirstOne, NoBitsReturnsN) {
  Simulator sim(AccessMode::kPriorityMinValue, 1);
  const std::vector<word_t> bits = {0, 0, 0};
  EXPECT_EQ(first_one(sim, bits), 3u);
}

TEST(SimFirstOne, RequiresPriorityMode) {
  Simulator sim(AccessMode::kArbitrary, 1);
  const std::vector<word_t> bits = {1};
  EXPECT_THROW(first_one(sim, bits), std::invalid_argument);
}

TEST(SimPointerJump, FindsRoots) {
  Simulator sim(AccessMode::kCREW, 1);
  // Forest: 0←1←2←3 and 4←5; roots 0 and 4.
  const std::vector<std::uint64_t> parent = {0, 0, 1, 2, 4, 4};
  const auto roots = pointer_jump_roots(sim, parent);
  EXPECT_EQ(roots, (std::vector<std::uint64_t>{0, 0, 0, 0, 4, 4}));
}

TEST(SimPointerJump, LogarithmicDepth) {
  Simulator sim(AccessMode::kCREW, 1);
  // A chain of 64: depth must be Θ(log n), not Θ(n).
  std::vector<std::uint64_t> parent(64);
  parent[0] = 0;
  for (std::uint64_t i = 1; i < 64; ++i) parent[i] = i - 1;
  const auto roots = pointer_jump_roots(sim, parent);
  for (const auto r : roots) EXPECT_EQ(r, 0u);
  EXPECT_LE(sim.counters().depth, 8u);
  EXPECT_GE(sim.counters().depth, 6u);
}

TEST(SimPointerJump, RejectsBadParent) {
  Simulator sim(AccessMode::kCREW, 1);
  const std::vector<std::uint64_t> parent = {5};
  EXPECT_THROW(pointer_jump_roots(sim, parent), std::invalid_argument);
}

TEST(SimBfs, MatchesSequentialLevels) {
  const auto g = graph::build_csr(8, graph::path(8));
  Simulator sim(AccessMode::kArbitrary, 1);
  const auto result = bfs(sim, g.offsets(), g.targets(), 0);
  const auto expected = graph::bfs_levels(g, 0);
  for (std::uint64_t v = 0; v < 8; ++v) EXPECT_EQ(result.level[v], expected[v]) << v;
}

TEST(SimBfs, ArbitraryParentIsAlwaysValid) {
  // Across adversarial seeds the chosen parent differs but must always be a
  // real previous-level neighbour — the arbitrary-CW obligation.
  const auto g = graph::random_graph(40, 120, 3);
  const auto expected = graph::bfs_levels(g, 0);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Simulator sim(AccessMode::kArbitrary, 1, seed);
    const auto result = bfs(sim, g.offsets(), g.targets(), 0);
    for (std::uint64_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(result.level[v], expected[v]) << "seed " << seed << " v " << v;
      if (expected[v] > 0) {
        const auto p = static_cast<graph::vertex_t>(result.parent[v]);
        ASSERT_TRUE(g.has_edge(p, static_cast<graph::vertex_t>(v)));
        ASSERT_EQ(result.level[p], expected[v] - 1);
      }
    }
  }
}

TEST(SimBfs, UnreachableStaysMinusOne) {
  // Two components: 0-1 and 2-3.
  graph::EdgeList edges = {{0, 1}, {2, 3}};
  const auto g = graph::build_csr(4, edges);
  Simulator sim(AccessMode::kArbitrary, 1);
  const auto result = bfs(sim, g.offsets(), g.targets(), 0);
  EXPECT_EQ(result.level[2], -1);
  EXPECT_EQ(result.level[3], -1);
  EXPECT_EQ(result.parent[2], -1);
}

TEST(SimBfs, SourceOutOfRangeThrows) {
  const auto g = graph::build_csr(2, graph::path(2));
  Simulator sim(AccessMode::kArbitrary, 1);
  EXPECT_THROW(bfs(sim, g.offsets(), g.targets(), 7), std::invalid_argument);
}

TEST(SimScan, MatchesSerialPrefixSums) {
  Simulator sim(AccessMode::kEREW, 1);
  const std::vector<word_t> xs = {3, 1, 4, 1, 5, 9, 2};
  const auto got = exclusive_scan(sim, xs);
  EXPECT_EQ(got, (std::vector<word_t>{0, 3, 4, 8, 9, 14, 23}));
}

TEST(SimScan, RunsUnderErewWithLogDepth) {
  // Blelloch scan is exclusive-everything: it must pass the strictest mode,
  // in 2·log2(n) + 1 steps.
  Simulator sim(AccessMode::kEREW, 1);
  std::vector<word_t> xs(64, 1);
  const auto got = exclusive_scan(sim, xs);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(got[i], static_cast<word_t>(i));
  EXPECT_EQ(sim.counters().depth, 13u);  // 6 up + 1 clear + 6 down
}

TEST(SimScan, PadsNonPowerOfTwo) {
  Simulator sim(AccessMode::kEREW, 1);
  const std::vector<word_t> xs = {2, 2, 2, 2, 2};
  const auto got = exclusive_scan(sim, xs);
  EXPECT_EQ(got, (std::vector<word_t>{0, 2, 4, 6, 8}));
}

TEST(SimScan, EmptyInput) {
  Simulator sim(AccessMode::kEREW, 1);
  EXPECT_TRUE(exclusive_scan(sim, {}).empty());
}

TEST(SimDoublyLogMax, MatchesConstantTimeKernel) {
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<word_t> xs(40);
    for (auto& x : xs) x = static_cast<word_t>(rng.bounded(100));
    Simulator a(AccessMode::kCommon, 1, trial);
    Simulator b(AccessMode::kCommon, 1, trial);
    EXPECT_EQ(max_doubly_log(a, xs), max_constant_time(b, xs)) << trial;
  }
}

TEST(SimDoublyLogMax, DoublyLogarithmicDepth) {
  // n = 65536: the Fig 4 kernel takes 1 step of n² work; the cascading
  // schedule takes Θ(log log n) rounds of 3 steps each — far below log n.
  Simulator sim(AccessMode::kCommon, 1);
  std::vector<word_t> xs(65536);
  util::Xoshiro256 rng(3);
  for (auto& x : xs) x = static_cast<word_t>(rng.bounded(1 << 30));
  const auto idx = max_doubly_log(sim, xs);
  EXPECT_EQ(xs[idx], *std::max_element(xs.begin(), xs.end()));
  EXPECT_LE(sim.counters().depth, 18u) << "must be ~3 * loglog n steps";
  // Work stays O(n) per round — far from the n² of the one-shot kernel.
  EXPECT_LT(sim.counters().work, 65536ull * 64);
}

TEST(SimDoublyLogMax, TieBreakLastOccurrence) {
  Simulator sim(AccessMode::kCommon, 1);
  const std::vector<word_t> xs = {9, 1, 9, 9, 2};
  EXPECT_EQ(max_doubly_log(sim, xs), 3u);
}

TEST(SimBfs, DepthTracksGraphDiameter) {
  const auto g = graph::build_csr(16, graph::path(16));
  Simulator sim(AccessMode::kArbitrary, 1);
  (void)bfs(sim, g.offsets(), g.targets(), 0);
  // One step per frontier plus the final empty check: diameter 15 → 16.
  EXPECT_EQ(sim.counters().depth, 16u);
}

}  // namespace
}  // namespace crcw::sim::programs
