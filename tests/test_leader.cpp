// Leader election primitives.
#include "algorithms/leader.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace crcw::algo {
namespace {

TEST(ElectAny, NoCandidateIsEmpty) {
  EXPECT_FALSE(elect_any(100, [](std::uint64_t) { return false; }).has_value());
  EXPECT_FALSE(elect_any(0, [](std::uint64_t) { return true; }).has_value());
}

TEST(ElectAny, SingleCandidateWins) {
  const auto r = elect_any(100, [](std::uint64_t i) { return i == 73; });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 73u);
}

TEST(ElectAny, WinnerAlwaysQualifies) {
  for (int trial = 0; trial < 10; ++trial) {
    const auto r = elect_any(1000, [](std::uint64_t i) { return i % 7 == 3; },
                             {.threads = 4});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r % 7, 3u);
  }
}

TEST(ElectMin, DeterministicSmallest) {
  const auto r = elect_min(1000, [](std::uint64_t i) { return i % 7 == 3; },
                           {.threads = 4});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 3u);
  EXPECT_FALSE(elect_min(10, [](std::uint64_t) { return false; }).has_value());
}

TEST(ElectMinKey, SmallestKeyWins) {
  // key(i) = (i * 37) % 101 for even i; global min over even i < 50.
  std::vector<std::uint32_t> keys(50);
  std::uint32_t best_key = 0xFFFFFFFF;
  std::uint64_t best_i = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    keys[i] = static_cast<std::uint32_t>((i * 37) % 101);
    if (i % 2 == 0 && keys[i] < best_key) {
      best_key = keys[i];
      best_i = i;
    }
  }
  const auto r = elect_min_key(
      50,
      [&](std::uint64_t i) -> std::optional<std::uint32_t> {
        if (i % 2 != 0) return std::nullopt;
        return keys[i];
      },
      {.threads = 4});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, best_i);
}

TEST(ElectMinKey, TieGoesToSmallerIndex) {
  const auto r = elect_min_key(10, [](std::uint64_t) -> std::optional<std::uint32_t> {
    return 5;  // all tie
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 0u);
}

TEST(ElectMinKey, EmptyWhenNoKeys) {
  EXPECT_FALSE(
      elect_min_key(10, [](std::uint64_t) -> std::optional<std::uint32_t> {
        return std::nullopt;
      }).has_value());
}

}  // namespace
}  // namespace crcw::algo
