// Euler-tour tree operations: parents, subtree sizes, depths.
#include "algorithms/tree_ops.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"

namespace crcw::algo {
namespace {

using graph::build_csr;
using graph::Csr;
using graph::vertex_t;

Csr tree_csr(std::uint64_t n, const graph::EdgeList& edges) {
  return build_csr(n, edges, {.symmetrize = true, .sort_neighbors = true});
}

/// Sequential reference rooting (DFS).
struct RefRooted {
  std::vector<vertex_t> parent;
  std::vector<std::uint64_t> subtree;
  std::vector<std::uint64_t> depth;
};

RefRooted reference_root(const Csr& tree, vertex_t root) {
  const std::uint64_t n = tree.num_vertices();
  RefRooted out;
  out.parent.assign(n, graph::kNoVertex);
  out.subtree.assign(n, 1);
  out.depth.assign(n, 0);
  out.parent[root] = root;

  // Iterative DFS with post-order subtree accumulation.
  std::vector<std::pair<vertex_t, bool>> stack = {{root, false}};
  while (!stack.empty()) {
    const auto [v, post] = stack.back();
    stack.pop_back();
    if (post) {
      if (v != root) out.subtree[out.parent[v]] += out.subtree[v];
      continue;
    }
    stack.push_back({v, true});
    for (const vertex_t u : tree.neighbors(v)) {
      if (u == out.parent[v] || u == root) continue;
      if (out.parent[u] != graph::kNoVertex) continue;
      out.parent[u] = v;
      out.depth[u] = out.depth[v] + 1;
      stack.push_back({u, false});
    }
  }
  return out;
}

void expect_matches_reference(const Csr& tree, vertex_t root, int threads) {
  const RootedTree got = root_tree(tree, root, {.threads = threads});
  const RefRooted want = reference_root(tree, root);
  const std::uint64_t n = tree.num_vertices();
  ASSERT_EQ(got.parent.size(), n);
  for (vertex_t v = 0; v < n; ++v) {
    ASSERT_EQ(got.parent[v], want.parent[v]) << "parent of " << v;
    ASSERT_EQ(got.subtree[v], want.subtree[v]) << "subtree of " << v;
    ASSERT_EQ(got.depth[v], want.depth[v]) << "depth of " << v;
  }
}

TEST(EulerTour, TwinAndNextAreConsistent) {
  const Csr tree = tree_csr(4, graph::path(4));
  const EulerTour tour = euler_tour(tree);
  const std::uint64_t m = tree.num_edges();
  ASSERT_EQ(tour.twin.size(), m);
  for (std::uint64_t j = 0; j < m; ++j) {
    EXPECT_EQ(tour.twin[tour.twin[j]], j) << "twin must be an involution";
    EXPECT_LT(tour.next[j], m);
  }
}

TEST(EulerTour, IsASingleCycle) {
  const Csr tree = tree_csr(10, graph::random_tree(10, 5));
  const EulerTour tour = euler_tour(tree);
  const std::uint64_t m = tree.num_edges();
  std::vector<std::uint8_t> seen(m, 0);
  std::uint64_t cur = 0;
  for (std::uint64_t steps = 0; steps < m; ++steps) {
    ASSERT_EQ(seen[cur], 0) << "cycle revisits slot " << cur;
    seen[cur] = 1;
    cur = tour.next[cur];
  }
  EXPECT_EQ(cur, 0u) << "tour must close after exactly m steps";
}

TEST(EulerTour, RejectsNonTrees) {
  EXPECT_THROW((void)euler_tour(tree_csr(3, graph::complete(3))), std::invalid_argument);
  EXPECT_THROW((void)euler_tour(build_csr(2, graph::EdgeList{{0, 0}})),
               std::invalid_argument);
  EXPECT_THROW((void)euler_tour(Csr{}), std::invalid_argument);
}

TEST(RootTree, PathFromEnd) {
  const Csr tree = tree_csr(6, graph::path(6));
  const RootedTree r = root_tree(tree, 0);
  for (vertex_t v = 1; v < 6; ++v) EXPECT_EQ(r.parent[v], v - 1);
  EXPECT_EQ(r.parent[0], 0u);
  EXPECT_EQ(r.depth[5], 5u);
  EXPECT_EQ(r.subtree[0], 6u);
  EXPECT_EQ(r.subtree[3], 3u);
}

TEST(RootTree, PathFromMiddle) { expect_matches_reference(tree_csr(7, graph::path(7)), 3, 4); }

TEST(RootTree, Star) {
  const Csr tree = tree_csr(9, graph::star(9));
  const RootedTree r = root_tree(tree, 0);
  for (vertex_t v = 1; v < 9; ++v) {
    EXPECT_EQ(r.parent[v], 0u);
    EXPECT_EQ(r.depth[v], 1u);
    EXPECT_EQ(r.subtree[v], 1u);
  }
  EXPECT_EQ(r.subtree[0], 9u);
  // Rooting at a leaf flips the centre under it.
  expect_matches_reference(tree, 4, 2);
}

TEST(RootTree, SingletonTree) {
  const Csr tree = build_csr(1, {});
  const RootedTree r = root_tree(tree, 0);
  EXPECT_EQ(r.parent[0], 0u);
  EXPECT_EQ(r.subtree[0], 1u);
  EXPECT_EQ(r.depth[0], 0u);
}

TEST(RootTree, DepthEqualsBfsLevel) {
  // On a tree, depth from root == BFS level — a cross-module check.
  const Csr tree = tree_csr(200, graph::random_tree(200, 11));
  const RootedTree r = root_tree(tree, 0, {.threads = 4});
  const auto levels = graph::bfs_levels(tree, 0);
  for (vertex_t v = 0; v < 200; ++v) {
    ASSERT_EQ(static_cast<std::int64_t>(r.depth[v]), levels[v]) << v;
  }
}

class RootTreeRandomTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(RootTreeRandomTest, MatchesSequentialReference) {
  const auto& [n, threads] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Csr tree = tree_csr(n, graph::random_tree(n, seed));
    const auto root = static_cast<vertex_t>(seed % n);
    expect_matches_reference(tree, root, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RootTreeRandomTest,
                         ::testing::Values(std::make_tuple(std::uint64_t{2}, 1),
                                           std::make_tuple(std::uint64_t{3}, 1),
                                           std::make_tuple(std::uint64_t{17}, 4),
                                           std::make_tuple(std::uint64_t{128}, 4),
                                           std::make_tuple(std::uint64_t{1000}, 8)),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(std::get<0>(pinfo.param)) + "_t" +
                                  std::to_string(std::get<1>(pinfo.param));
                         });

TEST(RootTree, RootOutOfRangeThrows) {
  const Csr tree = tree_csr(3, graph::path(3));
  EXPECT_THROW((void)root_tree(tree, 9), std::invalid_argument);
}

}  // namespace
}  // namespace crcw::algo
