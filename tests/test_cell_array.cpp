// ConWriteArray — the packaged array-of-CW-targets abstraction.
#include "core/cell_array.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <vector>

namespace crcw {
namespace {

TEST(ConWriteArray, ConstructionAndInitialValues) {
  ConWriteArray<int> arr(5, -1);
  EXPECT_EQ(arr.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(arr[i], -1);
  EXPECT_EQ(arr.round(), kInitialRound);
}

TEST(ConWriteArray, SingleWinnerPerCellPerRound) {
  ConWriteArray<int> arr(3);
  arr.begin_round();
  EXPECT_TRUE(arr.try_write(0, 10));
  EXPECT_FALSE(arr.try_write(0, 20));
  EXPECT_EQ(arr[0], 10);
  EXPECT_TRUE(arr.try_write(1, 30));

  arr.begin_round();
  EXPECT_TRUE(arr.try_write(0, 40));
  EXPECT_EQ(arr[0], 40);
}

TEST(ConWriteArray, ExplicitRoundOverload) {
  ConWriteArray<int> arr(2);
  for (round_t l = 1; l <= 5; ++l) {
    EXPECT_TRUE(arr.try_write(0, l, static_cast<int>(l)));
    EXPECT_FALSE(arr.try_write(0, l, 99));
  }
  EXPECT_EQ(arr[0], 5);
}

TEST(ConWriteArray, WrittenProbe) {
  ConWriteArray<int> arr(2);
  arr.begin_round();
  EXPECT_FALSE(arr.written(0));
  ASSERT_TRUE(arr.try_write(0, 1));
  EXPECT_TRUE(arr.written(0));
  EXPECT_FALSE(arr.written(1));
}

TEST(ConWriteArray, WrittenProbeGatekeeper) {
  ConWriteArray<int, GatekeeperPolicy> arr(1);
  arr.begin_round();
  EXPECT_FALSE(arr.written(0));
  ASSERT_TRUE(arr.try_write(0, 7));
  EXPECT_TRUE(arr.written(0));
  arr.begin_round();  // gatekeeper reset re-opens
  EXPECT_FALSE(arr.written(0));
  EXPECT_TRUE(arr.try_write(0, 8));
}

TEST(ConWriteArray, FactoryForm) {
  ConWriteArray<std::vector<int>, CriticalPolicy> arr(1);
  arr.begin_round();
  int calls = 0;
  const auto make = [&] {
    ++calls;
    return std::vector<int>{1, 2, 3};
  };
  EXPECT_TRUE(arr.try_write_with(0, make));
  EXPECT_FALSE(arr.try_write_with(0, make));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(arr[0].size(), 3u);
}

TEST(ConWriteArray, ParallelBeginRoundResetsGatekeepers) {
  ConWriteArray<int, GatekeeperPolicy> arr(64);
  arr.begin_round_parallel(4);
  for (std::size_t i = 0; i < 64; ++i) ASSERT_TRUE(arr.try_write(i, 1));
  for (std::size_t i = 0; i < 64; ++i) ASSERT_FALSE(arr.try_write(i, 1));
  arr.begin_round_parallel(4);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_TRUE(arr.try_write(i, 2));
}

TEST(ConWriteArray, ParallelBeginRoundCasLtIsCheap) {
  ConWriteArray<int> arr(64);
  const round_t r1 = arr.begin_round_parallel();
  const round_t r2 = arr.begin_round_parallel();
  EXPECT_EQ(r2, r1 + 1);
  EXPECT_TRUE(arr.try_write(0, 1));
}

TEST(ConWriteArray, ResetTags) {
  ConWriteArray<int> arr(2);
  arr.begin_round();
  ASSERT_TRUE(arr.try_write(0, 1));
  arr.reset_tags();
  EXPECT_EQ(arr.round(), kInitialRound);
  arr.begin_round();
  EXPECT_TRUE(arr.try_write(0, 2));
}

TEST(ConWriteArray, ConfigCtorWithSparseRounds) {
  ArbiterConfig cfg;
  cfg.tracking = TouchTracking::kEnabled;
  cfg.lanes = 4;
  cfg.first_touch = util::FirstTouch::kParallel;
  ConWriteArray<int, GatekeeperPolicy> arr(64, cfg, -1);
  for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(arr[i], -1);

  arr.begin_round_sparse(2);
  for (std::size_t i = 0; i < 64; i += 8) ASSERT_TRUE(arr.try_write(i, 1));
  for (std::size_t i = 0; i < 64; i += 8) ASSERT_FALSE(arr.try_write(i, 9));
  // The sparse sweep re-opens exactly the written cells; untouched cells
  // were never closed, so after it the whole array accepts writes again.
  arr.begin_round_sparse(2);
  for (std::size_t i = 0; i < 64; ++i) ASSERT_TRUE(arr.try_write(i, 2));
  for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(arr[i], 2);
}

TEST(ConWriteArray, SparseRoundIsPlainIncrementForCasLt) {
  ConWriteArray<int> arr(4, ArbiterConfig{}, 0);
  const round_t r1 = arr.begin_round_sparse();
  const round_t r2 = arr.begin_round_sparse();
  EXPECT_EQ(r2, r1 + 1);
  EXPECT_TRUE(arr.try_write(0, 1));
}

TEST(ConWriteArrayStress, ManyRoundsManyCells) {
  constexpr std::size_t kCells = 32;
  ConWriteArray<std::uint64_t> arr(kCells);
  const int threads = std::max(4, omp_get_max_threads());

  for (int round = 0; round < 30; ++round) {
    arr.begin_round();
    std::vector<std::atomic<int>> winners(kCells);
#pragma omp parallel num_threads(threads)
    {
      const auto me = static_cast<std::uint64_t>(omp_get_thread_num());
      for (std::size_t c = 0; c < kCells; ++c) {
        if (arr.try_write(c, me * 1000 + c)) {
          winners[c].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    for (std::size_t c = 0; c < kCells; ++c) {
      ASSERT_EQ(winners[c].load(), 1) << "cell " << c;
      ASSERT_EQ(arr[c] % 1000, c) << "payload must come from the winner's offer";
    }
  }
}

}  // namespace
}  // namespace crcw
