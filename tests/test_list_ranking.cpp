// Pointer-jumping list ranking (the CREW counterpoint, §8 future work).
#include "algorithms/list_ranking.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace crcw::algo {
namespace {

TEST(ListRankSeq, SmallList) {
  // List: 2 → 0 → 1(tail).
  const std::vector<std::uint64_t> next = {1, 1, 0};
  const auto rank = list_rank_seq(next);
  EXPECT_EQ(rank, (std::vector<std::uint64_t>{1, 0, 2}));
}

TEST(ListRankSeq, SingletonList) {
  const std::vector<std::uint64_t> next = {0};
  EXPECT_EQ(list_rank_seq(next), (std::vector<std::uint64_t>{0}));
}

TEST(ListRankSeq, RejectsCycle) {
  const std::vector<std::uint64_t> next = {1, 0};
  EXPECT_THROW((void)list_rank_seq(next), std::invalid_argument);
}

TEST(ListRankSeq, RejectsOutOfRange) {
  const std::vector<std::uint64_t> next = {9};
  EXPECT_THROW((void)list_rank_seq(next), std::invalid_argument);
}

TEST(ListRank, MatchesSeqOnIdentityChain) {
  // 0 → 1 → 2 → … → 9(tail).
  std::vector<std::uint64_t> next(10);
  for (std::uint64_t i = 0; i < 9; ++i) next[i] = i + 1;
  next[9] = 9;
  const auto rank = list_rank(next);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(rank[i], 9 - i);
}

TEST(ListRank, EmptyList) {
  EXPECT_TRUE(list_rank({}).empty());
}

TEST(ListRank, RejectsOutOfRange) {
  const std::vector<std::uint64_t> next = {3};
  EXPECT_THROW((void)list_rank(next), std::invalid_argument);
}

class ListRankRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ListRankRandomTest, MatchesSequentialOnRandomLists) {
  const std::uint64_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const RandomList list = make_random_list(n, seed);
    const auto expected = list_rank_seq(list.next);
    for (const int threads : {1, 4}) {
      const auto got = list_rank(list.next, {.threads = threads});
      ASSERT_EQ(got, expected) << "n=" << n << " seed=" << seed << " t=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ListRankRandomTest,
                         ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                           std::uint64_t{3}, std::uint64_t{17},
                                           std::uint64_t{256}, std::uint64_t{1000}),
                         [](const ::testing::TestParamInfo<std::uint64_t>& pinfo) {
                           return "n" + std::to_string(pinfo.param);
                         });

TEST(MakeRandomList, StructureIsAProperList) {
  const RandomList list = make_random_list(100, 5);
  EXPECT_EQ(list.next[list.tail], list.tail);
  // head has rank n-1, tail has rank 0.
  const auto rank = list_rank_seq(list.next);
  EXPECT_EQ(rank[list.head], 99u);
  EXPECT_EQ(rank[list.tail], 0u);
}

TEST(MakeRandomList, DeterministicPerSeed) {
  EXPECT_EQ(make_random_list(50, 3).next, make_random_list(50, 3).next);
}

TEST(MakeRandomList, EmptyThrows) {
  EXPECT_THROW((void)make_random_list(0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace crcw::algo
