// InstrumentedPolicy — measuring the §6 cost claims directly: under R
// rounds with A attempts each, the gatekeeper issues Θ(A·R) atomic RMWs
// while CAS-LT issues O(R) plus failed races, and both admit exactly R
// winners. Counters are instance-owned (one obs::ContentionSite per
// arbiter), so independent arbiters — and independent tests — never leak
// counts into each other.
#include "core/instrumented.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include "core/arbiter.hpp"
#include "obs/metrics.hpp"

namespace crcw {
namespace {

using ICasLt = InstrumentedPolicy<CasLtPolicy>;
using IGate = InstrumentedPolicy<GatekeeperPolicy>;
using IGateSkip = InstrumentedPolicy<GatekeeperSkipPolicy>;

/// Raw-tag harness: a private registry (so the process-global one stays
/// untouched) plus one site the tag-level calls count into.
struct SiteFixture {
  obs::MetricsRegistry registry;
  obs::ScopedRegistry scoped{registry};
  obs::ContentionSite site{"test"};
};

TEST(Instrumented, CasLtSkipsAtomicsOnceCommitted) {
  SiteFixture f;
  ICasLt::tag_type tag;
  ASSERT_TRUE(ICasLt::try_acquire(tag, 1, f.site));
  for (int i = 0; i < 99; ++i) ASSERT_FALSE(ICasLt::try_acquire(tag, 1, f.site));
  const obs::ContentionTotals c = f.site.totals();
  EXPECT_EQ(c.attempts, 100u);
  EXPECT_EQ(c.atomics, 1u) << "99 late contenders must skip the CAS";
  EXPECT_EQ(c.wins, 1u);
}

TEST(Instrumented, GatekeeperPaysOneRmwPerAttempt) {
  SiteFixture f;
  IGate::tag_type tag;
  ASSERT_TRUE(IGate::try_acquire(tag, 1, f.site));
  for (int i = 0; i < 99; ++i) ASSERT_FALSE(IGate::try_acquire(tag, 1, f.site));
  const obs::ContentionTotals c = f.site.totals();
  EXPECT_EQ(c.attempts, 100u);
  EXPECT_EQ(c.atomics, 100u) << "every contender executes the RMW (§5)";
  EXPECT_EQ(c.wins, 1u);
  EXPECT_EQ(c.failures(), 99u);
}

TEST(Instrumented, GatekeeperSkipAvoidsLateRmws) {
  SiteFixture f;
  IGateSkip::tag_type tag;
  ASSERT_TRUE(IGateSkip::try_acquire(tag, 1, f.site));
  for (int i = 0; i < 99; ++i) ASSERT_FALSE(IGateSkip::try_acquire(tag, 1, f.site));
  EXPECT_EQ(f.site.totals().atomics, 1u);
}

TEST(Instrumented, UncountedFallbackKeepsSemantics) {
  // The 2-argument overload (the WritePolicy concept's surface) acquires
  // identically but records nothing.
  SiteFixture f;
  ICasLt::tag_type tag;
  EXPECT_TRUE(ICasLt::try_acquire(tag, 1));
  EXPECT_FALSE(ICasLt::try_acquire(tag, 1));
  EXPECT_TRUE(ICasLt::try_acquire(tag, 2));
  EXPECT_EQ(f.site.totals(), obs::ContentionTotals{});
}

TEST(Instrumented, MultiRoundSerialCosts) {
  // R rounds, A attempts per round, one serial thread.
  constexpr round_t kRounds = 50;
  constexpr int kAttempts = 20;

  {
    SiteFixture f;
    ICasLt::tag_type tag;
    for (round_t r = 1; r <= kRounds; ++r) {
      for (int a = 0; a < kAttempts; ++a) (void)ICasLt::try_acquire(tag, r, f.site);
    }
    EXPECT_EQ(f.site.totals().wins, kRounds);
    EXPECT_EQ(f.site.totals().atomics, kRounds) << "serial: exactly one CAS/round";
  }

  {
    SiteFixture f;
    IGate::tag_type tag;
    for (round_t r = 1; r <= kRounds; ++r) {
      IGate::reset(tag);  // the mandatory per-round re-initialisation
      for (int a = 0; a < kAttempts; ++a) (void)IGate::try_acquire(tag, r, f.site);
    }
    EXPECT_EQ(f.site.totals().wins, kRounds);
    EXPECT_EQ(f.site.totals().atomics, kRounds * kAttempts)
        << "gatekeeper: A RMWs per round";
  }
}

TEST(Instrumented, ContendedCasLtAtomicsBoundedByThreadsPerRound) {
  // §6: once the write commits, remaining P_phys threads fail at most one
  // CAS each; later arrivals skip entirely. So atomics <= threads per
  // round (and usually far fewer).
  const int threads = std::max(4, omp_get_max_threads());
  constexpr round_t kRounds = 50;
  constexpr int kAttempts = 32;

  SiteFixture f;
  ICasLt::tag_type tag;
  for (round_t r = 1; r <= kRounds; ++r) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      for (int a = 0; a < kAttempts; ++a) {
        if (ICasLt::try_acquire(tag, r, f.site)) {
          winners.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    ASSERT_EQ(winners.load(), 1);
  }
  const obs::ContentionTotals c = f.site.totals();
  EXPECT_EQ(c.wins, kRounds);
  EXPECT_LE(c.atomics, kRounds * static_cast<std::uint64_t>(threads));
  // The total attempt volume is far larger than the atomics issued.
  EXPECT_EQ(c.attempts, kRounds * static_cast<std::uint64_t>(threads) * kAttempts);
  EXPECT_LT(c.atomics, c.attempts / 4);
}

TEST(Instrumented, WorksInsideWriteArbiter) {
  WriteArbiter<ICasLt> arbiter(8);
  auto scope = arbiter.next_round();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(scope.acquire(i));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FALSE(scope.acquire(i));
  EXPECT_EQ(arbiter.contention().totals().wins, 8u);
  EXPECT_EQ(arbiter.contention().totals().atomics, 8u);
  EXPECT_EQ(arbiter.contention().totals().attempts, 16u);
}

TEST(Instrumented, TwoArbitersCountIndependently) {
  // The regression the instance-owned redesign exists for: with static
  // per-policy-type counters, the second arbiter's traffic polluted the
  // first one's numbers.
  WriteArbiter<ICasLt> a(4);
  WriteArbiter<ICasLt> b(4);
  {
    auto sa = a.next_round();
    for (std::size_t i = 0; i < 4; ++i) (void)sa.acquire(i);
  }
  {
    auto sb = b.next_round();
    (void)sb.acquire(0);
  }
  EXPECT_EQ(a.contention().totals().wins, 4u);
  EXPECT_EQ(b.contention().totals().wins, 1u);
}

TEST(Instrumented, RoundScopeFlushFeedsHistogramsAndRoundCount) {
  WriteArbiter<ICasLt> arbiter(16);
  for (int r = 0; r < 3; ++r) {
    auto scope = arbiter.next_round();
    for (std::size_t i = 0; i < 16; ++i) (void)scope.acquire(i);
  }  // each scope exit flushes one round
  const obs::ContentionSite& site = arbiter.contention();
  EXPECT_EQ(site.totals().rounds, 3u);
  EXPECT_EQ(site.attempts_per_round().count(), 3u);
  // 16 attempts per round land in the [16, 31] bucket.
  EXPECT_EQ(site.attempts_per_round().bucket(obs::Histogram::bucket_index(16)), 3u);
}

TEST(Instrumented, ArbiterSiteReportsToScopedRegistry) {
  obs::MetricsRegistry local;
  {
    obs::ScopedRegistry scoped(local);
    WriteArbiter<IGate> arbiter(4);
    {
      auto scope = arbiter.next_round();
      for (std::size_t i = 0; i < 4; ++i) (void)scope.acquire(i);
    }
    EXPECT_EQ(local.live_sites(), 1u);
    EXPECT_EQ(local.totals().atomics, 4u);
  }
  // The arbiter died, but the registry retains its totals.
  EXPECT_EQ(local.live_sites(), 0u);
  EXPECT_EQ(local.totals().atomics, 4u);
  ASSERT_EQ(local.snapshot().size(), 1u);
  EXPECT_EQ(local.snapshot()[0].first, "gatekeeper");
}

}  // namespace
}  // namespace crcw
