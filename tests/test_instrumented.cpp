// InstrumentedPolicy — measuring the §6 cost claims directly: under R
// rounds with A attempts each, the gatekeeper issues Θ(A·R) atomic RMWs
// while CAS-LT issues O(R) plus failed races, and both admit exactly R
// winners.
#include "core/instrumented.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include "core/arbiter.hpp"

namespace crcw {
namespace {

using ICasLt = InstrumentedPolicy<CasLtPolicy>;
using IGate = InstrumentedPolicy<GatekeeperPolicy>;
using IGateSkip = InstrumentedPolicy<GatekeeperSkipPolicy>;

TEST(Instrumented, CasLtSkipsAtomicsOnceCommitted) {
  ICasLt::reset_counters();
  ICasLt::tag_type tag;
  ASSERT_TRUE(ICasLt::try_acquire(tag, 1));
  for (int i = 0; i < 99; ++i) ASSERT_FALSE(ICasLt::try_acquire(tag, 1));
  const auto& c = ICasLt::counters();
  EXPECT_EQ(c.attempts.load(), 100u);
  EXPECT_EQ(c.atomics.load(), 1u) << "99 late contenders must skip the CAS";
  EXPECT_EQ(c.wins.load(), 1u);
}

TEST(Instrumented, GatekeeperPaysOneRmwPerAttempt) {
  IGate::reset_counters();
  IGate::tag_type tag;
  ASSERT_TRUE(IGate::try_acquire(tag, 1));
  for (int i = 0; i < 99; ++i) ASSERT_FALSE(IGate::try_acquire(tag, 1));
  const auto& c = IGate::counters();
  EXPECT_EQ(c.attempts.load(), 100u);
  EXPECT_EQ(c.atomics.load(), 100u) << "every contender executes the RMW (§5)";
  EXPECT_EQ(c.wins.load(), 1u);
}

TEST(Instrumented, GatekeeperSkipAvoidsLateRmws) {
  IGateSkip::reset_counters();
  IGateSkip::tag_type tag;
  ASSERT_TRUE(IGateSkip::try_acquire(tag, 1));
  for (int i = 0; i < 99; ++i) ASSERT_FALSE(IGateSkip::try_acquire(tag, 1));
  const auto& c = IGateSkip::counters();
  EXPECT_EQ(c.atomics.load(), 1u);
}

TEST(Instrumented, MultiRoundSerialCosts) {
  // R rounds, A attempts per round, one serial thread.
  constexpr round_t kRounds = 50;
  constexpr int kAttempts = 20;

  ICasLt::reset_counters();
  {
    ICasLt::tag_type tag;
    for (round_t r = 1; r <= kRounds; ++r) {
      for (int a = 0; a < kAttempts; ++a) (void)ICasLt::try_acquire(tag, r);
    }
  }
  EXPECT_EQ(ICasLt::counters().wins.load(), kRounds);
  EXPECT_EQ(ICasLt::counters().atomics.load(), kRounds) << "serial: exactly one CAS/round";

  IGate::reset_counters();
  {
    IGate::tag_type tag;
    for (round_t r = 1; r <= kRounds; ++r) {
      IGate::reset(tag);  // the mandatory per-round re-initialisation
      for (int a = 0; a < kAttempts; ++a) (void)IGate::try_acquire(tag, r);
    }
  }
  EXPECT_EQ(IGate::counters().wins.load(), kRounds);
  EXPECT_EQ(IGate::counters().atomics.load(), kRounds * kAttempts)
      << "gatekeeper: A RMWs per round";
}

TEST(Instrumented, ContendedCasLtAtomicsBoundedByThreadsPerRound) {
  // §6: once the write commits, remaining P_phys threads fail at most one
  // CAS each; later arrivals skip entirely. So atomics <= threads per
  // round (and usually far fewer).
  const int threads = std::max(4, omp_get_max_threads());
  constexpr round_t kRounds = 50;
  constexpr int kAttempts = 32;

  ICasLt::reset_counters();
  ICasLt::tag_type tag;
  for (round_t r = 1; r <= kRounds; ++r) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      for (int a = 0; a < kAttempts; ++a) {
        if (ICasLt::try_acquire(tag, r)) winners.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ASSERT_EQ(winners.load(), 1);
  }
  const auto& c = ICasLt::counters();
  EXPECT_EQ(c.wins.load(), kRounds);
  EXPECT_LE(c.atomics.load(), kRounds * static_cast<std::uint64_t>(threads));
  // The total attempt volume is far larger than the atomics issued.
  EXPECT_EQ(c.attempts.load(),
            kRounds * static_cast<std::uint64_t>(threads) * kAttempts);
  EXPECT_LT(c.atomics.load(), c.attempts.load() / 4);
}

TEST(Instrumented, WorksInsideWriteArbiter) {
  ICasLt::reset_counters();
  WriteArbiter<ICasLt> arbiter(8);
  arbiter.begin_round();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(arbiter.try_acquire(i));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FALSE(arbiter.try_acquire(i));
  EXPECT_EQ(ICasLt::counters().wins.load(), 8u);
  EXPECT_EQ(ICasLt::counters().atomics.load(), 8u);
}

}  // namespace
}  // namespace crcw
