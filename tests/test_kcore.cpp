// k-core decomposition: parallel peeling vs sequential bucket peeling.
#include "algorithms/kcore.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace crcw::algo {
namespace {

using graph::build_csr;
using graph::Csr;

TEST(KcoreSeq, HandComputedShapes) {
  // Path: everything is 1-core.
  const auto path = build_csr(5, graph::path(5));
  EXPECT_EQ(kcore_seq(path), (std::vector<std::uint32_t>(5, 1)));

  // Cycle: 2-core throughout.
  const auto cyc = build_csr(6, graph::cycle(6));
  EXPECT_EQ(kcore_seq(cyc), (std::vector<std::uint32_t>(6, 2)));

  // K5: 4-core.
  const auto k5 = build_csr(5, graph::complete(5));
  EXPECT_EQ(kcore_seq(k5), (std::vector<std::uint32_t>(5, 4)));

  // Star: leaves and centre all 1-core.
  const auto st = build_csr(8, graph::star(8));
  EXPECT_EQ(kcore_seq(st), (std::vector<std::uint32_t>(8, 1)));
}

TEST(KcoreSeq, TriangleWithTail) {
  // Triangle {0,1,2} (2-core) with tail 2-3-4 (1-core).
  graph::EdgeList edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}};
  const auto g = build_csr(5, edges);
  EXPECT_EQ(kcore_seq(g), (std::vector<std::uint32_t>{2, 2, 2, 1, 1}));
}

TEST(Kcore, EmptyAndIsolated) {
  const Csr empty;
  EXPECT_TRUE(kcore(empty).core.empty());

  const auto iso = build_csr(4, {});
  const KcoreResult r = kcore(iso);
  EXPECT_EQ(r.core, (std::vector<std::uint32_t>(4, 0)));
  EXPECT_EQ(r.degeneracy, 0u);
}

TEST(Kcore, MatchesSeqOnHandShapes) {
  graph::EdgeList edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}};
  const auto g = build_csr(5, edges);
  const KcoreResult r = kcore(g, {.threads = 4});
  EXPECT_EQ(r.core, kcore_seq(g));
  EXPECT_EQ(r.degeneracy, 2u);
}

using KcoreParam = std::tuple<std::uint64_t, std::uint64_t, int>;

class KcoreRandomTest : public ::testing::TestWithParam<KcoreParam> {};

TEST_P(KcoreRandomTest, MatchesSequentialReference) {
  const auto& [n, m, threads] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto g = graph::random_graph(n, m, seed);
    const auto expected = kcore_seq(g);
    const KcoreResult r = kcore(g, {.threads = threads});
    ASSERT_EQ(r.core, expected) << "n=" << n << " m=" << m << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KcoreRandomTest,
    ::testing::Values(std::make_tuple(std::uint64_t{10}, std::uint64_t{15}, 1),
                      std::make_tuple(std::uint64_t{100}, std::uint64_t{150}, 4),
                      std::make_tuple(std::uint64_t{100}, std::uint64_t{800}, 4),
                      std::make_tuple(std::uint64_t{1000}, std::uint64_t{5000}, 8),
                      std::make_tuple(std::uint64_t{2000}, std::uint64_t{2000}, 8)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_m" +
             std::to_string(std::get<1>(pinfo.param)) + "_t" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(Kcore, RmatSkewedDegrees) {
  const auto g = build_csr(1024, graph::rmat(1024, 6000, 5), {.remove_self_loops = true});
  const KcoreResult r = kcore(g, {.threads = 8});
  EXPECT_EQ(r.core, kcore_seq(g));
  EXPECT_GT(r.degeneracy, 1u);
}

TEST(Kcore, DegeneracyInvariants) {
  const auto g = graph::random_graph(300, 1200, 9);
  const KcoreResult r = kcore(g);
  // Coreness never exceeds degree, degeneracy bounds every coreness.
  for (graph::vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(r.core[v], g.degree(v));
    EXPECT_LE(r.core[v], r.degeneracy);
  }
}

}  // namespace
}  // namespace crcw::algo
