// The contention-telemetry primitives: histogram bucketing, sharded
// ContentionSite counting and round flushing, registry aggregation and
// the thread-local ScopedRegistry override. (Policy-level counting paths
// are covered in test_instrumented.cpp.)
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace obs = crcw::obs;

namespace {

TEST(Histogram, BucketIndexIsBitWidth) {
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(obs::Histogram::bucket_index(~std::uint64_t{0}), 64u);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(obs::Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_upper(11), 2047u);
  EXPECT_EQ(obs::Histogram::bucket_upper(64), ~std::uint64_t{0});
}

TEST(Histogram, RecordCountQuantile) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_index(1)), 90u);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 1u);
  // p99 lands in the bucket holding 1000: [512, 1023].
  EXPECT_EQ(h.quantile_upper_bound(0.99), 1023u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(ContentionSite, CountsAndTotals) {
  obs::MetricsRegistry registry;
  const obs::ScopedRegistry scoped(registry);
  obs::ContentionSite site("s");
  for (int i = 0; i < 10; ++i) site.count_attempt();
  for (int i = 0; i < 4; ++i) site.count_atomic();
  site.count_win();
  const obs::ContentionTotals t = site.totals();
  EXPECT_EQ(t.attempts, 10u);
  EXPECT_EQ(t.atomics, 4u);
  EXPECT_EQ(t.wins, 1u);
  EXPECT_EQ(t.failures(), 3u);
  EXPECT_EQ(t.rounds, 0u);
}

TEST(ContentionSite, RecordWalkSamplesProbeLengthsOneIn64) {
  obs::MetricsRegistry registry;
  const obs::ScopedRegistry scoped(registry);
  obs::ContentionSite site("walks");
  // 128 single-probe walks from one thread: the attempt counter is exact,
  // but the histogram triggers only when the pre-add value is a multiple
  // of the stride — here at attempts 0 and 64.
  for (int i = 0; i < 128; ++i) site.record_walk(1, 0, 0);
  const obs::ContentionTotals t = site.totals();
  EXPECT_EQ(t.attempts, 128u);
  EXPECT_EQ(t.group_loads, 0u);
  EXPECT_EQ(site.probe_lengths().count(), 2u);
  EXPECT_EQ(t.probe_p50, 1u);
  EXPECT_EQ(t.probe_p99, 1u);

  // The first op after construction always samples (prior == 0), so tiny
  // serial workloads still land in the histogram; group/fp tallies flush
  // exactly, sampled or not.
  obs::ContentionSite fresh("fresh");
  fresh.record_walk(5, 2, 1);
  EXPECT_EQ(fresh.probe_lengths().count(), 1u);
  const obs::ContentionTotals f = fresh.totals();
  EXPECT_EQ(f.attempts, 5u);
  EXPECT_EQ(f.group_loads, 2u);
  EXPECT_EQ(f.fingerprint_fps, 1u);
  EXPECT_EQ(f.probe_p50, 7u);  // 5 lands in the [4, 7] power-of-two bucket
}

TEST(ContentionSite, CountingFromParallelRegionLosesNothing) {
  obs::MetricsRegistry registry;
  const obs::ScopedRegistry scoped(registry);
  obs::ContentionSite site("par");
  constexpr int kPerThread = 10'000;
  constexpr int kThreads = 4;
#pragma omp parallel num_threads(kThreads)
  {
    for (int i = 0; i < kPerThread; ++i) site.count_attempt();
  }
  EXPECT_EQ(site.totals().attempts,
            static_cast<std::uint64_t>(kPerThread) * kThreads);
}

TEST(ContentionSite, FlushRoundFeedsHistogramsWithDeltas) {
  obs::MetricsRegistry registry;
  const obs::ScopedRegistry scoped(registry);
  obs::ContentionSite site("f");
  // Round 1: 8 attempts, 2 atomics. Round 2: 1 attempt, 1 atomic.
  for (int i = 0; i < 8; ++i) site.count_attempt();
  site.count_atomic();
  site.count_atomic();
  site.flush_round();
  site.count_attempt();
  site.count_atomic();
  site.flush_round();

  EXPECT_EQ(site.totals().rounds, 2u);
  const auto& per_round = site.attempts_per_round();
  EXPECT_EQ(per_round.count(), 2u);
  EXPECT_EQ(per_round.bucket(obs::Histogram::bucket_index(8)), 1u);
  EXPECT_EQ(per_round.bucket(obs::Histogram::bucket_index(1)), 1u);
  EXPECT_EQ(site.atomics_per_round().bucket(obs::Histogram::bucket_index(2)), 1u);
}

TEST(ContentionSite, ResetClearsEverything) {
  obs::MetricsRegistry registry;
  const obs::ScopedRegistry scoped(registry);
  obs::ContentionSite site("r");
  site.count_attempt();
  site.flush_round();
  site.reset();
  EXPECT_EQ(site.totals(), obs::ContentionTotals{});
  EXPECT_EQ(site.attempts_per_round().count(), 0u);
  // A fresh round after reset flushes the new deltas only.
  site.count_attempt();
  site.flush_round();
  EXPECT_EQ(site.totals().attempts, 1u);
  EXPECT_EQ(site.totals().rounds, 1u);
}

TEST(MetricsRegistry, AggregatesLiveAndDeadSites) {
  obs::MetricsRegistry registry;
  const obs::ScopedRegistry scoped(registry);
  obs::ContentionSite keep("keep");
  keep.count_win();
  {
    obs::ContentionSite die("die");
    die.count_attempt();
    die.count_attempt();
    EXPECT_EQ(registry.live_sites(), 2u);
  }
  EXPECT_EQ(registry.live_sites(), 1u);
  const obs::ContentionTotals t = registry.totals();
  EXPECT_EQ(t.attempts, 2u);  // retained from the dead site
  EXPECT_EQ(t.wins, 1u);      // live site
}

TEST(MetricsRegistry, SnapshotMergesByName) {
  obs::MetricsRegistry registry;
  const obs::ScopedRegistry scoped(registry);
  { obs::ContentionSite a("caslt"); a.count_attempt(); }
  obs::ContentionSite b("caslt");
  b.count_attempt();
  obs::ContentionSite c("gatekeeper");
  c.count_atomic();

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "caslt");
  EXPECT_EQ(snap[0].second.attempts, 2u);  // dead + live, same name
  EXPECT_EQ(snap[1].first, "gatekeeper");
  EXPECT_EQ(snap[1].second.atomics, 1u);
}

TEST(MetricsRegistry, ResetDropsRetainedAndZeroesLive) {
  obs::MetricsRegistry registry;
  const obs::ScopedRegistry scoped(registry);
  { obs::ContentionSite dead("d"); dead.count_attempt(); }
  obs::ContentionSite live("l");
  live.count_attempt();
  registry.reset();
  EXPECT_EQ(registry.totals(), obs::ContentionTotals{});
  EXPECT_EQ(registry.live_sites(), 1u);
}

TEST(ScopedRegistry, RedirectsAndNests) {
  obs::MetricsRegistry outer;
  const obs::ScopedRegistry outer_scope(outer);
  EXPECT_EQ(&obs::current_registry(), &outer);
  {
    obs::MetricsRegistry inner;
    const obs::ScopedRegistry inner_scope(inner);
    EXPECT_EQ(&obs::current_registry(), &inner);
    obs::ContentionSite site("in");
    site.count_win();
    EXPECT_EQ(inner.totals().wins, 1u);
    EXPECT_EQ(outer.totals().wins, 0u);
  }
  EXPECT_EQ(&obs::current_registry(), &outer);
}

TEST(ScopedRegistry, SiteStaysWithItsBirthRegistry) {
  obs::MetricsRegistry outer;
  const obs::ScopedRegistry outer_scope(outer);
  obs::ContentionSite site("born-outer");
  {
    obs::MetricsRegistry inner;
    const obs::ScopedRegistry inner_scope(inner);
    // Counting while a different registry is current still lands in the
    // registry the site attached to at construction.
    site.count_attempt();
    EXPECT_EQ(inner.totals().attempts, 0u);
  }
  EXPECT_EQ(outer.totals().attempts, 1u);
}

}  // namespace
