// Tarjan–Vishkin biconnected components vs a sequential Hopcroft–Tarjan
// reference, across structured and random graphs.
#include "algorithms/bicc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stack>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "util/rng.hpp"

namespace crcw::algo {
namespace {

using graph::EdgeList;
using graph::vertex_t;

/// Sequential Hopcroft–Tarjan biconnected components (iterative DFS with an
/// edge stack). Returns the canonical per-edge labelling (smallest edge id
/// per component) and the articulation set.
struct RefBicc {
  std::vector<std::uint64_t> edge_label;
  std::set<vertex_t> articulation;
};

RefBicc reference_bicc(std::uint64_t n, const EdgeList& edges) {
  // Adjacency with edge ids.
  std::vector<std::vector<std::pair<vertex_t, std::uint64_t>>> adj(n);
  for (std::uint64_t i = 0; i < edges.size(); ++i) {
    adj[edges[i].u].push_back({edges[i].v, i});
    adj[edges[i].v].push_back({edges[i].u, i});
  }

  RefBicc out;
  out.edge_label.assign(edges.size(), 0);
  std::vector<std::int64_t> num(n, -1);
  std::vector<std::int64_t> low(n, 0);
  std::vector<std::uint64_t> edge_stack;
  std::int64_t counter = 0;
  std::vector<std::vector<std::uint64_t>> components;

  struct Frame {
    vertex_t v;
    vertex_t parent_vertex;
    std::size_t next_edge;
    std::uint64_t via_edge;
  };

  const auto pop_component = [&](std::uint64_t until_edge) {
    std::vector<std::uint64_t> comp;
    while (true) {
      const std::uint64_t e = edge_stack.back();
      edge_stack.pop_back();
      comp.push_back(e);
      if (e == until_edge) break;
    }
    components.push_back(std::move(comp));
  };

  for (vertex_t start = 0; start < n; ++start) {
    if (num[start] != -1) continue;
    std::stack<Frame> stack;
    stack.push({start, start, 0, static_cast<std::uint64_t>(-1)});
    num[start] = low[start] = counter++;
    std::uint64_t root_children = 0;

    while (!stack.empty()) {
      Frame& f = stack.top();
      if (f.next_edge < adj[f.v].size()) {
        const auto [w, eid] = adj[f.v][f.next_edge++];
        if (eid == f.via_edge) continue;  // the tree edge we came by
        if (num[w] == -1) {
          edge_stack.push_back(eid);
          if (f.v == start) ++root_children;
          num[w] = low[w] = counter++;
          stack.push({w, f.v, 0, eid});
        } else if (num[w] < num[f.v]) {
          edge_stack.push_back(eid);
          low[f.v] = std::min(low[f.v], num[w]);
        }
      } else {
        const Frame done = f;
        stack.pop();
        if (stack.empty()) break;
        Frame& up = stack.top();
        low[up.v] = std::min(low[up.v], low[done.v]);
        if (low[done.v] >= num[up.v]) {
          // up.v separates done.v's subtree: one component closes.
          pop_component(done.via_edge);
          if (up.v != start) out.articulation.insert(up.v);
        }
      }
    }
    if (root_children >= 2) out.articulation.insert(start);
  }

  // Canonical labels.
  for (const auto& comp : components) {
    const std::uint64_t label = *std::min_element(comp.begin(), comp.end());
    for (const std::uint64_t e : comp) out.edge_label[e] = label;
  }
  return out;
}

void expect_matches_reference(std::uint64_t n, const EdgeList& edges, int threads) {
  const BiccResult got = biconnected_components(n, edges, {.threads = threads});
  const RefBicc want = reference_bicc(n, edges);

  ASSERT_EQ(got.edge_label.size(), edges.size());
  ASSERT_EQ(got.edge_label, want.edge_label);

  std::set<vertex_t> got_arts;
  for (vertex_t v = 0; v < n; ++v) {
    if (got.is_articulation[v] != 0) got_arts.insert(v);
  }
  ASSERT_EQ(got_arts, want.articulation);

  // Component count agrees with the number of distinct labels.
  const std::set<std::uint64_t> labels(got.edge_label.begin(), got.edge_label.end());
  ASSERT_EQ(got.components, labels.size());
}

TEST(Bicc, SingleEdgeIsABridge) {
  const EdgeList edges = {{0, 1}};
  const BiccResult r = biconnected_components(2, edges);
  EXPECT_EQ(r.components, 1u);
  ASSERT_EQ(r.bridges.size(), 1u);
  EXPECT_EQ(r.bridges[0], 0u);
  EXPECT_EQ(r.is_articulation[0], 0);
  EXPECT_EQ(r.is_articulation[1], 0);
}

TEST(Bicc, TriangleIsOneComponent) {
  const EdgeList edges = {{0, 1}, {1, 2}, {0, 2}};
  const BiccResult r = biconnected_components(3, edges);
  EXPECT_EQ(r.components, 1u);
  EXPECT_TRUE(r.bridges.empty());
  for (const auto l : r.edge_label) EXPECT_EQ(l, 0u);
}

TEST(Bicc, PathEveryEdgeItsOwnComponent) {
  const EdgeList edges = graph::path(6);
  const BiccResult r = biconnected_components(6, edges);
  EXPECT_EQ(r.components, 5u);
  EXPECT_EQ(r.bridges.size(), 5u);
  // Interior vertices are cut vertices.
  for (vertex_t v = 1; v <= 4; ++v) EXPECT_EQ(r.is_articulation[v], 1) << v;
  EXPECT_EQ(r.is_articulation[0], 0);
  EXPECT_EQ(r.is_articulation[5], 0);
}

TEST(Bicc, TwoTrianglesSharingAVertex) {
  // Bowtie: triangles {0,1,2} and {2,3,4} share vertex 2.
  const EdgeList edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}};
  const BiccResult r = biconnected_components(5, edges);
  EXPECT_EQ(r.components, 2u);
  EXPECT_EQ(r.is_articulation[2], 1);
  for (const vertex_t v : {0u, 1u, 3u, 4u}) EXPECT_EQ(r.is_articulation[v], 0) << v;
  EXPECT_TRUE(r.bridges.empty());
  expect_matches_reference(5, edges, 4);
}

TEST(Bicc, CycleWithPendantEdge) {
  // Square 0-1-2-3-0 plus pendant 3-4: one 4-cycle component + one bridge.
  const EdgeList edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}};
  const BiccResult r = biconnected_components(5, edges);
  EXPECT_EQ(r.components, 2u);
  ASSERT_EQ(r.bridges.size(), 1u);
  EXPECT_EQ(r.bridges[0], 4u);
  EXPECT_EQ(r.is_articulation[3], 1);
  expect_matches_reference(5, edges, 4);
}

TEST(Bicc, StructuredFamilies) {
  expect_matches_reference(8, graph::cycle(8), 4);
  expect_matches_reference(9, graph::star(9), 4);
  expect_matches_reference(12, graph::grid2d(3, 4), 4);
  expect_matches_reference(6, graph::complete(6), 4);
  expect_matches_reference(10, graph::path(10), 1);
}

class BiccRandomTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t, int>> {};

TEST_P(BiccRandomTest, MatchesHopcroftTarjanOnConnectedRandomGraphs) {
  const auto& [n, extra, threads] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    // Connected by construction: random tree + extra random simple edges.
    EdgeList edges = graph::random_tree(n, seed);
    std::set<std::uint64_t> used;
    for (const auto& e : edges) {
      used.insert((static_cast<std::uint64_t>(std::min(e.u, e.v)) << 32) |
                  std::max(e.u, e.v));
    }
    util::Xoshiro256 rng(seed * 17 + 3);
    std::uint64_t added = 0;
    while (added < extra) {
      const auto u = static_cast<vertex_t>(rng.bounded(n));
      auto v = static_cast<vertex_t>(rng.bounded(n - 1));
      if (v >= u) ++v;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
      if (!used.insert(key).second) continue;
      edges.push_back({u, v});
      ++added;
    }
    expect_matches_reference(n, edges, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BiccRandomTest,
    ::testing::Values(std::make_tuple(std::uint64_t{4}, std::uint64_t{1}, 1),
                      std::make_tuple(std::uint64_t{10}, std::uint64_t{5}, 4),
                      std::make_tuple(std::uint64_t{50}, std::uint64_t{10}, 4),
                      std::make_tuple(std::uint64_t{50}, std::uint64_t{120}, 4),
                      std::make_tuple(std::uint64_t{300}, std::uint64_t{50}, 8),
                      std::make_tuple(std::uint64_t{300}, std::uint64_t{900}, 8)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_x" +
             std::to_string(std::get<1>(pinfo.param)) + "_t" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(Bicc, InputValidation) {
  EXPECT_THROW((void)biconnected_components(0, {}), std::invalid_argument);
  EXPECT_THROW((void)biconnected_components(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW((void)biconnected_components(2, {{0, 1}, {1, 0}}), std::invalid_argument);
  EXPECT_THROW((void)biconnected_components(2, {{0, 5}}), std::invalid_argument);
  // Disconnected.
  EXPECT_THROW((void)biconnected_components(4, {{0, 1}, {2, 3}}), std::invalid_argument);
  EXPECT_THROW((void)biconnected_components(3, {{0, 1}}), std::invalid_argument);
}

TEST(Bicc, SingletonVertex) {
  const BiccResult r = biconnected_components(1, {});
  EXPECT_EQ(r.components, 0u);
  EXPECT_TRUE(r.edge_label.empty());
}

}  // namespace
}  // namespace crcw::algo
