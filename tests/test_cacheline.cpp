// Padding/alignment utilities.
#include "util/cacheline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

namespace crcw::util {
namespace {

TEST(Cacheline, SizeIsPowerOfTwo) {
  EXPECT_GT(kCacheLineSize, 0u);
  EXPECT_EQ(kCacheLineSize & (kCacheLineSize - 1), 0u);
}

TEST(Padded, OccupiesWholeLines) {
  EXPECT_EQ(sizeof(Padded<std::uint64_t>), kCacheLineSize);
  EXPECT_EQ(alignof(Padded<std::uint64_t>), kCacheLineSize);
  // A type slightly larger than one line gets two.
  struct Big {
    char data[65];
  };
  EXPECT_EQ(sizeof(Padded<Big>), 2 * kCacheLineSize);
}

TEST(Padded, ArrayElementsLandOnDistinctLines) {
  Padded<std::atomic<int>> tags[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&tags[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&tags[i + 1].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(Padded, ValueAccessors) {
  Padded<int> p(42);
  EXPECT_EQ(*p, 42);
  *p = 7;
  EXPECT_EQ(p.value, 7);

  const Padded<int>& cref = p;
  EXPECT_EQ(*cref, 7);
}

TEST(Padded, ArrowForwardsToValue) {
  struct S {
    int f() const { return 3; }
  };
  Padded<S> p;
  EXPECT_EQ(p->f(), 3);
}

TEST(Cacheline, FitsSingleLine) {
  EXPECT_TRUE(fits_single_line<std::uint64_t>());
  struct Huge {
    char data[128];
  };
  EXPECT_FALSE(fits_single_line<Huge>());
}

}  // namespace
}  // namespace crcw::util
