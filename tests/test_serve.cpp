// src/serve: admission batching onto CRCW rounds — batch boundaries,
// same-key collapse to one winner per round, committed-read visibility,
// deadline-triggered flush, tombstone erase, and the metrics surface.
#include "serve/serve_session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ds/hash_common.hpp"

namespace crcw::serve {
namespace {

TEST(Serve, CallUpsertLookupErase) {
  ServeSession session;
  const Result up = session.call(Op::upsert(7, 70));
  EXPECT_TRUE(up.won);  // uncontended write always wins its round
  EXPECT_EQ(up.value, 70u);

  const Result hit = session.call(Op::lookup(7));
  EXPECT_TRUE(hit.won);
  EXPECT_EQ(hit.value, 70u);
  EXPECT_GT(hit.round, up.round);  // later batch, later round

  const Result miss = session.call(Op::lookup(8));
  EXPECT_FALSE(miss.won);
  EXPECT_EQ(miss.value, 0u);

  const Result erased = session.call(Op::erase(7));
  EXPECT_TRUE(erased.won);
  EXPECT_FALSE(session.committed(7).has_value());
  const Result gone = session.call(Op::lookup(7));
  EXPECT_FALSE(gone.won);
}

TEST(Serve, BatchBoundariesSliceBigDrainsIntoRounds) {
  ServeConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 1'000'000;  // no deadline interference
  ServeSession session(cfg);

  std::vector<OpFuture> futures(20);
  for (std::uint64_t i = 0; i < futures.size(); ++i) {
    session.submit(Op::upsert(100 + i, i), futures[i]);
  }
  session.flush();

  // One drain of 20 ops with max_batch 8 slices into rounds of 8/8/4, in
  // admission order.
  EXPECT_EQ(session.backend().round(), 3u);
  EXPECT_EQ(session.backend().batches(), 1u);
  EXPECT_EQ(session.backend().ops_served(), 20u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].ready()) << "op " << i;
    EXPECT_TRUE(futures[i].result().won);
    EXPECT_EQ(futures[i].result().round, i / 8 + 1);
  }
}

TEST(Serve, SameKeyCollapsesToOneWinnerPerRound) {
  ServeConfig cfg;
  cfg.batch.max_batch = 1024;
  ServeSession session(cfg);

  constexpr std::size_t kContenders = 32;
  std::vector<OpFuture> futures(kContenders);
  for (std::size_t i = 0; i < kContenders; ++i) {
    session.submit(Op::upsert(42, 1000 + i), futures[i]);
  }
  session.flush();

  std::size_t winners = 0;
  std::uint64_t winner_value = 0;
  for (const OpFuture& f : futures) {
    ASSERT_TRUE(f.ready());
    EXPECT_EQ(f.result().round, 1u);  // one batch, one round
    if (f.result().won) {
      ++winners;
      winner_value = f.result().value;
    }
  }
  EXPECT_EQ(winners, 1u);
  // The wait-free loser guarantee: every loser observed the winner's
  // committed value, not its own offer.
  for (const OpFuture& f : futures) EXPECT_EQ(f.result().value, winner_value);
  EXPECT_EQ(session.committed(42), winner_value);
}

TEST(Serve, CommittedReadsExcludeOwnRound) {
  ServeSession session;

  // A lookup admitted into the same round as the first write of its key
  // must miss: lookups see rounds < r only.
  OpFuture look, write;
  session.submit(Op::lookup(5), look);
  session.submit(Op::upsert(5, 55), write);
  session.flush();
  ASSERT_TRUE(look.ready());
  ASSERT_TRUE(write.ready());
  EXPECT_EQ(look.result().round, write.result().round);
  EXPECT_FALSE(look.result().won);
  EXPECT_EQ(look.result().value, 0u);

  // The next batch's lookup runs in a later round and must hit.
  const Result later = session.call(Op::lookup(5));
  EXPECT_TRUE(later.won);
  EXPECT_EQ(later.value, 55u);
  EXPECT_GT(later.round, write.result().round);
}

TEST(Serve, SizeTriggerClosesBatch) {
  ServeConfig cfg;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 1'000'000;  // deadline effectively off
  ServeSession session(cfg);

  std::vector<OpFuture> futures(4);
  session.submit(Op::upsert(1, 1), futures[0]);
  session.submit(Op::upsert(2, 2), futures[1]);
  EXPECT_FALSE(session.poll());  // 2 < max_batch and deadline far away
  session.submit(Op::upsert(3, 3), futures[2]);
  session.submit(Op::upsert(4, 4), futures[3]);
  EXPECT_TRUE(session.poll());  // size trigger
  EXPECT_EQ(session.backend().deadline_batches(), 0u);
  for (const OpFuture& f : futures) EXPECT_TRUE(f.ready());
}

TEST(Serve, DeadlineTriggerClosesTrickleBatch) {
  ServeConfig cfg;
  cfg.batch.max_batch = 1 << 20;  // size trigger unreachable
  cfg.batch.max_wait_us = 1000;
  ServeSession session(cfg);

  OpFuture f;
  session.submit(Op::upsert(9, 90), f);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(session.poll());  // the op aged past max_wait_us
  EXPECT_TRUE(f.ready());
  EXPECT_TRUE(f.result().won);
  EXPECT_EQ(session.backend().deadline_batches(), 1u);
}

TEST(Serve, EraseArbitratesAndTombstones) {
  ServeSession session;
  ASSERT_TRUE(session.call(Op::upsert(3, 30)).won);

  // Erase and upsert racing in one round: exactly one wins the (key,
  // round) arbitration and its effect is what the round commits.
  OpFuture erase_f, upsert_f;
  session.submit(Op::erase(3), erase_f);
  session.submit(Op::upsert(3, 31), upsert_f);
  session.flush();
  ASSERT_TRUE(erase_f.ready());
  ASSERT_TRUE(upsert_f.ready());
  EXPECT_NE(erase_f.result().won, upsert_f.result().won);
  if (erase_f.result().won) {
    EXPECT_FALSE(session.committed(3).has_value());
    EXPECT_EQ(upsert_f.result().value, 0u);  // loser observed the tombstone
  } else {
    EXPECT_EQ(session.committed(3), 31u);
    EXPECT_EQ(erase_f.result().value, 31u);  // loser observed the upsert
  }

  // A tombstoned key revives on the next round's upsert.
  ASSERT_TRUE(session.call(Op::erase(3)).won);
  ASSERT_TRUE(session.call(Op::upsert(3, 32)).won);
  EXPECT_EQ(session.committed(3), 32u);
}

TEST(Serve, SentinelKeyFailsWithoutPoisoningTheRound) {
  ServeSession session;
  const Result bad = session.call(Op::upsert(~std::uint64_t{0}, 1));
  EXPECT_FALSE(bad.won);
  EXPECT_EQ(bad.value, 0u);
  EXPECT_TRUE(session.call(Op::upsert(1, 10)).won);  // engine still serves
}

TEST(Serve, BacklogGrowAbsorbsOneBigBatch) {
  ServeConfig cfg;
  cfg.table.expected_keys = 2;  // force the reservation path
  cfg.batch.max_batch = 4096;
  ServeSession session(cfg);
  const std::uint64_t before = session.backend().table().bucket_count();

  constexpr std::uint64_t kKeys = 2000;
  std::vector<OpFuture> futures(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    session.submit(Op::upsert(i + 1, i), futures[i]);
  }
  session.flush();

  EXPECT_GT(session.backend().table().bucket_count(), before);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(futures[i].ready());
    EXPECT_TRUE(futures[i].result().won);
    ASSERT_EQ(session.committed(i + 1), i) << "key " << i + 1;
  }
}

TEST(Serve, StringKeysRideTheUint64Space) {
  ServeSession session;
  const std::uint64_t alice = ds::string_key("user:alice");
  const std::uint64_t bob = ds::string_key("user:bob");
  ASSERT_NE(alice, bob);
  ASSERT_TRUE(session.call(Op::upsert(alice, 1)).won);
  ASSERT_TRUE(session.call(Op::upsert(bob, 2)).won);
  EXPECT_EQ(session.call(Op::lookup(alice)).value, 1u);
  EXPECT_EQ(session.call(Op::lookup(bob)).value, 2u);
}

TEST(Serve, BackgroundPumpServesConcurrentClients) {
  ServeConfig cfg;
  cfg.batch.max_batch = 64;
  cfg.batch.max_wait_us = 200;
  ServeSession session(cfg);
  session.start_pump();

  constexpr int kClients = 4;
  constexpr std::uint64_t kOpsPerClient = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      OpFuture f;
      for (std::uint64_t i = 0; i < kOpsPerClient; ++i) {
        const std::uint64_t key = i + 1;  // all clients contend on all keys
        session.submit(Op::upsert(key, static_cast<std::uint64_t>(c) * 1000 + i), f);
        const Result& r = session.wait(f);
        // Every client observes *some* round-committed value for the key.
        if (r.value % 1000 != i) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  session.stop_pump();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(session.backend().ops_served(), kClients * kOpsPerClient);
  for (std::uint64_t key = 1; key <= kOpsPerClient; ++key) {
    ASSERT_TRUE(session.committed(key).has_value()) << "key " << key;
  }
}

TEST(Serve, MetricsHistogramsAndCountersFlow) {
  obs::MetricsRegistry local;
  {
    const obs::ScopedRegistry scoped(local);
    ServeConfig cfg;
    cfg.batch.counters = true;
    ServeSession session(cfg);

    constexpr std::size_t kOps = 16;
    std::vector<OpFuture> futures(kOps);
    for (std::size_t i = 0; i < kOps; ++i) {
      // Half contend on key 1, half are lookups.
      session.submit(i % 2 == 0 ? Op::upsert(1, i) : Op::lookup(1), futures[i]);
    }
    session.flush();

    ServeMetrics& m = session.metrics();
    EXPECT_EQ(m.enqueue_to_admit().count(), kOps);
    EXPECT_EQ(m.enqueue_to_commit().count(), kOps);
    EXPECT_GT(m.p99_enqueue_to_commit_ns(), 0u);
    ASSERT_TRUE(m.counters_enabled());
  }
  // The serve site folded into the scoped registry on destruction:
  // attempts = ops admitted, wins = write winners (one per (key, round)),
  // refills = batches closed.
  bool found = false;
  for (const auto& [name, totals] : local.snapshot()) {
    if (name != "serve") continue;
    found = true;
    EXPECT_EQ(totals.attempts, 16u);
    EXPECT_EQ(totals.wins, 1u);
    EXPECT_EQ(totals.refills, 1u);
    EXPECT_EQ(totals.rounds, 1u);
  }
  EXPECT_TRUE(found);
}

TEST(Serve, OldestNsClearsWhenLaneDrains) {
  // Regression: the advisory oldest_ns must read "nothing pending" once a
  // lane drains to empty. Before the fix, a drained lane kept reporting
  // its last op's timestamp until the next enqueue overwrote it, so the
  // deadline trigger could fire forever on an op that was already served.
  RequestQueue queue(/*lanes=*/2, /*lane_backlog=*/64, /*backoff_spins=*/8);
  OpFuture f;
  ASSERT_TRUE(queue.try_enqueue(Op::upsert(1, 1), f, /*lane_hint=*/0));
  EXPECT_NE(queue.oldest_enqueue_ns(), 0u);

  std::vector<Record> drained;
  EXPECT_EQ(queue.drain_lane_into(0, drained), 1u);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(queue.oldest_enqueue_ns(), 0u);  // lane empty ⇒ no advisory age

  // A fresh enqueue (any lane) re-arms the advisory timestamp.
  OpFuture g;
  ASSERT_TRUE(queue.try_enqueue(Op::upsert(2, 2), g, /*lane_hint=*/1));
  EXPECT_NE(queue.oldest_enqueue_ns(), 0u);
}

TEST(Serve, ConfigValidationRejectsBadKnobs) {
  EXPECT_THROW((void)ServeConfig{}.with_max_batch(0).validated(),
               std::invalid_argument);
  EXPECT_THROW((void)ServeConfig{}.with_shards(-1).validated(),
               std::invalid_argument);
  ServeConfig bad_load;
  bad_load.table.max_load = 1.5;
  EXPECT_THROW((void)bad_load.validated(), std::invalid_argument);

  // Non-power-of-two shard counts round up rather than reject.
  const ServeConfig cfg = ServeConfig{}.with_shards(3).validated();
  EXPECT_EQ(cfg.shards.count, 4);
}

TEST(Serve, DestructorFlushesSubmittedOps) {
  OpFuture f;
  {
    ServeSession session;
    session.submit(Op::upsert(2, 20), f);
    // No poll, no flush: the destructor must publish before tearing down.
  }
  ASSERT_TRUE(f.ready());
  EXPECT_TRUE(f.result().won);
}

}  // namespace
}  // namespace crcw::serve
