// Combining atomics (fetch-min/max over CAS) and Min/Max cells.
#include "core/combining.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cstdint>
#include <limits>

namespace crcw {
namespace {

TEST(AtomicFetchMin, BasicSemantics) {
  std::atomic<int> a{10};
  EXPECT_TRUE(atomic_fetch_min(a, 5));
  EXPECT_EQ(a.load(), 5);
  EXPECT_FALSE(atomic_fetch_min(a, 7));
  EXPECT_EQ(a.load(), 5);
  EXPECT_FALSE(atomic_fetch_min(a, 5));  // equal is not an improvement
}

TEST(AtomicFetchMax, BasicSemantics) {
  std::atomic<int> a{10};
  EXPECT_TRUE(atomic_fetch_max(a, 15));
  EXPECT_EQ(a.load(), 15);
  EXPECT_FALSE(atomic_fetch_max(a, 12));
  EXPECT_FALSE(atomic_fetch_max(a, 15));
}

TEST(AtomicFetchMin, WorksOnAtomicRef) {
  std::uint32_t raw = 100;
  EXPECT_TRUE(atomic_fetch_min(std::atomic_ref<std::uint32_t>(raw), 42u));
  EXPECT_EQ(raw, 42u);
}

TEST(AtomicFetchMin, WorksOnDoubles) {
  std::atomic<double> a{1.5};
  EXPECT_TRUE(atomic_fetch_min(a, 0.25));
  EXPECT_EQ(a.load(), 0.25);
  EXPECT_FALSE(atomic_fetch_min(a, 0.5));
}

TEST(AtomicCombine, SaturatingAdd) {
  std::atomic<int> a{0};
  const auto op = [](int cur, int v) { return std::min(cur + v, 100); };
  const auto improves = [](int cur, int /*v*/) { return cur < 100; };
  EXPECT_TRUE(atomic_combine(a, 60, op, improves));
  EXPECT_EQ(a.load(), 60);
  EXPECT_TRUE(atomic_combine(a, 60, op, improves));
  EXPECT_EQ(a.load(), 100);
  EXPECT_FALSE(atomic_combine(a, 60, op, improves));
}

TEST(MinCell, OfferAndRead) {
  MinCell<int> cell(std::numeric_limits<int>::max());
  EXPECT_TRUE(cell.offer(9));
  EXPECT_TRUE(cell.offer(3));
  EXPECT_FALSE(cell.offer(5));
  EXPECT_EQ(cell.read(), 3);
  cell.reset(std::numeric_limits<int>::max());
  EXPECT_TRUE(cell.offer(7));
}

TEST(MaxCell, OfferAndRead) {
  MaxCell<int> cell(std::numeric_limits<int>::min());
  EXPECT_TRUE(cell.offer(-5));
  EXPECT_TRUE(cell.offer(10));
  EXPECT_FALSE(cell.offer(2));
  EXPECT_EQ(cell.read(), 10);
}

TEST(CombiningStress, ConcurrentMinFindsGlobalMinimum) {
  const int threads = std::max(4, omp_get_max_threads());
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> cell{std::numeric_limits<std::uint64_t>::max()};
#pragma omp parallel num_threads(threads)
    {
      const auto t = static_cast<std::uint64_t>(omp_get_thread_num());
      for (std::uint64_t i = 0; i < 100; ++i) {
        atomic_fetch_min(cell, (t * 100 + i) * 7 + 13);
      }
    }
    // Global minimum over all offers is t=0, i=0 → 13.
    ASSERT_EQ(cell.load(), 13u);
  }
}

TEST(CombiningStress, ConcurrentMaxFindsGlobalMaximum) {
  const int threads = std::max(4, omp_get_max_threads());
  std::atomic<std::int64_t> cell{std::numeric_limits<std::int64_t>::min()};
#pragma omp parallel num_threads(threads)
  {
    const auto t = static_cast<std::int64_t>(omp_get_thread_num());
    for (std::int64_t i = 0; i < 1000; ++i) atomic_fetch_max(cell, t * 1000 + i);
  }
  EXPECT_EQ(cell.load(), static_cast<std::int64_t>(threads - 1) * 1000 + 999);
}

TEST(CombiningStress, ExactlyOneWinnerObservesFinalValue) {
  // The "won at time of update" return value: the number of successful
  // improvements equals the length of some decreasing chain ending at the
  // minimum — at least 1, at most the offer count, and the *last* winner
  // wrote the final value.
  const int threads = std::max(4, omp_get_max_threads());
  std::atomic<int> cell{std::numeric_limits<int>::max()};
  std::atomic<int> improvements{0};
#pragma omp parallel num_threads(threads)
  {
    const int mine = omp_get_thread_num() + 1;
    if (atomic_fetch_min(cell, mine)) improvements.fetch_add(1);
  }
  EXPECT_EQ(cell.load(), 1);
  EXPECT_GE(improvements.load(), 1);
  EXPECT_LE(improvements.load(), threads);
}

}  // namespace
}  // namespace crcw
