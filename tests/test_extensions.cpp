// Extensions beyond the paper's evaluation: the doubly-logarithmic Maximum,
// the CREW OR counterpart, and the model-level Awerbuch–Shiloach CC.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/cc.hpp"
#include "algorithms/max.hpp"
#include "algorithms/or_any.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "sim/programs.hpp"
#include "util/rng.hpp"

namespace crcw {
namespace {

// ---------------------------------------------------------------------------
// Doubly-logarithmic Maximum

class DoublyLogMaxTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoublyLogMaxTest, MatchesSequentialReference) {
  const std::uint64_t n = GetParam();
  util::Xoshiro256 rng(n * 7 + 1);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::uint32_t> xs(n);
    for (auto& x : xs) x = static_cast<std::uint32_t>(rng.bounded(1u << 24));
    ASSERT_EQ(algo::max_index_doubly_log(xs), algo::max_index_seq(xs))
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DoublyLogMaxTest,
                         ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                           std::uint64_t{3}, std::uint64_t{5},
                                           std::uint64_t{16}, std::uint64_t{17},
                                           std::uint64_t{255}, std::uint64_t{256},
                                           std::uint64_t{1000}, std::uint64_t{65536}),
                         [](const auto& pinfo) { return "n" + std::to_string(pinfo.param); });

TEST(DoublyLogMax, TieBreakIsLastOccurrence) {
  const std::vector<std::uint32_t> xs = {9, 1, 9, 9, 2};
  EXPECT_EQ(algo::max_index_doubly_log(xs), 3u);
  const std::vector<std::uint32_t> all_equal(100, 5);
  EXPECT_EQ(algo::max_index_doubly_log(all_equal), 99u);
}

TEST(DoublyLogMax, ThreadSweepStaysCorrect) {
  util::Xoshiro256 rng(3);
  std::vector<std::uint32_t> xs(5000);
  for (auto& x : xs) x = static_cast<std::uint32_t>(rng.bounded(1u << 28));
  const auto expected = algo::max_index_seq(xs);
  for (const int t : {1, 2, 8}) {
    EXPECT_EQ(algo::max_index_doubly_log(xs, {.threads = t}), expected) << t;
  }
}

TEST(DoublyLogMax, EmptyThrows) {
  EXPECT_THROW((void)algo::max_index_doubly_log({}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CREW OR

TEST(CrewOr, MatchesCrcwOrOnAllShapes) {
  for (const std::uint64_t n : {0ull, 1ull, 2ull, 3ull, 63ull, 64ull, 1000ull}) {
    std::vector<std::uint8_t> bits(n, 0);
    EXPECT_FALSE(algo::parallel_or_crew(bits)) << n;
    if (n == 0) continue;
    bits[n - 1] = 1;
    EXPECT_TRUE(algo::parallel_or_crew(bits)) << n;
    EXPECT_EQ(algo::parallel_or_crew(bits), algo::parallel_or_caslt(bits)) << n;
  }
}

TEST(CrewOr, RandomAgreementSweep) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t n = 1 + rng.bounded(512);
    std::vector<std::uint8_t> bits(n, 0);
    // Mostly-zero vectors so both outcomes occur.
    if (rng.bounded(3) != 0) bits[rng.bounded(n)] = 1;
    const bool expected = algo::parallel_or_naive(bits);
    EXPECT_EQ(algo::parallel_or_crew(bits), expected) << trial;
  }
}

// ---------------------------------------------------------------------------
// Model-level Awerbuch–Shiloach CC

TEST(SimCc, MatchesUnionFindOnPlantedComponents) {
  const auto g = graph::build_csr(60, graph::planted_components(3, 20, 4, 9));
  sim::Simulator sim(sim::AccessMode::kArbitrary, 1);
  const auto labels64 = sim::programs::connected_components(sim, g.offsets(), g.targets());
  std::vector<graph::vertex_t> labels(labels64.begin(), labels64.end());
  EXPECT_TRUE(graph::validate_components(g, labels));
}

TEST(SimCc, AdversarialSeedsAllYieldTheTruePartition) {
  // The arbitrary rule picks hook winners adversarially per seed; the
  // resulting partition must be seed-independent.
  const auto g = graph::random_graph(50, 80, 21);
  const auto expected = graph::connected_components(g);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    sim::Simulator sim(sim::AccessMode::kArbitrary, 1, seed);
    const auto labels64 =
        sim::programs::connected_components(sim, g.offsets(), g.targets());
    std::vector<graph::vertex_t> labels(labels64.begin(), labels64.end());
    ASSERT_EQ(graph::canonicalize_labels(labels), expected) << "seed " << seed;
  }
}

TEST(SimCc, AgreesWithOpenMpKernel) {
  const auto g = graph::random_graph(40, 70, 2);
  sim::Simulator sim(sim::AccessMode::kArbitrary, 1);
  const auto model64 = sim::programs::connected_components(sim, g.offsets(), g.targets());
  std::vector<graph::vertex_t> model_labels(model64.begin(), model64.end());

  const auto impl = crcw::algo::cc_caslt(g);
  EXPECT_EQ(graph::canonicalize_labels(model_labels),
            graph::canonicalize_labels(impl.label));
}

TEST(SimCc, LogarithmicDepthOnAPath) {
  const auto g = graph::build_csr(256, graph::path(256));
  sim::Simulator sim(sim::AccessMode::kArbitrary, 1);
  (void)sim::programs::connected_components(sim, g.offsets(), g.targets());
  // ~11 steps per A-S iteration, O(log n) iterations.
  EXPECT_LE(sim.counters().depth, 400u);
}

TEST(SimCc, IsolatedVertices) {
  const auto g = graph::build_csr(10, {});
  sim::Simulator sim(sim::AccessMode::kArbitrary, 1);
  const auto labels = sim::programs::connected_components(sim, g.offsets(), g.targets());
  for (std::uint64_t v = 0; v < 10; ++v) EXPECT_EQ(labels[v], v);
}

}  // namespace
}  // namespace crcw
