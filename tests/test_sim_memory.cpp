// sim::Memory — logged accesses and deferred commits.
#include "sim/memory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace crcw::sim {
namespace {

TEST(SimMemory, PokePeek) {
  Memory mem(10);
  EXPECT_EQ(mem.size(), 10u);
  mem.poke(3, 42);
  EXPECT_EQ(mem.peek(3), 42);
  EXPECT_EQ(mem.peek(0), 0);
}

TEST(SimMemory, FillValue) {
  Memory mem(4, -1);
  for (addr_t a = 0; a < 4; ++a) EXPECT_EQ(mem.peek(a), -1);
}

TEST(SimMemory, ResizeGrowsOnly) {
  Memory mem(4);
  mem.poke(2, 9);
  mem.resize(8, -5);
  EXPECT_EQ(mem.size(), 8u);
  EXPECT_EQ(mem.peek(2), 9);
  EXPECT_EQ(mem.peek(7), -5);
  mem.resize(2);  // shrinking is a no-op
  EXPECT_EQ(mem.size(), 8u);
}

TEST(SimMemory, ReadsAreLoggedAndReturnPreStepValues) {
  Memory mem(4);
  mem.poke(1, 11);
  EXPECT_EQ(mem.read(0, 1), 11);
  EXPECT_EQ(mem.read(2, 1), 11);
  ASSERT_EQ(mem.read_log().size(), 2u);
  EXPECT_EQ(mem.read_log()[0].proc, 0u);
  EXPECT_EQ(mem.read_log()[1].proc, 2u);
  EXPECT_EQ(mem.read_log()[0].addr, 1u);
}

TEST(SimMemory, WritesAreBufferedUntilCommit) {
  Memory mem(4);
  mem.write(0, 2, 7);
  EXPECT_EQ(mem.peek(2), 0) << "write must be invisible before commit";
  EXPECT_EQ(mem.read(1, 2), 0) << "same-step read sees pre-step value";
  mem.commit({{2, 0, 7, 1}});
  EXPECT_EQ(mem.peek(2), 7);
  EXPECT_TRUE(mem.write_log().empty()) << "commit clears the logs";
  EXPECT_TRUE(mem.read_log().empty());
}

TEST(SimMemory, OutOfRangeAccessesThrow) {
  Memory mem(4);
  EXPECT_THROW(mem.peek(4), std::out_of_range);
  EXPECT_THROW(mem.poke(10, 1), std::out_of_range);
  EXPECT_THROW(mem.read(0, 4), std::out_of_range);
  EXPECT_THROW(mem.write(0, 4, 1), std::out_of_range);
}

TEST(SimMemory, ClearLogsDiscardsPendingWrites) {
  Memory mem(4);
  mem.write(0, 1, 5);
  mem.clear_logs();
  EXPECT_TRUE(mem.write_log().empty());
  mem.commit({});
  EXPECT_EQ(mem.peek(1), 0);
}

TEST(SimMemory, ContentsSnapshot) {
  Memory mem(3);
  mem.poke(0, 1);
  mem.poke(2, 3);
  const auto& c = mem.contents();
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[1], 0);
  EXPECT_EQ(c[2], 3);
}

}  // namespace
}  // namespace crcw::sim
