// util::Group — the 16-byte control-group matcher behind the ds/ sidecar
// probing. The load-bearing claim is bit-exact parity between whatever
// vector backend this build selected (SSE2 / NEON) and the portable SWAR
// path: the CRCW_SIMD=OFF CI leg runs every suite on SWAR alone, so any
// divergence here would make the two builds probe differently.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "ds/hash_common.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace crcw {
namespace {

using util::Group;
using util::kGroupWidth;

TEST(Simd, BackendNameMatchesCompileFlags) {
  const std::string_view backend = util::simd_backend();
  EXPECT_TRUE(backend == "sse2" || backend == "neon" || backend == "swar");
#if defined(CRCW_SIMD_SSE2)
  EXPECT_EQ(backend, "sse2");
#elif defined(CRCW_SIMD_NEON)
  EXPECT_EQ(backend, "neon");
#else
  EXPECT_EQ(backend, "swar");
#endif
}

TEST(Simd, MatchFindsEveryLaneExactly) {
  std::uint8_t bytes[kGroupWidth];
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 16 + 3);
  }
  const Group g = Group::from(bytes);
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    EXPECT_EQ(g.match(bytes[i]), 1u << i) << "lane " << i;
  }
  EXPECT_EQ(g.match(0x00), 0u);  // absent needle: no lanes
}

TEST(Simd, MatchAllEqualAndHighBitNeedles) {
  std::uint8_t bytes[kGroupWidth];
  // All-equal group, including needles with the sign bit set (the H2
  // fingerprint range 0x80..0xFF — signed-char comparisons must not trip).
  for (const std::uint8_t b : {0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF}) {
    std::memset(bytes, b, sizeof(bytes));
    const Group g = Group::from(bytes);
    EXPECT_EQ(g.match(b), 0xFFFFu) << "needle " << int(b);
    EXPECT_EQ(g.match(static_cast<std::uint8_t>(b ^ 0x40)), 0u);
  }
}

TEST(Simd, VectorAndSwarAgreeOnRandomBatches) {
  util::Xoshiro256 rng(20210811);
  std::uint8_t bytes[kGroupWidth];
  for (int iter = 0; iter < 4096; ++iter) {
    for (auto& b : bytes) {
      // Low-entropy draw: repeats are common, so multi-lane masks happen.
      b = static_cast<std::uint8_t>(rng.bounded(8) * 37);
    }
    const Group g = Group::from(bytes);
    for (int n = 0; n < 8; ++n) {
      const auto needle = static_cast<std::uint8_t>(rng.bounded(8) * 37);
      EXPECT_EQ(g.match(needle), g.match_swar(needle)) << "iter " << iter;
    }
    // The ds/ sidecar's three needle classes on the same snapshot.
    EXPECT_EQ(g.match(ds::kCtrlEmpty), g.match_swar(ds::kCtrlEmpty));
    EXPECT_EQ(g.match(ds::kCtrlTombstone), g.match_swar(ds::kCtrlTombstone));
    const auto fp = static_cast<std::uint8_t>(0x80u | rng.bounded(0x80));
    EXPECT_EQ(g.match(fp), g.match_swar(fp));
    EXPECT_EQ(g.match_special(), g.special_swar()) << "iter " << iter;
  }
}

TEST(Simd, MatchSpecialIsExactlyTheHighBitClearLanes) {
  // The fused sentinel query the walks use in place of
  // match(kCtrlEmpty) | match(kCtrlTombstone): sound because every
  // published fingerprint carries the 0x80 bit, so "high bit clear" can
  // only be a sentinel. Pin that equivalence on a mixed group, and the
  // edge needles 0x7F (highest non-fp byte value) / 0x80 (lowest fp).
  std::uint8_t bytes[kGroupWidth];
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    bytes[i] = (i % 4 == 0)   ? ds::kCtrlEmpty
               : (i % 4 == 1) ? ds::kCtrlTombstone
               : (i % 4 == 2) ? std::uint8_t{0x7F}
                              : std::uint8_t{0x80};
  }
  const Group g = Group::from(bytes);
  std::uint32_t expect = 0;
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    if ((bytes[i] & 0x80u) == 0) expect |= 1u << i;
  }
  EXPECT_EQ(g.match_special(), expect);
  EXPECT_EQ(g.special_swar(), expect);
  // On real sidecar contents (no 0x02..0x7F bytes ever published) the
  // fused mask equals the two-needle union it replaced.
  for (auto& b : bytes) {
    if ((b & 0x80u) == 0 && b > ds::kCtrlTombstone) b = ds::kCtrlEmpty;
  }
  const Group real = Group::from(bytes);
  EXPECT_EQ(real.match_special(),
            real.match(ds::kCtrlEmpty) | real.match(ds::kCtrlTombstone));
}

TEST(Simd, LoadSnapshotsAtomicSidecarBytes) {
  alignas(kGroupWidth) std::atomic<std::uint8_t> ctrl[kGroupWidth];
  std::uint8_t plain[kGroupWidth];
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    const auto b = static_cast<std::uint8_t>(0x80u | (i * 11 & 0x7F));
    ctrl[i].store(b, std::memory_order_relaxed);
    plain[i] = b;
  }
  const Group from_atomics = Group::load(ctrl);
  const Group from_plain = Group::from(plain);
  EXPECT_EQ(0, std::memcmp(from_atomics.bytes, from_plain.bytes, kGroupWidth));
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    EXPECT_EQ(from_atomics.match(plain[i]) & (1u << i), 1u << i);
  }
}

}  // namespace
}  // namespace crcw
