// IncrementalCc: hook/find/compact semantics, component sizes, the
// deletion fallback's partition correctness, concurrent hooking under
// OpenMP, and the acceptance trace — a 10k-event randomized insert/delete
// mix checked against a recompute-from-scratch connectivity oracle.
#include "stream/incremental_cc.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "ds/hash_common.hpp"
#include "graph/reference.hpp"
#include "util/rng.hpp"

namespace crcw::stream {
namespace {

using EdgeSet = std::set<std::pair<std::uint32_t, std::uint32_t>>;

/// Canonical partition signature: for each vertex, the minimum vertex of
/// its block. Two equal signatures = identical partitions.
template <typename FindFn>
std::vector<std::uint32_t> signature(std::uint32_t n, FindFn&& find) {
  std::vector<std::uint32_t> min_of(n, ~std::uint32_t{0});
  std::vector<std::uint32_t> root(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    root[v] = find(v);
    min_of[root[v]] = std::min(min_of[root[v]], v);
  }
  for (std::uint32_t v = 0; v < n; ++v) root[v] = min_of[root[v]];
  return root;
}

/// Oracle: recompute the partition of the CURRENT live edge set from
/// scratch with the reference DSU.
std::vector<std::uint32_t> oracle_signature(std::uint32_t n, const EdgeSet& live) {
  graph::UnionFind uf(n);
  for (const auto& [u, v] : live) uf.unite(u, v);
  return signature(n, [&](std::uint32_t v) { return uf.find(v); });
}

std::uint64_t oracle_components(std::uint32_t n, const EdgeSet& live) {
  graph::UnionFind uf(n);
  for (const auto& [u, v] : live) uf.unite(u, v);
  return uf.num_sets();
}

void rebuild_from(IncrementalCc& cc, const std::vector<std::uint32_t>& touched,
                  const EdgeSet& live, int threads) {
  cc.rebuild(
      touched,
      [&](auto&& fn) {
        for (const auto& [u, v] : live) fn(u, v);
      },
      threads);
  cc.compact(threads);
}

TEST(IncrementalCc, StartsFullyDisconnected) {
  IncrementalCc cc(8);
  EXPECT_EQ(cc.components(), 8u);
  for (std::uint32_t v = 0; v < 8; ++v) {
    EXPECT_EQ(cc.find(v), v);
    EXPECT_EQ(cc.component_size(v), 1u);
  }
  EXPECT_FALSE(cc.same_component(0, 7));
  EXPECT_TRUE(cc.same_component(3, 3));
}

TEST(IncrementalCc, LinkMergesAndCountsExactly) {
  IncrementalCc cc(10);
  EXPECT_TRUE(cc.link(0, 5));
  EXPECT_TRUE(cc.same_component(0, 5));
  EXPECT_EQ(cc.components(), 9u);
  EXPECT_FALSE(cc.link(5, 0));  // already connected: no merge
  EXPECT_EQ(cc.components(), 9u);
  EXPECT_TRUE(cc.link(5, 6));
  EXPECT_TRUE(cc.same_component(0, 6));
  EXPECT_EQ(cc.components(), 8u);
  // Roots stay minimum-id: 0 hooked 5, then 5's root (0) absorbed 6.
  EXPECT_EQ(cc.find(6), 0u);
}

TEST(IncrementalCc, CompactRefreshesPathsAndSizes) {
  IncrementalCc cc(16);
  for (std::uint32_t v = 1; v < 8; ++v) cc.link(v - 1, v);  // chain 0..7
  cc.compact(1);
  for (std::uint32_t v = 0; v < 8; ++v) {
    EXPECT_EQ(cc.find(v), 0u);
    EXPECT_EQ(cc.component_size(v), 8u);
  }
  for (std::uint32_t v = 8; v < 16; ++v) EXPECT_EQ(cc.component_size(v), 1u);
  // Parallel compact computes the same fixed point.
  cc.compact(4);
  for (std::uint32_t v = 0; v < 8; ++v) EXPECT_EQ(cc.component_size(v), 8u);
}

TEST(IncrementalCc, RebuildSplitsAComponent) {
  // Path 0-1-2-3; delete the middle edge {1,2} → {0,1} and {2,3}.
  IncrementalCc cc(4);
  EdgeSet live = {{0, 1}, {1, 2}, {2, 3}};
  for (const auto& [u, v] : live) cc.link(u, v);
  cc.compact(1);
  ASSERT_TRUE(cc.same_component(0, 3));
  ASSERT_EQ(cc.components(), 1u);

  live.erase({1, 2});
  rebuild_from(cc, {1, 2}, live, 1);
  EXPECT_TRUE(cc.same_component(0, 1));
  EXPECT_TRUE(cc.same_component(2, 3));
  EXPECT_FALSE(cc.same_component(1, 2));
  EXPECT_EQ(cc.components(), 2u);  // {0,1} and {2,3}
  EXPECT_EQ(cc.component_size(0), 2u);
  EXPECT_EQ(cc.component_size(3), 2u);
  EXPECT_EQ(cc.rebuilds(), 1u);
}

TEST(IncrementalCc, RebuildKeepsConnectedWhenRedundant) {
  // Triangle 0-1-2: deleting one edge must NOT split anything.
  IncrementalCc cc(3);
  EdgeSet live = {{0, 1}, {1, 2}, {0, 2}};
  for (const auto& [u, v] : live) cc.link(u, v);
  cc.compact(1);

  live.erase({0, 2});
  rebuild_from(cc, {0, 2}, live, 1);
  EXPECT_TRUE(cc.same_component(0, 2));
  EXPECT_EQ(cc.components(), 1u);
  EXPECT_EQ(cc.component_size(1), 3u);
}

TEST(IncrementalCc, RebuildLeavesUntouchedComponentsAlone) {
  IncrementalCc cc(8);
  EdgeSet live = {{0, 1}, {2, 3}, {4, 5}, {5, 6}};
  for (const auto& [u, v] : live) cc.link(u, v);
  cc.compact(1);
  const auto before = signature(8, [&](std::uint32_t v) { return cc.find(v); });

  live.erase({4, 5});
  rebuild_from(cc, {4, 5}, live, 1);
  // {0,1} and {2,3} untouched, 4 split off, {5,6} survives.
  const auto after = signature(8, [&](std::uint32_t v) { return cc.find(v); });
  EXPECT_EQ(after[0], before[0]);
  EXPECT_EQ(after[1], before[1]);
  EXPECT_EQ(after[2], before[2]);
  EXPECT_EQ(after[3], before[3]);
  EXPECT_FALSE(cc.same_component(4, 5));
  EXPECT_TRUE(cc.same_component(5, 6));
  EXPECT_EQ(cc.components(), 5u);
}

TEST(IncrementalCc, ParallelRebuildMatchesSerial) {
  constexpr std::uint32_t kN = 512;
  util::Xoshiro256 rng(99);
  EdgeSet live;
  IncrementalCc serial(kN), parallel(kN);
  for (int i = 0; i < 800; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.bounded(kN));
    auto v = static_cast<std::uint32_t>(rng.bounded(kN - 1));
    if (v >= u) ++v;
    live.insert(std::minmax(u, v));
    serial.link(u, v);
    parallel.link(u, v);
  }
  serial.compact(1);
  parallel.compact(4);

  // Delete a batch and rebuild both ways.
  std::vector<std::uint32_t> touched;
  auto it = live.begin();
  for (int d = 0; d < 100 && it != live.end(); ++d) {
    touched.push_back(it->first);
    touched.push_back(it->second);
    it = live.erase(it);
  }
  rebuild_from(serial, touched, live, 1);
  rebuild_from(parallel, touched, live, 4);

  EXPECT_EQ(signature(kN, [&](std::uint32_t v) { return serial.find(v); }),
            signature(kN, [&](std::uint32_t v) { return parallel.find(v); }));
  EXPECT_EQ(serial.components(), parallel.components());
  EXPECT_EQ(serial.components(), oracle_components(kN, live));
}

TEST(IncrementalCc, ConcurrentLinksMatchSerialPartition) {
  // The arbitrary-CW hook under real contention: all threads link the
  // same edge list concurrently; the resulting partition must equal the
  // serial one (hook order is arbitrary, the partition is not).
  constexpr std::uint32_t kN = 2048;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 4000; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.bounded(kN));
    auto v = static_cast<std::uint32_t>(rng.bounded(kN - 1));
    if (v >= u) ++v;
    edges.push_back({u, v});
  }
  IncrementalCc cc(kN, /*counters=*/true);
  const int threads = std::max(4, omp_get_max_threads());
  const auto n_edges = static_cast<std::ptrdiff_t>(edges.size());
#pragma omp parallel for num_threads(threads) schedule(static, 7)
  for (std::ptrdiff_t i = 0; i < n_edges; ++i) {
    cc.link(edges[static_cast<std::size_t>(i)].first,
            edges[static_cast<std::size_t>(i)].second);
  }
  cc.compact(threads);

  graph::UnionFind uf(kN);
  for (const auto& [u, v] : edges) uf.unite(u, v);
  EXPECT_EQ(signature(kN, [&](std::uint32_t v) { return cc.find(v); }),
            signature(kN, [&](std::uint32_t v) { return uf.find(v); }));
  EXPECT_EQ(cc.components(), static_cast<std::uint64_t>(uf.num_sets()));
}

TEST(IncrementalCc, RandomizedTraceAgainstScratchOracle) {
  // The acceptance trace: 10k random insert/delete events on 1k vertices,
  // replayed round-by-round exactly as the scheduler would (links for
  // fresh inserts, batched rebuild for deletions, compact per changed
  // round), checked at every checkpoint against a from-scratch oracle.
  constexpr std::uint32_t kN = 1000;
  constexpr int kEvents = 10'000;
  constexpr int kRound = 50;       // events per round
  util::Xoshiro256 rng(0xC0FFEE);

  IncrementalCc cc(kN);
  EdgeSet live;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> reservoir;

  int since_round = 0;
  std::vector<std::uint32_t> touched;
  bool changed = false;
  for (int i = 0; i < kEvents; ++i) {
    const bool erase = !reservoir.empty() && rng.uniform01() < 0.35;
    if (erase) {
      const std::uint64_t slot = rng.bounded(reservoir.size());
      const auto [u, v] = reservoir[slot];
      reservoir[slot] = reservoir.back();
      reservoir.pop_back();
      if (live.erase({u, v}) != 0) {
        touched.push_back(u);
        touched.push_back(v);
        changed = true;
      }
    } else {
      const auto u = static_cast<std::uint32_t>(rng.bounded(kN));
      auto v = static_cast<std::uint32_t>(rng.bounded(kN - 1));
      if (v >= u) ++v;
      const auto e = std::minmax(u, v);
      if (live.insert(e).second) {
        reservoir.push_back(e);
        cc.link(u, v);
        changed = true;
      }
    }

    if (++since_round == kRound || i + 1 == kEvents) {
      // Round boundary: deletion fallback, then the compaction sweep.
      if (!touched.empty()) {
        cc.rebuild(
            touched,
            [&](auto&& fn) {
              for (const auto& [a, b] : live) fn(a, b);
            },
            1);
      }
      if (changed) cc.compact(1);
      touched.clear();
      changed = false;
      since_round = 0;

      ASSERT_EQ(signature(kN, [&](std::uint32_t v) { return cc.find(v); }),
                oracle_signature(kN, live))
          << "diverged at event " << i;
      ASSERT_EQ(cc.components(), oracle_components(kN, live)) << "event " << i;
      // Sizes: spot-check a few vertices against the oracle partition.
      const auto sig = oracle_signature(kN, live);
      std::map<std::uint32_t, std::uint64_t> block_size;
      for (std::uint32_t v = 0; v < kN; ++v) ++block_size[sig[v]];
      for (std::uint32_t v = 0; v < kN; v += 97) {
        ASSERT_EQ(cc.component_size(v), block_size[sig[v]]) << "vertex " << v;
      }
    }
  }
  EXPECT_GT(cc.rebuilds(), 0u);
}

}  // namespace
}  // namespace crcw::stream
