// Adversarial stress suite for the concurrent-write core: long runs, many
// tags, mixed policies, hostile interleavings. These tests are the
// library's race-condition canaries — they must stay green under
// ThreadSanitizer and at any thread count.
#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/concurrent_write.hpp"
#include "util/rng.hpp"

namespace crcw {
namespace {

/// Payload-vs-winner agreement over thousands of rounds: the committed
/// value must always be the value offered by the thread that observed
/// success — never a blend, never a loser's offer.
TEST(Stress, PayloadAlwaysMatchesTheObservedWinner) {
  const int threads = std::max(4, omp_get_max_threads());
  constexpr int kRounds = 2000;

  ConWriteCell<std::uint64_t> cell(0);
  std::vector<std::uint64_t> winner_offer(kRounds + 1, 0);

#pragma omp parallel num_threads(threads)
  {
    const auto me = static_cast<std::uint64_t>(omp_get_thread_num()) + 1;
    for (round_t r = 1; r <= kRounds; ++r) {
      const std::uint64_t offer = me * 1'000'000 + r;
      if (cell.try_write(r, offer)) winner_offer[r] = offer;
#pragma omp barrier
      if (me == 1) {
        // One thread audits after the synchronisation point.
        if (cell.read() != winner_offer[r]) {
          ADD_FAILURE() << "round " << r << ": committed " << cell.read()
                        << " but winner offered " << winner_offer[r];
        }
      }
#pragma omp barrier
    }
  }
}

/// Interleaved tags: threads sweep a tag array in opposing directions so
/// acquisition order differs per thread; per (tag, round) exactly one win.
TEST(Stress, OpposingSweepsOverTagArray) {
  constexpr std::size_t kTags = 128;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());

  WriteArbiter<CasLtPolicy> arbiter(kTags);
  std::vector<std::atomic<std::uint32_t>> wins(kTags);

  for (int round = 1; round <= kRounds; ++round) {
    auto scope = arbiter.next_round();
    for (auto& w : wins) w.store(0);
#pragma omp parallel num_threads(threads)
    {
      const bool forward = omp_get_thread_num() % 2 == 0;
      for (std::size_t k = 0; k < kTags; ++k) {
        const std::size_t i = forward ? k : kTags - 1 - k;
        if (scope.acquire(i)) wins[i].fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (std::size_t i = 0; i < kTags; ++i) {
      ASSERT_EQ(wins[i].load(), 1u) << "tag " << i << " round " << round;
    }
  }
}

/// Round skipping: threads jump rounds forward at different paces
/// (monotone per tag, as the contract requires); at most one winner per
/// round value and the tag ends at the maximum round.
TEST(Stress, SparseMonotoneRounds) {
  const int threads = std::max(4, omp_get_max_threads());
  RoundTag tag;
  std::atomic<std::uint64_t> total_wins{0};
  constexpr round_t kMaxRound = 10'000;

#pragma omp parallel num_threads(threads)
  {
    util::Xoshiro256 rng(static_cast<std::uint64_t>(omp_get_thread_num()) + 99);
    round_t r = 0;
    while (r < kMaxRound) {
      r += 1 + rng.bounded(7);  // private pacing; global monotonicity not required
      if (r > kMaxRound) r = kMaxRound;
      if (tag.try_acquire_retry(r)) total_wins.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Wins are at most one per distinct round value and at least one (the
  // first arrival at some round certainly won).
  EXPECT_GE(total_wins.load(), 1u);
  EXPECT_LE(total_wins.load(), kMaxRound);
  EXPECT_EQ(tag.last_round(), kMaxRound);
}

/// Gatekeeper reset hammering: reset+acquire cycles from a coordinator
/// thread while workers spin — per round exactly one winner, never more.
TEST(Stress, GatekeeperResetCycles) {
  const int threads = std::max(4, omp_get_max_threads());
  Gatekeeper gate;
  constexpr int kRounds = 1000;
  std::atomic<std::uint32_t> wins{0};

  for (int r = 0; r < kRounds; ++r) {
    wins.store(0);
#pragma omp parallel num_threads(threads)
    {
      for (int a = 0; a < 16; ++a) {
        if (gate.try_acquire_skip()) wins.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ASSERT_EQ(wins.load(), 1u) << "round " << r;
    gate.reset();
  }
}

/// Slot storm: alternating protected/unprotected writes — protected rounds
/// must still never expose torn state to the post-barrier reader.
TEST(Stress, SlotsSurviveMixedProtectedRounds) {
  const int threads = std::max(4, omp_get_max_threads());
  ConWriteSlot<Stamped<16>> slot(Stamped<16>(0));
  constexpr int kRounds = 500;

  for (round_t r = 1; r <= kRounds; ++r) {
#pragma omp parallel num_threads(threads)
    {
      const auto stamp =
          static_cast<std::uint64_t>(omp_get_thread_num() + 1) * 100'000 + r;
      (void)slot.try_write(r, Stamped<16>(stamp));
    }
    ASSERT_TRUE(slot.read().consistent()) << "round " << r;
    ASSERT_EQ(slot.read().stamp() % 100'000, r % 100'000);
  }
}

/// Priority cells under rapid reset/offer cycles: the surviving key is
/// always the global minimum of that round's offers.
TEST(Stress, PriorityCellMinimumAlwaysSurvives) {
  const int threads = std::max(4, omp_get_max_threads());
  PackedPriorityCell cell;
  constexpr int kRounds = 1000;

  for (int r = 0; r < kRounds; ++r) {
    cell.reset();
    std::atomic<std::uint32_t> global_min{0xFFFFFFFFu};
#pragma omp parallel num_threads(threads)
    {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(omp_get_thread_num()) * 7919 +
                           static_cast<std::uint64_t>(r));
      for (int k = 0; k < 8; ++k) {
        const auto key = static_cast<std::uint32_t>(rng.bounded(1 << 20));
        cell.offer(key, key);
        atomic_fetch_min(global_min, key);
      }
    }
    ASSERT_EQ(cell.key(), global_min.load()) << "round " << r;
  }
}

/// Cross-policy agreement marathon: for identical contention patterns,
/// every single-winner policy commits the same NUMBER of writes (one per
/// round) even though the winners differ.
TEST(Stress, AllPoliciesAgreeOnWinCounts) {
  const int threads = std::max(4, omp_get_max_threads());
  constexpr int kRounds = 300;

  const auto run = [&](auto policy_tag) -> std::uint64_t {
    using P = decltype(policy_tag);
    typename P::tag_type tag{};
    std::atomic<std::uint64_t> wins{0};
    for (round_t r = 1; r <= kRounds; ++r) {
      if constexpr (P::kNeedsRoundReset) P::reset(tag);
#pragma omp parallel num_threads(threads)
      {
        for (int a = 0; a < 4; ++a) {
          if (P::try_acquire(tag, r)) wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    return wins.load();
  };

  EXPECT_EQ(run(CasLtPolicy{}), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(run(CasLtRetryPolicy{}), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(run(CasLtNoSkipPolicy{}), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(run(GatekeeperPolicy{}), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(run(GatekeeperSkipPolicy{}), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(run(CriticalPolicy{}), static_cast<std::uint64_t>(kRounds));
}

}  // namespace
}  // namespace crcw
