// Dart-throwing random permutation (arbitrary CW as slot allocation).
#include "algorithms/permutation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace crcw::algo {
namespace {

void expect_valid_permutation(std::uint64_t n, const std::vector<std::uint64_t>& perm) {
  ASSERT_EQ(perm.size(), n);
  std::vector<std::uint8_t> seen(n, 0);
  for (const auto x : perm) {
    ASSERT_LT(x, n);
    ASSERT_EQ(seen[x], 0) << "duplicate element " << x;
    seen[x] = 1;
  }
}

TEST(RandomPermutation, EmptyAndSingleton) {
  EXPECT_TRUE(random_permutation(0).perm.empty());
  const auto r = random_permutation(1);
  EXPECT_EQ(r.perm, (std::vector<std::uint64_t>{0}));
}

TEST(RandomPermutation, ValidAcrossSizesSeedsThreads) {
  for (const std::uint64_t n : {2ull, 3ull, 17ull, 256ull, 5000ull}) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      for (const int threads : {1, 8}) {
        const auto r =
            random_permutation(n, {.threads = threads, .seed = seed});
        expect_valid_permutation(n, r.perm);
        ASSERT_LE(r.rounds, 60u) << "dart throwing must land in O(log n) rounds";
      }
    }
  }
}

TEST(RandomPermutation, DifferentSeedsDifferentOrders) {
  const auto a = random_permutation(100, {.seed = 1});
  const auto b = random_permutation(100, {.seed = 2});
  EXPECT_NE(a.perm, b.perm);
}

TEST(RandomPermutation, NotTheIdentityForLargeN) {
  const auto r = random_permutation(1000, {.seed = 5});
  std::vector<std::uint64_t> identity(1000);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(r.perm, identity);
}

TEST(RandomPermutation, CoarseUniformity) {
  // Element 0's output position should spread over the whole range: across
  // 200 seeds, its mean position is near n/2 and it visits both halves.
  constexpr std::uint64_t n = 64;
  double mean_pos = 0.0;
  int low_half = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto r = random_permutation(n, {.seed = seed});
    const auto it = std::find(r.perm.begin(), r.perm.end(), 0ull);
    const auto pos = static_cast<double>(it - r.perm.begin());
    mean_pos += pos;
    low_half += pos < n / 2 ? 1 : 0;
  }
  mean_pos /= 200.0;
  EXPECT_GT(mean_pos, n * 0.35);
  EXPECT_LT(mean_pos, n * 0.65);
  EXPECT_GT(low_half, 60);
  EXPECT_LT(low_half, 140);
}

TEST(RandomPermutation, HigherExpansionFewerRounds) {
  const auto tight = random_permutation(2000, {.seed = 3, .expansion = 2});
  const auto loose = random_permutation(2000, {.seed = 3, .expansion = 8});
  expect_valid_permutation(2000, tight.perm);
  expect_valid_permutation(2000, loose.perm);
  EXPECT_LE(loose.rounds, tight.rounds);
}

TEST(RandomPermutation, RejectsTinyExpansion) {
  EXPECT_THROW((void)random_permutation(4, {.expansion = 1}), std::invalid_argument);
}

}  // namespace
}  // namespace crcw::algo
