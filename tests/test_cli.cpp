// CLI parser used by examples and figure harnesses.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace crcw::util {
namespace {

Cli parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ProgramName) {
  const Cli cli = parse({});
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, KeyValueSpaceForm) {
  const Cli cli = parse({"--size", "100"});
  EXPECT_TRUE(cli.has("size"));
  EXPECT_EQ(cli.get_uint("size", 0), 100u);
}

TEST(Cli, KeyValueEqualsForm) {
  const Cli cli = parse({"--size=2048"});
  EXPECT_EQ(cli.get_uint("size", 0), 2048u);
}

TEST(Cli, BareFlag) {
  const Cli cli = parse({"--verbose"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FlagFollowedByOption) {
  const Cli cli = parse({"--quick", "--size", "5"});
  EXPECT_TRUE(cli.get_bool("quick", false));
  EXPECT_EQ(cli.get_uint("size", 0), 5u);
}

TEST(Cli, Positional) {
  const Cli cli = parse({"input.txt", "--size", "5", "output.txt"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "output.txt");
}

TEST(Cli, Fallbacks) {
  const Cli cli = parse({});
  EXPECT_EQ(cli.get_uint("missing", 7), 7u);
  EXPECT_EQ(cli.get_int("missing", -7), -7);
  EXPECT_EQ(cli.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(cli.get_string("missing", "x"), "x");
  EXPECT_FALSE(cli.get_bool("missing", false));
}

TEST(Cli, NegativeIntValue) {
  const Cli cli = parse({"--offset", "-5"});
  EXPECT_EQ(cli.get_int("offset", 0), -5);
}

TEST(Cli, DoubleValue) {
  const Cli cli = parse({"--ratio=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.25);
}

TEST(Cli, BoolSpellings) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=off"}).get_bool("x", true));
}

TEST(Cli, UintList) {
  const Cli cli = parse({"--sizes", "1,2,30"});
  const auto xs = cli.get_uint_list("sizes", {});
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_EQ(xs[0], 1u);
  EXPECT_EQ(xs[2], 30u);
}

TEST(Cli, UintListFallback) {
  const Cli cli = parse({});
  const auto xs = cli.get_uint_list("sizes", {4, 5});
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[1], 5u);
}

TEST(Cli, MalformedValuesThrow) {
  EXPECT_THROW(parse({"--n=abc"}).get_uint("n", 0), std::invalid_argument);
  EXPECT_THROW(parse({"--n=1.5"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(parse({"--n=xyz"}).get_double("n", 0), std::invalid_argument);
  EXPECT_THROW(parse({"--n=maybe"}).get_bool("n", false), std::invalid_argument);
  EXPECT_THROW(parse({"--n=1,,2"}).get_uint_list("n", {}), std::invalid_argument);
}

}  // namespace
}  // namespace crcw::util
