// WriteArbiter — per-target tag arrays with round management.
#include "core/arbiter.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <vector>

namespace crcw {
namespace {

TEST(WriteArbiter, SizeAndInitialRound) {
  WriteArbiter<CasLtPolicy> arb(10);
  EXPECT_EQ(arb.size(), 10u);
  EXPECT_EQ(arb.round(), kInitialRound);
}

TEST(WriteArbiter, NextRoundAdvances) {
  WriteArbiter<CasLtPolicy> arb(4);
  EXPECT_EQ(arb.next_round().round(), 1u);
  EXPECT_EQ(arb.next_round().round(), 2u);
  EXPECT_EQ(arb.round(), 2u);
}

TEST(WriteArbiter, OneWinnerPerTargetPerRound) {
  WriteArbiter<CasLtPolicy> arb(3);
  {
    auto scope = arb.next_round();
    EXPECT_TRUE(scope.acquire(0));
    EXPECT_FALSE(scope.acquire(0));
    EXPECT_TRUE(scope.acquire(1));  // distinct targets are independent
    EXPECT_TRUE(scope.acquire(2));
  }
  auto scope = arb.next_round();
  EXPECT_TRUE(scope.acquire(0));  // re-armed without any reset
}

TEST(WriteArbiter, GatekeeperPolicyModeResets) {
  WriteArbiter<GatekeeperPolicy> arb(5);
  {
    auto scope = arb.next_round(ResetMode::kPolicy);
    for (std::size_t i = 0; i < 5; ++i) ASSERT_TRUE(scope.acquire(i));
    for (std::size_t i = 0; i < 5; ++i) ASSERT_FALSE(scope.acquire(i));
  }
  // kPolicy must perform the gatekeeper re-initialisation sweep.
  auto scope = arb.next_round(ResetMode::kPolicy);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(scope.acquire(i));
}

TEST(WriteArbiter, CallerModeDefersTheSweep) {
  WriteArbiter<GatekeeperPolicy> arb(5);
  {
    auto scope = arb.next_round();
    for (std::size_t i = 0; i < 5; ++i) ASSERT_TRUE(scope.acquire(i));
  }
  {
    // Without the sweep the gatekeeper tags stay taken…
    auto scope = arb.next_round(ResetMode::kNone);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_FALSE(scope.acquire(i));
  }
  // …until the caller runs it (work-shared form).
  arb.reset_tags_parallel(2);
  auto scope = arb.next_round(ResetMode::kCaller);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(scope.acquire(i));
}

TEST(WriteArbiter, ResetModeIrrelevantWithoutPolicySweep) {
  // CAS-LT never resets; all three modes are pure round increments.
  WriteArbiter<CasLtPolicy> arb(2);
  EXPECT_EQ(arb.next_round(ResetMode::kPolicy).round(), 1u);
  EXPECT_EQ(arb.next_round(ResetMode::kCaller).round(), 2u);
  EXPECT_EQ(arb.next_round(ResetMode::kNone).round(), 3u);
  arb.reset_tags_parallel();  // no-op, must compile and not perturb rounds
  EXPECT_EQ(arb.round(), 3u);
}

TEST(WriteArbiter, ExplicitRoundAcquireAt) {
  WriteArbiter<CasLtPolicy> arb(2);
  // Loop iteration used as the round id (§5: "round could be substituted
  // by the loop iteration").
  for (round_t l = 1; l <= 10; ++l) {
    EXPECT_TRUE(arb.acquire_at(0, l));
    EXPECT_FALSE(arb.acquire_at(0, l));
  }
}

TEST(WriteArbiter, RoundScopePinsTheRoundId) {
  WriteArbiter<CasLtPolicy> arb(1);
  auto scope = arb.next_round();
  const round_t r = scope.round();
  EXPECT_EQ(arb.round(), r);
  EXPECT_TRUE(scope.acquire(0));
  EXPECT_FALSE(scope.acquire(0));
}

TEST(WriteArbiter, ResetAllRestoresFreshState) {
  WriteArbiter<CasLtPolicy> arb(2);
  {
    auto scope = arb.next_round();
    ASSERT_TRUE(scope.acquire(0));
  }
  arb.reset_all();
  EXPECT_EQ(arb.round(), kInitialRound);
  auto scope = arb.next_round();
  EXPECT_TRUE(scope.acquire(0));
}

TEST(WriteArbiter, PaddedLayoutSpacing) {
  WriteArbiter<CasLtPolicy, TagLayout::kPadded> arb(4);
  auto scope = arb.next_round();
  const auto a = reinterpret_cast<std::uintptr_t>(&arb.tag(0));
  const auto b = reinterpret_cast<std::uintptr_t>(&arb.tag(1));
  EXPECT_GE(b - a, util::kCacheLineSize);
  EXPECT_TRUE(scope.acquire(0));
  EXPECT_FALSE(scope.acquire(0));
}

TEST(WriteArbiter, PackedLayoutIsDense) {
  WriteArbiter<CasLtPolicy, TagLayout::kPacked> arb(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&arb.tag(0));
  const auto b = reinterpret_cast<std::uintptr_t>(&arb.tag(1));
  EXPECT_EQ(b - a, sizeof(RoundTag));
}

TEST(WriteArbiter, ConfigEnablesTracking) {
  ArbiterConfig cfg;
  cfg.tracking = TouchTracking::kEnabled;
  cfg.lanes = 2;
  WriteArbiter<GatekeeperPolicy> tracked(4, cfg);
  EXPECT_TRUE(tracked.tracking());
  EXPECT_EQ(tracked.touched_count(), 0u);

  // Tracking is meaningless for policies without a per-round reset; the
  // arbiter must not pay for lists CAS-LT would never drain.
  WriteArbiter<CasLtPolicy> caslt(4, cfg);
  EXPECT_FALSE(caslt.tracking());

  // Default config = paper-faithful behaviour: no tracking.
  WriteArbiter<GatekeeperPolicy> plain(4, ArbiterConfig{});
  EXPECT_FALSE(plain.tracking());
}

TEST(WriteArbiter, TouchedListsRecordWinnersOnly) {
  ArbiterConfig cfg;
  cfg.tracking = TouchTracking::kEnabled;
  cfg.lanes = 1;
  WriteArbiter<GatekeeperPolicy> arb(8, cfg);
  {
    auto scope = arb.next_round(ResetMode::kNone);
    ASSERT_TRUE(scope.acquire(3));
    ASSERT_FALSE(scope.acquire(3));  // loser: no touched entry
    ASSERT_TRUE(scope.acquire(5, /*lane=*/0));  // explicit-lane overload
  }
  EXPECT_EQ(arb.touched_count(), 2u);
  arb.reset_tags_sparse();
  EXPECT_EQ(arb.touched_count(), 0u);
  auto scope = arb.next_round(ResetMode::kNone);
  EXPECT_TRUE(scope.acquire(3));  // sparse reset re-armed the touched tag
}

TEST(WriteArbiter, PolicySparseModeSweepsSerially) {
  ArbiterConfig cfg;
  cfg.tracking = TouchTracking::kEnabled;
  cfg.lanes = 1;
  WriteArbiter<GatekeeperPolicy> arb(16, cfg);
  {
    auto scope = arb.next_round(ResetMode::kNone);
    for (std::size_t i = 0; i < 16; i += 4) ASSERT_TRUE(scope.acquire(i));
  }
  // kPolicySparse resets the touched tags at the next step boundary — no
  // OpenMP involved, so the raw-thread stress tier can use this mode too.
  auto scope = arb.next_round(ResetMode::kPolicySparse);
  for (std::size_t i = 0; i < 16; i += 4) EXPECT_TRUE(scope.acquire(i));
  EXPECT_EQ(arb.touched_count(), 4u);
}

TEST(WriteArbiter, FullSweepsClearStaleTouchedLists) {
  ArbiterConfig cfg;
  cfg.tracking = TouchTracking::kEnabled;
  cfg.lanes = 1;
  WriteArbiter<GatekeeperPolicy> arb(8, cfg);
  {
    auto scope = arb.next_round(ResetMode::kNone);
    ASSERT_TRUE(scope.acquire(1));
  }
  arb.reset_tags_parallel();  // full sweep must also drain the lists…
  EXPECT_EQ(arb.touched_count(), 0u);
  {
    auto scope = arb.next_round(ResetMode::kPolicy);  // …and so must kPolicy
    ASSERT_TRUE(scope.acquire(2));
  }
  (void)arb.next_round(ResetMode::kPolicy);
  EXPECT_EQ(arb.touched_count(), 0u);
  arb.reset_all();
  EXPECT_EQ(arb.touched_count(), 0u);
}

TEST(WriteArbiterStress, PerTargetExactlyOneWinner) {
  constexpr std::size_t kTargets = 64;
  WriteArbiter<CasLtPolicy> arb(kTargets);
  std::vector<std::atomic<int>> winners(kTargets);

  for (int round = 0; round < 20; ++round) {
    for (auto& w : winners) w.store(0);
    auto scope = arb.next_round();
#pragma omp parallel num_threads(8)
    {
      for (std::size_t t = 0; t < kTargets; ++t) {
        if (scope.acquire(t)) winners[t].fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (std::size_t t = 0; t < kTargets; ++t) ASSERT_EQ(winners[t].load(), 1) << t;
  }
}

TEST(WriteArbiterStress, CriticalPolicyUnderContention) {
  WriteArbiter<CriticalPolicy> arb(8);
  auto scope = arb.next_round();
  std::atomic<int> winners{0};
#pragma omp parallel num_threads(8)
  {
    for (std::size_t t = 0; t < arb.size(); ++t) {
      if (scope.acquire(t)) winners.fetch_add(1, std::memory_order_relaxed);
    }
  }
  EXPECT_EQ(winners.load(), 8);
}

}  // namespace
}  // namespace crcw
