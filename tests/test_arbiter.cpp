// WriteArbiter — per-target tag arrays with round management.
#include "core/arbiter.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <vector>

namespace crcw {
namespace {

TEST(WriteArbiter, SizeAndInitialRound) {
  WriteArbiter<CasLtPolicy> arb(10);
  EXPECT_EQ(arb.size(), 10u);
  EXPECT_EQ(arb.round(), kInitialRound);
}

TEST(WriteArbiter, BeginRoundAdvances) {
  WriteArbiter<CasLtPolicy> arb(4);
  EXPECT_EQ(arb.begin_round(), 1u);
  EXPECT_EQ(arb.begin_round(), 2u);
  EXPECT_EQ(arb.round(), 2u);
}

TEST(WriteArbiter, OneWinnerPerTargetPerRound) {
  WriteArbiter<CasLtPolicy> arb(3);
  arb.begin_round();
  EXPECT_TRUE(arb.try_acquire(0));
  EXPECT_FALSE(arb.try_acquire(0));
  EXPECT_TRUE(arb.try_acquire(1));  // distinct targets are independent
  EXPECT_TRUE(arb.try_acquire(2));

  arb.begin_round();
  EXPECT_TRUE(arb.try_acquire(0));  // re-armed without any reset
}

TEST(WriteArbiter, GatekeeperBeginRoundResets) {
  WriteArbiter<GatekeeperPolicy> arb(5);
  arb.begin_round();
  for (std::size_t i = 0; i < 5; ++i) ASSERT_TRUE(arb.try_acquire(i));
  for (std::size_t i = 0; i < 5; ++i) ASSERT_FALSE(arb.try_acquire(i));
  // begin_round must perform the gatekeeper re-initialisation sweep.
  arb.begin_round();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(arb.try_acquire(i));
}

TEST(WriteArbiter, ExplicitRoundOverload) {
  WriteArbiter<CasLtPolicy> arb(2);
  // Loop iteration used as the round id (§5: "round could be substituted
  // by the loop iteration").
  for (round_t l = 1; l <= 10; ++l) {
    EXPECT_TRUE(arb.try_acquire(0, l));
    EXPECT_FALSE(arb.try_acquire(0, l));
  }
}

TEST(WriteArbiter, ResetAllRestoresFreshState) {
  WriteArbiter<CasLtPolicy> arb(2);
  arb.begin_round();
  ASSERT_TRUE(arb.try_acquire(0));
  arb.reset_all();
  EXPECT_EQ(arb.round(), kInitialRound);
  arb.begin_round();
  EXPECT_TRUE(arb.try_acquire(0));
}

TEST(WriteArbiter, PaddedLayoutSpacing) {
  WriteArbiter<CasLtPolicy, TagLayout::kPadded> arb(4);
  arb.begin_round();
  const auto a = reinterpret_cast<std::uintptr_t>(&arb.tag(0));
  const auto b = reinterpret_cast<std::uintptr_t>(&arb.tag(1));
  EXPECT_GE(b - a, util::kCacheLineSize);
  EXPECT_TRUE(arb.try_acquire(0));
  EXPECT_FALSE(arb.try_acquire(0));
}

TEST(WriteArbiter, PackedLayoutIsDense) {
  WriteArbiter<CasLtPolicy, TagLayout::kPacked> arb(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&arb.tag(0));
  const auto b = reinterpret_cast<std::uintptr_t>(&arb.tag(1));
  EXPECT_EQ(b - a, sizeof(RoundTag));
}

TEST(WriteArbiterStress, PerTargetExactlyOneWinner) {
  constexpr std::size_t kTargets = 64;
  WriteArbiter<CasLtPolicy> arb(kTargets);
  std::vector<std::atomic<int>> winners(kTargets);

  for (int round = 0; round < 20; ++round) {
    for (auto& w : winners) w.store(0);
    arb.begin_round();
#pragma omp parallel num_threads(8)
    {
      for (std::size_t t = 0; t < kTargets; ++t) {
        if (arb.try_acquire(t)) winners[t].fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (std::size_t t = 0; t < kTargets; ++t) ASSERT_EQ(winners[t].load(), 1) << t;
  }
}

TEST(WriteArbiterStress, CriticalPolicyUnderContention) {
  WriteArbiter<CriticalPolicy> arb(8);
  arb.begin_round();
  std::atomic<int> winners{0};
#pragma omp parallel num_threads(8)
  {
    for (std::size_t t = 0; t < arb.size(); ++t) {
      if (arb.try_acquire(t)) winners.fetch_add(1, std::memory_order_relaxed);
    }
  }
  EXPECT_EQ(winners.load(), 8);
}

}  // namespace
}  // namespace crcw
