// Randomized model-equivalence sweeps: for a battery of random inputs, the
// OpenMP kernels, the PRAM model simulator, and the sequential references
// must all tell the same story. This file is the library's broadest
// correctness net — each TEST_P case covers one (algorithm, input-shape)
// pair across seeds.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algorithms/cc.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/max.hpp"
#include "algorithms/or_any.hpp"
#include "algorithms/scan.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "sim/programs.hpp"
#include "util/rng.hpp"

namespace crcw {
namespace {

using graph::Csr;

Csr shape_graph(const std::string& shape, std::uint64_t seed) {
  using namespace graph;
  if (shape == "sparse") return random_graph(80, 100, seed);
  if (shape == "dense") return random_graph(40, 400, seed);
  if (shape == "tree") return build_csr(60, random_tree(60, seed));
  if (shape == "clusters") return build_csr(60, planted_components(3, 20, 8, seed));
  if (shape == "rmat") {
    return build_csr(64, rmat(64, 200, seed), {.remove_self_loops = true});
  }
  throw std::logic_error("unknown shape " + shape);
}

class GraphEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(GraphEquivalenceTest, BfsKernelSimulatorAndReferenceAgree) {
  const auto& [shape, seed] = GetParam();
  const Csr g = shape_graph(shape, seed);
  const auto reference = graph::bfs_levels(g, 0);

  const auto kernel = algo::bfs_caslt(g, 0, {.threads = 4});
  sim::Simulator model(sim::AccessMode::kArbitrary, 1, seed);
  const auto modeled = sim::programs::bfs(model, g.offsets(), g.targets(), 0);

  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(kernel.level[v], reference[v]) << shape << " kernel v=" << v;
    ASSERT_EQ(modeled.level[v], reference[v]) << shape << " model v=" << v;
  }
}

TEST_P(GraphEquivalenceTest, CcKernelSimulatorAndReferenceAgree) {
  const auto& [shape, seed] = GetParam();
  const Csr g = shape_graph(shape, seed);
  const auto reference = graph::connected_components(g);

  const auto kernel = algo::cc_caslt(g, {.threads = 4});
  ASSERT_EQ(graph::canonicalize_labels(kernel.label), reference) << shape;

  sim::Simulator model(sim::AccessMode::kArbitrary, 1, seed);
  const auto modeled64 = sim::programs::connected_components(model, g.offsets(), g.targets());
  std::vector<graph::vertex_t> modeled(modeled64.begin(), modeled64.end());
  ASSERT_EQ(graph::canonicalize_labels(modeled), reference) << shape;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesBySeeds, GraphEquivalenceTest,
    ::testing::Combine(::testing::Values("sparse", "dense", "tree", "clusters", "rmat"),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const auto& pinfo) {
      return std::get<0>(pinfo.param) + "_s" + std::to_string(std::get<1>(pinfo.param));
    });

class ScalarEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarEquivalenceTest, MaxAgreesEverywhere) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed);
  const std::uint64_t n = 10 + rng.bounded(60);
  std::vector<std::uint32_t> list(n);
  for (auto& x : list) x = static_cast<std::uint32_t>(rng.bounded(500));

  const std::uint64_t reference = algo::max_index_seq(list);
  EXPECT_EQ(algo::max_index_caslt(list, {.threads = 4}), reference);
  EXPECT_EQ(algo::max_index_doubly_log(list, {.threads = 4}), reference);

  std::vector<sim::word_t> model_list(list.begin(), list.end());
  sim::Simulator a(sim::AccessMode::kCommon, 1, seed);
  EXPECT_EQ(sim::programs::max_constant_time(a, model_list), reference);
  sim::Simulator b(sim::AccessMode::kCommon, 1, seed);
  EXPECT_EQ(sim::programs::max_doubly_log(b, model_list), reference);
}

TEST_P(ScalarEquivalenceTest, ScanAgreesWithModel) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed * 7 + 1);
  const std::uint64_t n = 1 + rng.bounded(100);
  std::vector<std::uint64_t> xs(n);
  for (auto& x : xs) x = rng.bounded(100);

  const auto kernel = algo::exclusive_scan(xs, {.threads = 4});
  std::vector<sim::word_t> model_xs(xs.begin(), xs.end());
  sim::Simulator model(sim::AccessMode::kEREW, 1);
  const auto modeled = sim::programs::exclusive_scan(model, model_xs);
  ASSERT_EQ(kernel.size(), modeled.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(kernel[i], static_cast<std::uint64_t>(modeled[i])) << i;
  }
}

TEST_P(ScalarEquivalenceTest, OrAgreesEverywhere) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed * 13 + 5);
  const std::uint64_t n = 1 + rng.bounded(200);
  std::vector<std::uint8_t> bits(n, 0);
  if (rng.bounded(2) == 0) bits[rng.bounded(n)] = 1;

  const bool reference = algo::parallel_or_naive(bits);
  EXPECT_EQ(algo::parallel_or_caslt(bits, {.threads = 4}), reference);
  EXPECT_EQ(algo::parallel_or_crew(bits, {.threads = 4}), reference);

  std::vector<sim::word_t> model_bits(bits.begin(), bits.end());
  sim::Simulator model(sim::AccessMode::kCommon, 1);
  EXPECT_EQ(sim::programs::parallel_or(model, model_bits), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalarEquivalenceTest,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{10}),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace crcw
