// BFS (Fig 3) — levels must equal sequential BFS for every method; for
// single-winner methods the (parent, sel_edge) pair must additionally be a
// consistent discovery record (the multi-word CW guarantee naive lacks).
#include "algorithms/bfs.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algorithms/dispatch.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"

namespace crcw::algo {
namespace {

using graph::Csr;
using graph::kNoVertex;
using graph::vertex_t;

/// Checks the whole BfsResult for a single-winner method: valid BFS tree
/// AND the recorded sel_edge actually is the CSR slot (parent → v).
void expect_consistent_discovery(const Csr& g, vertex_t source, const BfsResult& r) {
  ASSERT_TRUE(validate_bfs_tree(g, source, r.level, r.parent));
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (v == source || r.level[v] == -1) continue;
    const vertex_t p = r.parent[v];
    const graph::edge_t j = r.sel_edge[v];
    ASSERT_GE(j, g.offset(p)) << "sel_edge outside parent's adjacency";
    ASSERT_LT(j, g.offset(p) + g.degree(p));
    ASSERT_EQ(g.targets()[j], v) << "sel_edge does not point at v — mixed multi-word write";
  }
}

// ---------------------------------------------------------------------------
// Property sweep: method × graph family × threads.

struct GraphCase {
  std::string name;
  Csr graph;
  vertex_t source;
};

GraphCase make_case(const std::string& name) {
  using namespace graph;
  if (name == "path64") return {name, build_csr(64, path(64)), 0};
  if (name == "star256") return {name, build_csr(256, star(256)), 5};
  if (name == "grid8x8") return {name, build_csr(64, grid2d(8, 8)), 0};
  if (name == "gnm2k") return {name, random_graph(500, 2000, 11), 3};
  if (name == "rmat") return {name, build_csr(512, rmat(512, 2048, 7), {.remove_self_loops = true}), 0};
  if (name == "disconnected")
    return {name, build_csr(100, planted_components(4, 25, 10, 5)), 0};
  if (name == "singleton") return {name, build_csr(1, {}), 0};
  throw std::logic_error("unknown case " + name);
}

using BfsParam = std::tuple<std::string, std::string, int>;

class BfsMethodTest : public ::testing::TestWithParam<BfsParam> {};

TEST_P(BfsMethodTest, LevelsMatchSequentialBfs) {
  const auto& [method, gcase, threads] = GetParam();
  const GraphCase c = make_case(gcase);
  const BfsResult r = run_bfs(method, c.graph, c.source, {.threads = threads});
  const auto expected = graph::bfs_levels(c.graph, c.source);
  ASSERT_EQ(r.level.size(), expected.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(r.level[v], expected[v]) << method << "/" << gcase << " vertex " << v;
  }
}

TEST_P(BfsMethodTest, SingleWinnerMethodsProduceConsistentTrees) {
  const auto& [method, gcase, threads] = GetParam();
  if (method == "naive") {
    GTEST_SKIP() << "naive gives no multi-word consistency guarantee (§4)";
  }
  const GraphCase c = make_case(gcase);
  const BfsResult r = run_bfs(method, c.graph, c.source, {.threads = threads});
  expect_consistent_discovery(c.graph, c.source, r);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByGraphsByThreads, BfsMethodTest,
    ::testing::Combine(
        ::testing::Values("naive", "gatekeeper", "gatekeeper-skip", "caslt", "critical"),
        ::testing::Values("path64", "star256", "grid8x8", "gnm2k", "rmat", "disconnected",
                          "singleton"),
        ::testing::Values(1, 8)),
    [](const ::testing::TestParamInfo<BfsParam>& pinfo) {
      auto name = std::get<0>(pinfo.param) + "_" + std::get<1>(pinfo.param) + "_t" +
                  std::to_string(std::get<2>(pinfo.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------

TEST(Bfs, RoundsEqualEccentricityPlusOne) {
  const auto g = graph::build_csr(32, graph::path(32));
  const BfsResult r = bfs_caslt(g, 0);
  // 31 productive levels + the final empty round.
  EXPECT_EQ(r.rounds, 32u);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const auto g = graph::build_csr(4, graph::path(4));
  EXPECT_THROW((void)bfs_caslt(g, 99), std::invalid_argument);
}

TEST(Bfs, SourceIsItsOwnParent) {
  const auto g = graph::random_graph(50, 100, 1);
  const BfsResult r = bfs_caslt(g, 7);
  EXPECT_EQ(r.parent[7], 7u);
  EXPECT_EQ(r.level[7], 0);
}

TEST(Bfs, SelfLoopsAndParallelEdgesAreHarmless) {
  graph::EdgeList edges = {{0, 0}, {0, 1}, {0, 1}, {1, 2}, {2, 2}};
  const auto g = graph::build_csr(3, edges);
  const BfsResult r = bfs_caslt(g, 0);
  EXPECT_EQ(r.level[1], 1);
  EXPECT_EQ(r.level[2], 2);
  expect_consistent_discovery(g, 0, r);
}

TEST(Bfs, StarMaximisesContentionButStaysCorrect) {
  // From a star leaf: round 2 has N-2 edges all discovering... nothing
  // (centre already visited); from the centre: N-1 independent discoveries;
  // from a leaf the centre is the single hot target. All shapes must hold.
  const auto g = graph::build_csr(1000, graph::star(1000));
  for (const vertex_t src : {vertex_t{0}, vertex_t{1}}) {
    const BfsResult r = bfs_gatekeeper(g, src);
    const auto expected = graph::bfs_levels(g, src);
    for (std::size_t v = 0; v < 1000; ++v) ASSERT_EQ(r.level[v], expected[v]);
  }
}

TEST(Bfs, AllMethodsAgreeOnReachableSetSize) {
  const auto g = graph::random_graph(300, 500, 21);
  std::int64_t reached = -1;
  for (const auto& method : bfs_methods()) {
    const BfsResult r = run_bfs(method, g, 0);
    std::int64_t count = 0;
    for (const auto l : r.level) count += (l != -1) ? 1 : 0;
    if (reached == -1) reached = count;
    EXPECT_EQ(count, reached) << method;
  }
}

TEST(BfsFrontier, MatchesLevelSynchronousOnAllCases) {
  for (const char* name :
       {"path64", "star256", "grid8x8", "gnm2k", "rmat", "disconnected", "singleton"}) {
    const GraphCase c = make_case(name);
    const BfsResult expected = bfs_caslt(c.graph, c.source);
    for (const int threads : {1, 8}) {
      const BfsResult got = bfs_frontier(c.graph, c.source, {.threads = threads});
      ASSERT_EQ(got.level, expected.level) << name << " t=" << threads;
      ASSERT_EQ(got.rounds, expected.rounds) << name;
      expect_consistent_discovery(c.graph, c.source, got);
    }
  }
}

TEST(BfsDirectionOptimizing, MatchesLevelSynchronousOnAllCases) {
  for (const char* name :
       {"path64", "star256", "grid8x8", "gnm2k", "rmat", "disconnected", "singleton"}) {
    const GraphCase c = make_case(name);
    const BfsResult expected = bfs_caslt(c.graph, c.source);
    for (const int threads : {1, 8}) {
      const BfsResult got = bfs_direction_optimizing(c.graph, c.source, {.threads = threads});
      ASSERT_EQ(got.level, expected.level) << name << " t=" << threads;
      expect_consistent_discovery(c.graph, c.source, got);
    }
  }
}

TEST(BfsDirectionOptimizing, DenseGraphActuallySwitchesAndStaysCorrect) {
  // A complete graph forces the bottom-up path from round one.
  const auto g = graph::build_csr(200, graph::complete(200));
  const BfsResult r = bfs_direction_optimizing(g, 0);
  for (std::size_t v = 1; v < 200; ++v) ASSERT_EQ(r.level[v], 1);
  expect_consistent_discovery(g, 0, r);
}

TEST(BfsFrontier, SlotAllocationLosesNoVertex) {
  // Every discovered vertex must land in exactly one frontier: reachable
  // count via frontier BFS equals the sequential one.
  const auto g = graph::random_graph(400, 1200, 9);
  const auto expected = graph::bfs_levels(g, 0);
  const BfsResult r = bfs_frontier(g, 0, {.threads = 8});
  for (std::size_t v = 0; v < expected.size(); ++v) ASSERT_EQ(r.level[v], expected[v]);
}

TEST(Bfs, GatekeeperVariantsNeedTheirReset) {
  // Regression guard: on a 3-level path, a gatekeeper kernel without the
  // per-level reset would stall after level 1. If the kernel terminates
  // with correct levels, the reset sweep ran.
  const auto g = graph::build_csr(10, graph::path(10));
  const BfsResult r = bfs_gatekeeper(g, 0);
  EXPECT_EQ(r.level[9], 9);
  const BfsResult r2 = bfs_gatekeeper_skip(g, 0);
  EXPECT_EQ(r2.level[9], 9);
}

}  // namespace
}  // namespace crcw::algo
