// Raw-thread schedules for src/serve (label: serve-stress). Everything
// here runs with ServeConfig::batch.exec_threads == 1: the pump executes rounds
// strictly serially, no OpenMP region anywhere, so TSan checks the
// claimed synchronisation chain end to end — client enqueue (lane-lock
// release) → pump drain (lane-lock acquire) → round execution under the
// pump flag → OpFuture::publish (release) → client ready() (acquire).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "serve/serve_session.hpp"
#include "stress_common.hpp"

namespace crcw::serve {
namespace {

[[nodiscard]] ServeConfig serial_config() {
  ServeConfig cfg;
  cfg.batch.exec_threads = 1;  // no OpenMP under TSan
  cfg.batch.max_batch = 64;
  cfg.batch.max_wait_us = 100;
  return cfg;
}

// Dedicated pump thread vs. submitting clients: the basic service shape.
// Each client round-trips distinct keys; the audit checks every committed
// value is exactly the single value ever offered for its key.
TEST(StressServe, DedicatedPumpDistinctKeys) {
  const int threads = stress::thread_count();
  const int clients = threads - 1;
  const std::uint64_t per_client =
      static_cast<std::uint64_t>(stress::scaled(400, 60));
  ServeSession session(serial_config());
  std::atomic<std::uint64_t> completed{0};
  const std::uint64_t expected = static_cast<std::uint64_t>(clients) * per_client;

  stress::run_threads(threads, [&](int tid) {
    if (tid == 0) {
      while (completed.load(std::memory_order_acquire) < expected) {
        if (!session.poll()) session.flush();
      }
      return;
    }
    const auto client = static_cast<std::uint64_t>(tid);  // 1-based
    OpFuture f;
    for (std::uint64_t i = 0; i < per_client; ++i) {
      const std::uint64_t key = client * per_client + i + 1;
      session.submit(Op::upsert(key, key * 10), f);
      const Result& r = session.wait(f);
      if (!r.won || r.value != key * 10) {
        ADD_FAILURE() << "client " << client << " op " << i << " saw value "
                      << r.value;
      }
      completed.fetch_add(1, std::memory_order_release);
    }
  });

  EXPECT_EQ(session.backend().ops_served(), expected);
  for (std::uint64_t c = 1; c <= static_cast<std::uint64_t>(clients); ++c) {
    for (std::uint64_t i = 0; i < per_client; ++i) {
      const std::uint64_t key = c * per_client + i + 1;
      ASSERT_EQ(session.committed(key), key * 10) << "key " << key;
    }
  }
}

// All threads contend on ONE key through the self-pumping call() path —
// the pump lock race and the same-key round arbitration at once. The
// loser guarantee pins every observed value to the offer format; the
// post-join audit pins the final committed value to some client's last
// write.
TEST(StressServe, CallersContendOnOneKey) {
  const int threads = stress::thread_count();
  const std::uint64_t iterations =
      static_cast<std::uint64_t>(stress::scaled(300, 50));
  ServeSession session(serial_config());
  constexpr std::uint64_t kKey = 7;

  stress::run_threads(threads, [&](int tid) {
    const auto client = static_cast<std::uint64_t>(tid);
    for (std::uint64_t i = 0; i < iterations; ++i) {
      const Result r = session.call(Op::upsert(kKey, client * 1'000'000 + i));
      // Winner or loser, the observed value is some client's live offer.
      if (r.value / 1'000'000 >= static_cast<std::uint64_t>(threads) ||
          r.value % 1'000'000 >= iterations) {
        ADD_FAILURE() << "torn/stale committed value " << r.value;
      }
    }
  });

  // The final committed value is the last round's winner — any client's
  // live offer (not necessarily a final-iteration one: the last round may
  // mix a straggler's final op with faster clients' earlier ones).
  ASSERT_TRUE(session.committed(kKey).has_value());
  EXPECT_LT(*session.committed(kKey) / 1'000'000, static_cast<std::uint64_t>(threads));
  EXPECT_LT(*session.committed(kKey) % 1'000'000, iterations);
  EXPECT_EQ(session.backend().ops_served(),
            static_cast<std::uint64_t>(threads) * iterations);
}

// Mixed traffic with erases: clients interleave upsert/lookup/erase on a
// small shared key set while one thread pumps. Lookups must only ever see
// live committed values in the offer format — never a torn slot.
TEST(StressServe, MixedOpsOnSharedKeys) {
  const int threads = stress::thread_count();
  const int clients = threads - 1;
  const std::uint64_t per_client =
      static_cast<std::uint64_t>(stress::scaled(300, 50));
  constexpr std::uint64_t kKeys = 8;
  ServeSession session(serial_config());
  std::atomic<std::uint64_t> completed{0};
  const std::uint64_t expected = static_cast<std::uint64_t>(clients) * per_client;

  stress::run_threads(threads, [&](int tid) {
    if (tid == 0) {
      while (completed.load(std::memory_order_acquire) < expected) {
        if (!session.poll()) session.flush();
      }
      return;
    }
    const auto client = static_cast<std::uint64_t>(tid);
    OpFuture f;
    for (std::uint64_t i = 0; i < per_client; ++i) {
      const std::uint64_t key = 1 + (client + i) % kKeys;
      switch (i % 3) {
        case 0:
          session.submit(Op::upsert(key, key * 100 + client), f);
          break;
        case 1:
          session.submit(Op::lookup(key), f);
          break;
        default:
          session.submit(Op::erase(key), f);
          break;
      }
      const Result& r = session.wait(f);
      // Live values always look like key*100 + some client id.
      if (r.won && i % 3 == 1 &&
          (r.value / 100 != key || r.value % 100 > static_cast<std::uint64_t>(clients))) {
        ADD_FAILURE() << "lookup of key " << key << " saw torn value " << r.value;
      }
      completed.fetch_add(1, std::memory_order_release);
    }
  });

  EXPECT_EQ(session.backend().ops_served(), expected);
}

// The destructor path under pressure: clients are still waiting when the
// session is told to flush-and-die. Every submitted op must complete —
// no stranded futures.
TEST(StressServe, ShutdownPublishesEverything) {
  const int clients = stress::thread_count();
  const std::uint64_t per_client =
      static_cast<std::uint64_t>(stress::scaled(100, 20));
  std::vector<std::vector<OpFuture>> futures(static_cast<std::size_t>(clients));
  for (auto& v : futures) v = std::vector<OpFuture>(per_client);

  {
    ServeSession session(serial_config());
    stress::run_threads(clients, [&](int tid) {
      auto& mine = futures[static_cast<std::size_t>(tid)];
      const auto client = static_cast<std::uint64_t>(tid + 1);
      for (std::uint64_t i = 0; i < per_client; ++i) {
        session.submit(Op::upsert(client * per_client + i, i), mine[i]);
      }
    });
    // Session destructor flushes here.
  }
  for (const auto& v : futures) {
    for (const OpFuture& f : v) {
      ASSERT_TRUE(f.ready());
      EXPECT_TRUE(f.result().won);  // distinct keys: every write wins
    }
  }
}

}  // namespace
}  // namespace crcw::serve
