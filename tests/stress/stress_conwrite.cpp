// ConWriteCell / ConWriteSlot payload schedules under raw threads: the
// barrier-published plain stores the TSan annotations cover, exercised with
// multi-word payloads, winner-computes factories, and every single-winner
// policy — the claim "one atomic plus a normal copy" (paper §5) end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "core/cell.hpp"
#include "core/priority.hpp"
#include "core/slot.hpp"
#include "stress_common.hpp"

namespace crcw {
namespace {

using stress::run_lockstep;
using stress::scaled;
using stress::thread_count;

/// Multi-word payload (16 words, several cache lines): the committed struct
/// must carry one writer's stamp in every word after each barrier.
TEST(StressConWrite, MultiWordSlotNeverTearsAcrossRounds) {
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(1000, 200));

  ConWriteSlot<Stamped<16>> slot(Stamped<16>(0));

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        const auto stamp = static_cast<std::uint64_t>(tid + 1) * 100'000 + r;
        (void)slot.try_write(r, Stamped<16>(stamp));
      },
      [&](round_t r) {
        ASSERT_TRUE(slot.read().consistent()) << "round " << r;
        ASSERT_EQ(slot.read().stamp() % 100'000, r % 100'000) << "round " << r;
      });
}

/// Winner-computes: the factory runs exactly once per round (losers must
/// skip payload construction entirely), and the committed value is the
/// winner's product.
TEST(StressConWrite, FactoryRunsExactlyOncePerRound) {
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(1500, 250));

  ConWriteCell<std::uint64_t> cell(0);
  std::atomic<std::uint64_t> factory_runs{0};

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        (void)cell.try_write_with(r, [&] {
          factory_runs.fetch_add(1, std::memory_order_relaxed);
          return static_cast<std::uint64_t>(tid + 1) * 1'000'000 + r;
        });
      },
      [&](round_t r) {
        ASSERT_EQ(factory_runs.exchange(0, std::memory_order_relaxed), 1u)
            << "round " << r;
        ASSERT_EQ(cell.read() % 1'000'000, r % 1'000'000) << "round " << r;
      });
}

/// Gatekeeper-backed cells: the same barrier-published payload contract
/// with a reset-requiring policy, reset performed in the audit window.
TEST(StressConWrite, GatekeeperPolicyCellLockstep) {
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(1500, 250));

  ConWriteCell<std::uint64_t, GatekeeperSkipPolicy> cell(0);
  std::atomic<int> winners{0};

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        const std::uint64_t offer = static_cast<std::uint64_t>(tid + 1) * 1'000'000 + r;
        if (cell.try_write(r, offer)) winners.fetch_add(1, std::memory_order_relaxed);
      },
      [&](round_t r) {
        ASSERT_EQ(winners.exchange(0, std::memory_order_relaxed), 1) << "round " << r;
        ASSERT_EQ(cell.read() % 1'000'000, r % 1'000'000) << "round " << r;
        cell.reset_tag();
      });
}

/// Two-phase priority cell: offers race in the step, the unique minimum
/// commits in a second step, the audit sees exactly that payload.
TEST(StressConWrite, PriorityCellMinimumKeyCommits) {
  const int threads = thread_count();
  const int rounds = scaled(1000, 200);

  PriorityCell<std::uint32_t, std::uint64_t> cell;

  for (int r = 1; r <= rounds; ++r) {
    // Phase 1 + phase 2 inside one lock-step run: round 1 offers, round 2
    // commits (run_lockstep's barriers are the inter-phase sync points).
    run_lockstep(
        threads, 2,
        [&](int tid, round_t phase) {
          // Unique keys per round: rank rotated by the round index.
          const auto key = static_cast<std::uint32_t>((tid + r) % threads);
          if (phase == 1) {
            cell.offer(key);
          } else {
            (void)cell.try_commit(key, static_cast<std::uint64_t>(key) * 7919 + 1);
          }
        },
        [&](round_t phase) {
          if (phase == 2) {
            ASSERT_EQ(cell.best_key(), 0u) << "round " << r;
            ASSERT_EQ(cell.read(), 1u) << "round " << r;
            cell.reset();
          }
        });
  }
}

}  // namespace
}  // namespace crcw
