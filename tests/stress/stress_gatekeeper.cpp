// Gatekeeper under raw-thread schedules. The hand-off test is the
// regression for the reset() memory-order fix: with the pre-fix relaxed
// reset, TSan reports a race between the coordinator's payload read and the
// straggler's next payload write (no release edge publishes the re-zeroed
// counter), and on weakly-ordered hardware that race is real. The
// release/acquire pair on the gate word makes the schedule data-race-free.
#include "core/gatekeeper.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "stress_common.hpp"

namespace crcw {
namespace {

using stress::run_lockstep;
using stress::run_threads;
using stress::scaled;
using stress::thread_count;

/// Lock-step exactly-one-winner with a plain payload guarded by the gate:
/// the winner stores, the barrier publishes, the coordinator audits and
/// resets between barriers — the Fig 3(b) usage, with TSan watching.
TEST(StressGatekeeper, LockstepExactlyOneWinnerPlainPayload) {
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(2000, 300));

  Gatekeeper gate;
  std::uint64_t payload = 0;  // plain: published by the lock-step barrier
  std::atomic<int> winners{0};

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        for (int attempt = 0; attempt < 4; ++attempt) {
          if (gate.try_acquire_skip()) {
            payload = static_cast<std::uint64_t>(tid + 1) * 1'000'000 + r;
            winners.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      [&](round_t r) {
        ASSERT_EQ(winners.exchange(0, std::memory_order_relaxed), 1) << "round " << r;
        ASSERT_EQ(payload % 1'000'000, r % 1'000'000) << "round " << r;
        gate.reset();  // re-open for the next round, inside the audit window
      });
}

/// Baton hand-off purely through the gate word — no barrier between the
/// coordinator's reset and the straggler's next skip-acquire. Coordinator
/// consumes round i's payload, then resets; the worker's admission into
/// round i+1 must order its payload write after that read. This is exactly
/// the straggler window the reset()/try_acquire_skip() memory orders close;
/// under TSan the pre-fix relaxed reset fails this test.
TEST(StressGatekeeper, ResetReleasesPriorPayloadReadsToStragglers) {
  const int iters = scaled(20000, 3000);

  Gatekeeper gate;  // fresh: the worker wins round 1 immediately
  std::uint64_t payload = 0;
  std::atomic<std::uint64_t> round_done{0};
  // Checked after join: failing inside the protocol would strand the
  // spinning worker, so the coordinator only records mismatches.
  std::atomic<std::uint64_t> mismatches{0};

  run_threads(2, [&](int tid) {
    if (tid == 1) {
      // Worker: perpetual straggler, synchronised only by the gate word on
      // the acquire side.
      for (std::uint64_t i = 1; i <= static_cast<std::uint64_t>(iters); ++i) {
        while (!gate.try_acquire_skip()) {
        }
        payload = i;  // single winner of this era writes plain
        round_done.store(i, std::memory_order_release);
      }
      return;
    }
    // Coordinator: waits for the era's winner (release/acquire on
    // round_done models the step barrier that publishes the payload), reads
    // the dependent value, then re-opens the gate. The reset is the ONLY
    // thing ordering this read against the worker's next write.
    for (std::uint64_t i = 1; i <= static_cast<std::uint64_t>(iters); ++i) {
      while (round_done.load(std::memory_order_acquire) < i) {
      }
      if (payload != i) mismatches.fetch_add(1, std::memory_order_relaxed);
      gate.reset();
    }
  });

  EXPECT_EQ(mismatches.load(), 0u);
}

/// Many threads hammering acquire paths while a coordinator resets at full
/// speed — no per-round structure at all. Invariant: each observed zero can
/// admit at most one winner, so total wins <= resets + 1; and the mixed
/// skip/no-skip population must agree on that bound.
TEST(StressGatekeeper, ResetStormWinsBoundedByResets) {
  const int threads = thread_count();
  const int resets = scaled(5000, 800);

  Gatekeeper gate;
  std::atomic<std::uint64_t> total_wins{0};
  std::atomic<bool> stop{false};

  run_threads(threads, [&](int tid) {
    if (tid == 0) {
      for (int e = 0; e < resets; ++e) gate.reset();
      stop.store(true, std::memory_order_release);
      return;
    }
    std::uint64_t wins = 0;
    do {
      // Alternate the mitigated and unmitigated paths.
      if (tid % 2 == 0 ? gate.try_acquire_skip() : gate.try_acquire()) ++wins;
    } while (!stop.load(std::memory_order_acquire));
    total_wins.fetch_add(wins, std::memory_order_relaxed);
  });

  EXPECT_GE(total_wins.load(), 1u);
  EXPECT_LE(total_wins.load(), static_cast<std::uint64_t>(resets) + 1);
}

}  // namespace
}  // namespace crcw
