// Raw-thread schedules for src/snap (label: snap-stress): consistent scans
// racing live writers, checkpoints racing erase-heavy churn (reclaim
// pressure parked by held cuts), and cut mint/release storms. Everything
// runs with exec_threads == 1 — no OpenMP region — so TSan natively checks
// the claimed chain: mint_cut's pump-park (atomic_flag acquire) → the
// seqlock-shaped LiveTag read in for_each_at → release_cut → the batch
// epilog's cuts_held() gate on grow/reclaim.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "serve/serve_session.hpp"
#include "snap/checkpointer.hpp"
#include "stress_common.hpp"

namespace crcw::snap {
namespace {

using serve::Op;
using serve::OpFuture;
using serve::Result;
using serve::ServeConfig;
using serve::ServeSession;

[[nodiscard]] ServeConfig serial_config() {
  ServeConfig cfg;
  cfg.batch.exec_threads = 1;  // no OpenMP under TSan
  cfg.batch.max_batch = 64;
  cfg.batch.max_wait_us = 100;
  return cfg;
}

[[nodiscard]] std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "crcw_stress_snap_" + name;
  mkdir(dir.c_str(), 0755);
  return dir;
}

// Scanners fold digests while writers mutate through the self-pumping
// call() path. Every scanned entry must honour the cut predicate (round
// <= cut round) and the offer format — a torn LiveTag/value pair would
// break one or the other. Post-join, a quiesced scan sees every key.
TEST(StressSnap, ScansRaceWriters) {
  const int threads = stress::thread_count();
  const int writers = threads - 2 < 1 ? 1 : threads - 2;
  const std::uint64_t per_writer =
      static_cast<std::uint64_t>(stress::scaled(300, 50));
  constexpr std::uint64_t kKeys = 64;
  ServeSession session(serial_config());
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_TRUE(session.call(Op::upsert(k, k * 1'000'000)).won);
  }
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scans{0};

  stress::run_threads(writers + 2, [&](int tid) {
    if (tid <= 1) {  // two concurrent scanners
      while (!done.load(std::memory_order_acquire)) {
        auto& backend = session.backend();
        const SnapshotCut cut = backend.mint_cut();
        backend.scan_shard_at(
            0, cut.round, [&](std::uint64_t k, std::uint64_t v, round_t r) {
              if (k < 1 || k > kKeys) ADD_FAILURE() << "phantom key " << k;
              if (r > cut.round) {
                ADD_FAILURE() << "entry round " << r << " past cut " << cut.round;
              }
              if (v / 1'000'000 != k) ADD_FAILURE() << "torn value " << v;
            });
        backend.release_cut();
        scans.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    const auto writer = static_cast<std::uint64_t>(tid);
    for (std::uint64_t i = 0; i < per_writer; ++i) {
      const std::uint64_t key = 1 + (writer * 7 + i) % kKeys;
      const Result r = session.call(Op::upsert(key, key * 1'000'000 + i));
      if (r.value / 1'000'000 != key) {
        ADD_FAILURE() << "writer observed torn value " << r.value;
      }
      if (i + 1 == per_writer) done.store(true, std::memory_order_release);
    }
  });

  EXPECT_GT(scans.load(), 0u);
  EXPECT_EQ(session.backend().cuts_held(), 0u);
  const ScanDigest final_scan = scan_digest(session.backend());
  EXPECT_EQ(final_scan.entries, kKeys) << "quiesced scan must see every key";
}

// Checkpoints race erase-heavy churn: the eager reclaim watermark keeps
// asking for tombstone sweeps, held cuts keep parking them, and every
// published file must still restore cleanly into a fresh backend. This is
// the grow/reclaim-vs-scan lifetime race the cuts_held() gate exists for.
TEST(StressSnap, CheckpointsRaceChurnAndEveryFileRestores) {
  const std::string dir = temp_dir("churn");
  ServeConfig cfg = serial_config();
  cfg.table.reclaim_ratio = 0.05;  // reclaim wants to run constantly
  const int threads = stress::thread_count();
  const int writers = threads - 1;
  const std::uint64_t per_writer =
      static_cast<std::uint64_t>(stress::scaled(400, 60));
  constexpr std::uint64_t kKeys = 128;
  ServeSession session(cfg);
  std::atomic<bool> done{false};
  std::string last_path;
  std::uint64_t checkpoints = 0;

  stress::run_threads(writers + 1, [&](int tid) {
    if (tid == 0) {
      Checkpointer<serve::BatchScheduler> ckpt(session.backend(), dir);
      while (!done.load(std::memory_order_acquire)) {
        std::string err;
        const auto cut = ckpt.begin(&err);
        if (!cut.has_value()) {
          ADD_FAILURE() << "begin failed: " << err;
          break;
        }
        if (!ckpt.wait(&err)) {
          ADD_FAILURE() << "checkpoint failed: " << err;
          break;
        }
        last_path = ckpt.last_path();
        ++checkpoints;
      }
      return;
    }
    const auto writer = static_cast<std::uint64_t>(tid);
    for (std::uint64_t i = 0; i < per_writer; ++i) {
      const std::uint64_t key = 1 + (writer * 13 + i) % kKeys;
      if (i % 2 == 0) {
        (void)session.call(Op::upsert(key, key * 1000 + writer));
      } else {
        (void)session.call(Op::erase(key));  // tombstone pressure
      }
      if (i + 1 == per_writer && tid == 1) {
        done.store(true, std::memory_order_release);
      }
    }
  });

  ASSERT_GT(checkpoints, 0u);
  EXPECT_EQ(session.backend().cuts_held(), 0u);
  ServeSession fresh(cfg);
  std::string err;
  ASSERT_TRUE(restore(fresh.backend(), last_path, &err)) << err;
  // Restored entries honour the file's own cut; spot-check the format.
  const ScanDigest restored = scan_digest(fresh.backend());
  EXPECT_LE(restored.entries, kKeys);
}

// Cut mint/release storm against writers forcing table growth: a held cut
// parks grow, so a round can see kFull and refuse the write (won=false, no
// retry path inside the round) — but every release must re-arm the prolog
// grow, so a client retrying across rounds always gets through. A lost
// release would park grow forever and exhaust the retry budget.
TEST(StressSnap, CutStormNeverWedgesGrow) {
  const int threads = stress::thread_count();
  const int writers = threads - 1;
  const std::uint64_t per_writer =
      static_cast<std::uint64_t>(stress::scaled(500, 80));
  ServeConfig cfg = serial_config();
  cfg.table.expected_keys = 64;  // undersized: inserts demand growth
  ServeSession session(cfg);
  std::atomic<bool> done{false};

  stress::run_threads(writers + 1, [&](int tid) {
    if (tid == 0) {
      while (!done.load(std::memory_order_acquire)) {
        {
          HeldCut<serve::BatchScheduler> held(session.backend());
          // Overlapping second cut: cuts_held flaps 2 → 1 → 0.
          HeldCut<serve::BatchScheduler> again(session.backend());
        }
        std::this_thread::yield();  // a real grow window between storms
      }
      return;
    }
    const auto writer = static_cast<std::uint64_t>(tid);
    for (std::uint64_t i = 0; i < per_writer; ++i) {
      const std::uint64_t key = writer * per_writer + i + 1;  // all distinct
      Result r;
      int attempts = 0;
      do {  // kFull under a held cut loses the round; retry in a later one
        r = session.call(Op::upsert(key, key));
        if (!r.won) std::this_thread::yield();
      } while (!r.won && ++attempts < 10'000);
      if (!r.won) ADD_FAILURE() << "upsert wedged, key " << key;
      if (i + 1 == per_writer && tid == 1) {
        done.store(true, std::memory_order_release);
      }
    }
  });

  EXPECT_EQ(session.backend().cuts_held(), 0u);
  const ScanDigest final_scan = scan_digest(session.backend());
  EXPECT_EQ(final_scan.entries,
            static_cast<std::uint64_t>(writers) * per_writer);
}

}  // namespace
}  // namespace crcw::snap
