// RoundTag under raw-thread schedules TSan can fully analyse: lock-step
// rounds, deliberately mixed rounds, reset racing, and the repaired
// no-skip ablation path under contention.
#include "core/round_tag.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/cell.hpp"
#include "stress_common.hpp"

namespace crcw {
namespace {

using stress::run_lockstep;
using stress::run_threads;
using stress::scaled;
using stress::thread_count;

/// Lock-step exactly-one-winner, with the winner's payload audited through
/// a ConWriteCell so the annotated plain store is exercised under TSan.
TEST(StressRoundTag, LockstepExactlyOneWinnerAndPayloadAgrees) {
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(2000, 300));

  ConWriteCell<std::uint64_t> cell(0);
  std::atomic<int> winners{0};
  std::atomic<std::uint64_t> winner_offer{0};

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        const std::uint64_t offer = static_cast<std::uint64_t>(tid + 1) * 1'000'000 + r;
        if (cell.try_write(r, offer)) {
          winners.fetch_add(1, std::memory_order_relaxed);
          winner_offer.store(offer, std::memory_order_relaxed);
        }
      },
      [&](round_t r) {
        ASSERT_EQ(winners.exchange(0, std::memory_order_relaxed), 1) << "round " << r;
        // Post-barrier dependent read: must be the winner's offer, untorn.
        ASSERT_EQ(cell.read(), winner_offer.load(std::memory_order_relaxed))
            << "round " << r;
      });
}

/// Distinct rounds racing one tag via the strict single-shot acquire — the
/// misuse the contract forbids. The library's defensive guarantee: at most
/// one winner per round value and a monotonically increasing tag (every
/// successful CAS strictly raises it), even off-contract.
TEST(StressRoundTag, StrictAcquireMixedRoundsAtMostOneWinnerEach) {
  const int threads = thread_count();
  const int epochs = scaled(2000, 300);
  const int rounds_in_flight = threads;

  RoundTag tag;
  std::vector<std::atomic<int>> wins(
      static_cast<std::size_t>(epochs * rounds_in_flight + 1));
  for (auto& w : wins) w.store(0, std::memory_order_relaxed);

  run_threads(threads, [&](int tid) {
    for (int e = 0; e < epochs; ++e) {
      // Each thread attempts a thread-specific round: all distinct, racing.
      const auto round = static_cast<round_t>(e * rounds_in_flight + tid + 1);
      if (tag.try_acquire(round)) {
        wins[static_cast<std::size_t>(round)].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (std::size_t r = 1; r < wins.size(); ++r) {
    EXPECT_LE(wins[r].load(std::memory_order_relaxed), 1) << "round " << r;
  }
  EXPECT_GT(tag.last_round(), kInitialRound);
}

/// Same mixed-round schedule through the retry variant: identical at-most-
/// one-winner bound, plus the guarantee that the maximum attempted round
/// always ends up committed (retry loops until it observes >= its round).
TEST(StressRoundTag, RetryMixedRoundsCommitMaxRound) {
  const int threads = thread_count();
  const int epochs = scaled(1500, 250);
  const int rounds_in_flight = threads;

  RoundTag tag;
  std::vector<std::atomic<int>> wins(
      static_cast<std::size_t>(epochs * rounds_in_flight + 1));
  for (auto& w : wins) w.store(0, std::memory_order_relaxed);

  run_threads(threads, [&](int tid) {
    for (int e = 0; e < epochs; ++e) {
      const auto round = static_cast<round_t>(e * rounds_in_flight + tid + 1);
      if (tag.try_acquire_retry(round)) {
        wins[static_cast<std::size_t>(round)].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (std::size_t r = 1; r < wins.size(); ++r) {
    EXPECT_LE(wins[r].load(std::memory_order_relaxed), 1) << "round " << r;
  }
  EXPECT_EQ(tag.last_round(), static_cast<round_t>(epochs * rounds_in_flight));
}

/// The repaired no-skip ablation path under full contention: every call
/// issues an RMW, yet exactly one winner per lock-step round and the tag
/// never regresses (the old kInitialRound seed could only waste CAS
/// attempts; the rewrite must not have traded that for a lost update).
TEST(StressRoundTag, NoSkipLockstepExactlyOneWinner) {
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(2000, 300));

  RoundTag tag;
  std::atomic<int> winners{0};

  run_lockstep(
      threads, rounds,
      [&](int /*tid*/, round_t r) {
        if (tag.try_acquire_no_skip(r)) winners.fetch_add(1, std::memory_order_relaxed);
      },
      [&](round_t r) {
        ASSERT_EQ(winners.exchange(0, std::memory_order_relaxed), 1) << "round " << r;
        ASSERT_EQ(tag.last_round(), r);
      });
}

/// Reset racing late acquires (benchmark-repetition shape): a coordinator
/// rewinds the tag while stragglers still hammer old rounds. The tag word
/// is atomic, so this must stay TSan-clean, and wins in the post-reset era
/// are bounded by one per round value per era.
TEST(StressRoundTag, ResetRacingLateAcquiresStaysBounded) {
  const int threads = thread_count();
  const int eras = scaled(400, 80);
  constexpr round_t kRoundsPerEra = 16;

  RoundTag tag;
  std::atomic<std::uint64_t> total_wins{0};
  std::atomic<bool> stop{false};

  run_threads(threads, [&](int tid) {
    if (tid == 0) {
      for (int e = 0; e < eras; ++e) tag.reset();
      stop.store(true, std::memory_order_release);
      return;
    }
    std::uint64_t wins = 0;
    do {  // do-while: at least one pass even if the coordinator already quit
      for (round_t r = 1; r <= kRoundsPerEra; ++r) {
        if (tag.try_acquire(r)) ++wins;
      }
    } while (!stop.load(std::memory_order_acquire));
    total_wins.fetch_add(wins, std::memory_order_relaxed);
  });

  // Each era re-opens at most kRoundsPerEra round values; the era count
  // seen by the workers is at most eras + 1 (initial state included).
  EXPECT_GE(total_wins.load(), 1u);
  EXPECT_LE(total_wins.load(), static_cast<std::uint64_t>(eras + 1) * kRoundsPerEra);
}

}  // namespace
}  // namespace crcw
