// ds/ tables under raw std::thread + std::barrier schedules — the tier
// that must stay clean under TSan (ctest labels: stress, ds).
//
// The cooperative-resize safety argument is entirely barrier-shaped:
// inserts never overlap the migration sweep, helpers claim disjoint
// chunks, and the array swap happens after every helper passed the
// barrier. This file replays that protocol with primitives TSan models
// natively, so a hole in the argument shows up as a reported race, not a
// flaky assertion.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <set>
#include <vector>

#include "ds/chained_hash_set.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "stress_common.hpp"

namespace crcw::stress {
namespace {

// The grow protocol spelled out with explicit barriers: insert | decide |
// help | finish, each phase separated. Starts tiny so nearly every round
// triggers a migration (the resize-storm schedule).
TEST(StressHashResize, OpenSetGrowsUnderLockstepInserts) {
  const int threads = thread_count();
  const int rounds = scaled(64, 16);
  const std::uint64_t keys_per_thread = scaled(256, 64);

  ds::HashConfig cfg;
  cfg.migrate_chunk = 32;  // small chunks → every helper claims some
  const std::uint64_t round_size =
      static_cast<std::uint64_t>(threads) * keys_per_thread;
  // Sized for exactly one round: every later round depends on the grows.
  ds::ConcurrentHashSet<> set(round_size, cfg);
  std::atomic<std::uint64_t> inserted{0};
  std::barrier sync(threads);

  run_threads(threads, [&](int tid) {
    for (int r = 0; r < rounds; ++r) {
      // Phase 1: disjoint key ranges, so every insert must win.
      const std::uint64_t base =
          (static_cast<std::uint64_t>(r) * threads + static_cast<std::uint64_t>(tid)) *
          keys_per_thread;
      for (std::uint64_t i = 0; i < keys_per_thread; ++i) {
        ASSERT_EQ(set.insert(base + i), ds::SetInsert::kInserted);
      }
      inserted.fetch_add(keys_per_thread, std::memory_order_relaxed);
      sync.arrive_and_wait();

      // Phase 2 (serial): open the migration window when the NEXT round
      // would cross the load factor — the grow must land between rounds,
      // so the decision reserves headroom instead of reacting to kFull.
      if (tid == 0 &&
          (set.size() + round_size) * 2 > set.bucket_count()) {
        set.grow_prepare(4);
      }
      sync.arrive_and_wait();

      // Phase 3 (parallel): everyone helps sweep.
      if (set.growing()) set.grow_help();
      sync.arrive_and_wait();

      // Phase 4 (serial): swap arrays, audit.
      if (tid == 0) {
        if (set.growing()) set.grow_finish();
        const std::uint64_t expect = inserted.load(std::memory_order_relaxed);
        ASSERT_EQ(set.size(), expect);
        // Spot-check survival across the round's migration.
        ASSERT_TRUE(set.contains(base));
        ASSERT_TRUE(set.contains(0));
        ASSERT_FALSE(set.contains(expect + threads * keys_per_thread * rounds));
      }
      sync.arrive_and_wait();
    }
  });

  const std::uint64_t total =
      static_cast<std::uint64_t>(threads) * rounds * keys_per_thread;
  EXPECT_EQ(set.size(), total);
  for (std::uint64_t k = 0; k < total; k += 97) EXPECT_TRUE(set.contains(k));
}

// All threads upsert the SAME keys each round: exactly one kWon per
// (key, round), committed value readable post-barrier, migration between
// rounds preserves round monotonicity.
TEST(StressHashResize, MapUpsertOneWinnerPerKeyAcrossGrows) {
  const int threads = thread_count();
  const round_t rounds = scaled(200, 40);
  constexpr std::uint64_t kKeys = 32;

  ds::ConcurrentHashMap<std::uint64_t, std::uint64_t> map(kKeys);
  std::vector<std::atomic<int>> winners(kKeys);
  std::barrier sync(threads);

  run_threads(threads, [&](int tid) {
    for (round_t r = 1; r <= rounds; ++r) {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        if (map.upsert(r, k, r * 1000 + static_cast<std::uint64_t>(tid)) ==
            ds::MapUpsert::kWon) {
          winners[k].fetch_add(1, std::memory_order_relaxed);
        }
      }
      sync.arrive_and_wait();
      if (tid == 0) {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          ASSERT_EQ(winners[k].exchange(0, std::memory_order_relaxed), 1)
              << "round " << r << " key " << k;
          const std::uint64_t* v = map.find(k);
          ASSERT_NE(v, nullptr);
          ASSERT_EQ(*v / 1000, r);  // the committed value is this round's
        }
        // Exercise migration mid-stream: single-helper grow keeps the
        // committed rounds, so next round's upserts still arbitrate right.
        if (r % 16 == 0) {
          map.grow_prepare();
          map.grow_help();
          map.grow_finish();
        }
      }
      sync.arrive_and_wait();
    }
  });
  EXPECT_EQ(map.size(), kKeys);
}

// Chained set: raw-thread lanes, overlapping key ranges, Treiber push +
// self-tombstone dedup under TSan's eye.
TEST(StressHashResize, ChainedSetDedupesUnderContention) {
  const int threads = thread_count();
  const round_t rounds = scaled(50, 10);
  const std::uint64_t keys_per_round = scaled(128, 48);

  // Arena bound: every thread may spend a node for every offer.
  ds::ChainedHashSet<> set(
      static_cast<std::uint64_t>(threads) * rounds * keys_per_round, threads);

  run_lockstep(threads, rounds,
               [&](int tid, round_t r) {
                 // All threads offer the same window → maximal dedup races.
                 const std::uint64_t base = (r - 1) * keys_per_round;
                 for (std::uint64_t i = 0; i < keys_per_round; ++i) {
                   (void)set.insert(tid, base + i);
                 }
               },
               [&](round_t r) {
                 ASSERT_EQ(set.size(), r * keys_per_round);
                 std::set<std::uint64_t> seen;
                 set.for_each([&](std::uint64_t k) {
                   ASSERT_TRUE(seen.insert(k).second) << "duplicate live key " << k;
                 });
                 ASSERT_EQ(seen.size(), r * keys_per_round);
               });
}

}  // namespace
}  // namespace crcw::stress
