// WriteArbiter / ConWriteArray under raw-thread schedules shaped like the
// BFS and CC kernels: explicit rounds reused as BFS levels, CC-style hook
// races over a parent array, and the padded tag layout. The invariant that
// downstream consumers rely on (docs/concurrency-model.md): every committed
// concurrent write is permanent — exactly one winner, never overwritten
// within or after its round.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/arbiter.hpp"
#include "core/cell_array.hpp"
#include "stress_common.hpp"
#include "util/rng.hpp"

namespace crcw {
namespace {

using stress::run_lockstep;
using stress::scaled;
using stress::thread_count;

/// Opposing full-array sweeps per round (the hostile acquisition order of
/// the tier-1 stress suite, now with TSan-visible barriers): exactly one
/// winner per (cell, round) and the payload matches a real offer.
TEST(StressArbiter, OpposingSweepsEveryCellExactlyOneWinner) {
  constexpr std::size_t kCells = 64;
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(300, 60));

  ConWriteArray<std::uint64_t> cells(kCells, 0);
  std::vector<std::atomic<std::uint32_t>> wins(kCells);
  for (auto& w : wins) w.store(0, std::memory_order_relaxed);

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        const bool forward = tid % 2 == 0;
        for (std::size_t k = 0; k < kCells; ++k) {
          const std::size_t i = forward ? k : kCells - 1 - k;
          const std::uint64_t offer =
              static_cast<std::uint64_t>(tid + 1) * 1'000'000 + r;
          if (cells.try_write(i, r, offer)) {
            wins[i].fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      [&](round_t r) {
        for (std::size_t i = 0; i < kCells; ++i) {
          ASSERT_EQ(wins[i].exchange(0, std::memory_order_relaxed), 1u)
              << "cell " << i << " round " << r;
          ASSERT_EQ(cells[i] % 1'000'000, r % 1'000'000) << "cell " << i;
        }
      });
}

/// BFS-shaped schedule: the level counter is the explicit round (paper §5,
/// "round could be substituted by the loop iteration"). Level L writes only
/// cells in window L; the audit checks the fresh window won exactly once
/// AND that every earlier window still holds its own level — permanence.
TEST(StressArbiter, BfsLevelsAsExplicitRoundsArePermanent) {
  constexpr std::size_t kWindow = 32;
  const int threads = thread_count();
  const auto levels = static_cast<round_t>(scaled(200, 50));

  ConWriteArray<std::uint64_t> level_of(kWindow * static_cast<std::size_t>(levels),
                                        ~std::uint64_t{0});

  run_lockstep(
      threads, levels,
      [&](int /*tid*/, round_t level) {
        // Every thread offers the whole frontier window, like all owners of
        // frontier edges racing to settle the same neighbours.
        const std::size_t base = (static_cast<std::size_t>(level) - 1) * kWindow;
        for (std::size_t k = 0; k < kWindow; ++k) {
          (void)level_of.try_write(base + k, level, static_cast<std::uint64_t>(level));
        }
      },
      [&](round_t level) {
        for (round_t l = 1; l <= level; ++l) {
          const std::size_t base = (static_cast<std::size_t>(l) - 1) * kWindow;
          for (std::size_t k = 0; k < kWindow; ++k) {
            ASSERT_EQ(level_of[base + k], static_cast<std::uint64_t>(l))
                << "vertex " << base + k << " audited at level " << level;
          }
        }
      });
}

/// CC-hook-shaped schedule: threads race arbitrary concurrent writes of
/// their own id into a shared parent array; a committed hook must survive
/// every later attempt in the same round and the winner id must be a live
/// contender for that cell.
TEST(StressArbiter, CcHookRacesCommitExactlyOneLiveParent) {
  constexpr std::size_t kVertices = 96;
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(300, 60));

  ConWriteArray<std::uint64_t> parent(kVertices, 0);

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) * 7919 + r);
        for (int a = 0; a < 64; ++a) {
          const auto v = static_cast<std::size_t>(rng.bounded(kVertices));
          (void)parent.try_write(v, r, static_cast<std::uint64_t>(tid + 1));
        }
      },
      [&](round_t r) {
        for (std::size_t v = 0; v < kVertices; ++v) {
          // Either untouched this round (kept an older id) or exactly one
          // live thread id in [1, threads].
          ASSERT_LE(parent[v], static_cast<std::uint64_t>(threads))
              << "vertex " << v << " round " << r;
        }
      });
}

/// Padded tag layout under the same contention as packed: layout must not
/// change winner semantics (ablation A1 only measures cost).
TEST(StressArbiter, PaddedLayoutSameWinnerSemantics) {
  constexpr std::size_t kCells = 32;
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(300, 60));

  WriteArbiter<CasLtPolicy, TagLayout::kPadded> arbiter(kCells);
  std::vector<std::atomic<std::uint32_t>> wins(kCells);
  for (auto& w : wins) w.store(0, std::memory_order_relaxed);

  run_lockstep(
      threads, rounds,
      [&](int /*tid*/, round_t r) {
        for (std::size_t i = 0; i < kCells; ++i) {
          if (arbiter.acquire_at(i, r)) wins[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      [&](round_t r) {
        for (std::size_t i = 0; i < kCells; ++i) {
          ASSERT_EQ(wins[i].exchange(0, std::memory_order_relaxed), 1u)
              << "cell " << i << " round " << r;
        }
      });
}

}  // namespace
}  // namespace crcw
