// SlotAllocator under raw-thread schedules with explicit lanes (the
// contract OpenMP callers get for free from omp_get_thread_num()). The
// invariant: after the round's barrier and compaction, the dense prefix is
// exactly the multiset of granted elements — no slot lost, none granted
// twice — under TSan-visible synchronisation only.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/slot_alloc.hpp"
#include "stress_common.hpp"

namespace crcw {
namespace {

using stress::run_lockstep;
using stress::scaled;
using stress::thread_count;

/// Deterministic per-(lane, round) grant count so the audit can recompute
/// the expected total without any shared state.
std::uint64_t grants_for(int tid, round_t r, std::uint64_t max_per_thread) {
  return (static_cast<std::uint64_t>(tid) * 31 + r * 17) % (max_per_thread + 1);
}

TEST(StressSlotAlloc, CompactedPrefixIsExactlyTheGrantedSet) {
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(400, 80));
  constexpr std::uint64_t kMaxPerThread = 200;
  // Small chunk so refills (the shared fetch_add) happen many times per
  // round per lane — the contended path under test.
  SlotAllocator slots(threads, /*chunk=*/8);
  std::vector<std::uint64_t> data(static_cast<std::size_t>(
      slots.capacity_for(static_cast<std::uint64_t>(threads) * kMaxPerThread)));

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        const std::uint64_t mine = grants_for(tid, r, kMaxPerThread);
        for (std::uint64_t i = 0; i < mine; ++i) {
          // Globally unique stamp per round: (lane, i).
          data[slots.grant(tid)] =
              static_cast<std::uint64_t>(tid) * kMaxPerThread + i;
        }
      },
      [&](round_t r) {
        std::uint64_t total = 0;
        for (int t = 0; t < threads; ++t) total += grants_for(t, r, kMaxPerThread);
        const std::uint64_t dense = slots.compact(data.data());
        ASSERT_EQ(dense, total) << "round " << r;

        std::vector<std::uint64_t> prefix(
            data.begin(), data.begin() + static_cast<std::ptrdiff_t>(dense));
        std::sort(prefix.begin(), prefix.end());
        std::size_t pi = 0;
        for (int t = 0; t < threads; ++t) {
          const std::uint64_t mine = grants_for(t, r, kMaxPerThread);
          for (std::uint64_t i = 0; i < mine; ++i, ++pi) {
            ASSERT_EQ(prefix[pi],
                      static_cast<std::uint64_t>(t) * kMaxPerThread + i)
                << "round " << r << ": slot lost or duplicated";
          }
        }
      });

  // Lifetime counters add up: every grant happened, refills stayed bounded
  // by grants/chunk + one partial chunk per lane per round.
  std::uint64_t expected = 0;
  for (round_t r = 1; r <= rounds; ++r) {
    for (int t = 0; t < threads; ++t) expected += grants_for(t, r, kMaxPerThread);
  }
  EXPECT_EQ(slots.grants(), expected);
  EXPECT_LE(slots.refills() * slots.chunk(),
            expected + rounds * slots.slack());
}

/// Same schedule but every element is consumed from the compacted prefix
/// in the NEXT round (frontier double-buffer shape): values must survive
/// the swap intact across the barrier.
TEST(StressSlotAlloc, FrontierDoubleBufferRoundTrip) {
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(200, 50));
  constexpr std::uint64_t kPerThread = 64;
  SlotAllocator slots(threads, /*chunk=*/4);
  const auto cap = static_cast<std::size_t>(
      slots.capacity_for(static_cast<std::uint64_t>(threads) * kPerThread));
  std::vector<std::uint64_t> frontier(cap);
  std::vector<std::uint64_t> next(cap);
  std::uint64_t fsize = 0;

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        // Re-emit a tagged copy of a slice of the current frontier plus
        // fresh discoveries, like a BFS level emitting neighbours.
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          next[slots.grant(tid)] =
              (r << 20) | (static_cast<std::uint64_t>(tid) * kPerThread + i);
        }
      },
      [&](round_t r) {
        fsize = slots.compact(next.data());
        ASSERT_EQ(fsize, static_cast<std::uint64_t>(threads) * kPerThread);
        std::swap(frontier, next);
        for (std::uint64_t i = 0; i < fsize; ++i) {
          ASSERT_EQ(frontier[i] >> 20, r) << "stale element crossed the swap";
        }
      });
}

}  // namespace
}  // namespace crcw
