// Raw-thread schedules for the sharded backend (label: sharded-stress).
// Like stress_serve, everything runs with batch.exec_threads == 1 so the
// slice executes serially with NO OpenMP region — TSan natively models
// the whole chain: client enqueue into a routed lane → pump drain →
// per-shard execution under the pump flag → OpFuture publish → ready().
// What's new versus the flat tier is the routed-lane layout (clients on
// different shards touch disjoint lanes) and the shared arbiter round.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "serve/serve_session.hpp"
#include "stress_common.hpp"

namespace crcw::serve {
namespace {

[[nodiscard]] ServeConfig serial_sharded_config(int shards) {
  ServeConfig cfg;
  cfg.batch.exec_threads = 1;  // no OpenMP under TSan
  cfg.batch.max_batch = 64;
  cfg.batch.max_wait_us = 100;
  cfg.shards.count = shards;
  return cfg;
}

// Dedicated pump, clients on distinct keys that scatter over every shard.
// The audit checks both values and the local/foreign split: session
// routing must make every op shard-local even under thread churn.
TEST(StressSharded, DedicatedPumpDistinctKeysAcrossShards) {
  const int threads = stress::thread_count();
  const int clients = threads - 1;
  const std::uint64_t per_client =
      static_cast<std::uint64_t>(stress::scaled(400, 60));
  ServeConfig cfg = serial_sharded_config(4);
  cfg.batch.counters = true;
  ShardedServeSession session(cfg);
  std::atomic<std::uint64_t> completed{0};
  const std::uint64_t expected = static_cast<std::uint64_t>(clients) * per_client;

  stress::run_threads(threads, [&](int tid) {
    if (tid == 0) {
      while (completed.load(std::memory_order_acquire) < expected) {
        if (!session.poll()) session.flush();
      }
      return;
    }
    const auto client = static_cast<std::uint64_t>(tid);  // 1-based
    OpFuture f;
    for (std::uint64_t i = 0; i < per_client; ++i) {
      const std::uint64_t key = client * per_client + i + 1;
      session.submit(Op::upsert(key, key * 10), f);
      const Result& r = session.wait(f);
      if (!r.won || r.value != key * 10) {
        ADD_FAILURE() << "client " << client << " op " << i << " saw " << r.value;
      }
      completed.fetch_add(1, std::memory_order_release);
    }
  });

  const BackendStats st = session.stats();
  EXPECT_EQ(st.ops_served, expected);
  EXPECT_EQ(st.shard_foreign_ops, 0u);  // routed submits stay shard-local
  EXPECT_EQ(st.shard_local_ops, expected);
  for (std::uint64_t c = 1; c <= static_cast<std::uint64_t>(clients); ++c) {
    for (std::uint64_t i = 0; i < per_client; ++i) {
      const std::uint64_t key = c * per_client + i + 1;
      ASSERT_EQ(session.committed(key), key * 10) << "key " << key;
    }
  }
}

// All threads contend on a handful of keys — at least one per shard — via
// the self-pumping call() path: the pump-lock race, routed lanes, and the
// shared-arbiter same-key arbitration together.
TEST(StressSharded, CallersContendOnKeysSpanningShards) {
  const int threads = stress::thread_count();
  const std::uint64_t iterations =
      static_cast<std::uint64_t>(stress::scaled(300, 50));
  ShardedServeSession session(serial_sharded_config(4));
  // Keys 1..8 scatter over the 4 shards by mix64 — with 8 keys every
  // shard gets traffic with overwhelming probability; the audit only
  // relies on per-key value integrity, not the spread.
  constexpr std::uint64_t kKeys = 8;

  stress::run_threads(threads, [&](int tid) {
    const auto client = static_cast<std::uint64_t>(tid);
    for (std::uint64_t i = 0; i < iterations; ++i) {
      const std::uint64_t key = 1 + (client + i) % kKeys;
      const Result r = session.call(Op::upsert(key, key * 1'000'000 + i));
      // Winner or loser, the observed value is some client's live offer
      // for THIS key — a cross-shard mixup would break the key prefix.
      if (r.value / 1'000'000 != key || r.value % 1'000'000 >= iterations) {
        ADD_FAILURE() << "key " << key << " saw torn/foreign value " << r.value;
      }
    }
  });

  EXPECT_EQ(session.backend().ops_served(),
            static_cast<std::uint64_t>(threads) * iterations);
  for (std::uint64_t key = 1; key <= kKeys; ++key) {
    ASSERT_TRUE(session.committed(key).has_value());
    EXPECT_EQ(*session.committed(key) / 1'000'000, key);
  }
}

// Per-thread ClientSessions under a dedicated pump: every client keeps
// read-your-writes on its own key while neighbours churn the other keys
// of the same shards.
TEST(StressSharded, ClientSessionsKeepReadYourWrites) {
  const int threads = stress::thread_count();
  const int clients = threads - 1;
  const std::uint64_t rounds_per_client =
      static_cast<std::uint64_t>(stress::scaled(150, 30));
  ShardedServeSession session(serial_sharded_config(4));
  std::atomic<bool> stop{false};
  std::atomic<int> done_clients{0};

  stress::run_threads(threads, [&](int tid) {
    if (tid == 0) {
      while (!stop.load(std::memory_order_acquire)) {
        if (!session.poll()) session.flush();
      }
      session.flush();
      return;
    }
    ClientSession<ShardedServeSession> client(session);
    const auto me = static_cast<std::uint64_t>(tid);
    for (std::uint64_t i = 0; i < rounds_per_client; ++i) {
      const std::uint64_t key = me;  // own key; different shards per client
      const Result w = client.call(Op::upsert(key, i + 1));
      if (!w.round) ADD_FAILURE() << "write without a round";
      const Result r = client.call(Op::lookup(key));
      // RYW: the lookup ran strictly after this client's write round, so
      // it sees the client's own value (nobody else writes this key).
      if (!r.won || r.value != i + 1) {
        ADD_FAILURE() << "client " << me << " lost its own write at i=" << i
                      << ": saw " << r.value;
      }
    }
    if (done_clients.fetch_add(1, std::memory_order_acq_rel) + 1 == clients) {
      stop.store(true, std::memory_order_release);
    }
  });
}

}  // namespace
}  // namespace crcw::serve
