// Sparse gatekeeper reset under raw-thread schedules. The tier-1 suites
// exercise reset_tags_sparse (OpenMP work-shared); this tier drives the
// serial ResetMode::kPolicySparse path — no OpenMP regions at all — with
// explicit touched-list lanes, so TSan can check the claim the sparse
// scheme rests on: winner-only touch recording captures the exact dirty
// tag set, and resetting just that set leaves every tag fresh.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "core/arbiter.hpp"
#include "stress_common.hpp"
#include "util/rng.hpp"

namespace crcw {
namespace {

using stress::run_lockstep;
using stress::scaled;
using stress::thread_count;

ArbiterConfig tracked_config(int lanes) {
  ArbiterConfig cfg;
  cfg.tracking = TouchTracking::kEnabled;
  cfg.lanes = lanes;
  return cfg;
}

/// Frontier-shaped rounds: a small distinct target set under full
/// contention. The audit runs the serial sparse sweep and then scans ALL
/// N tags — any tag the touched lists missed stays taken and fails the
/// freshness check in a later round's win count.
TEST(StressSparseReset, DistinctTargetsExactWinnersAndFreshTags) {
  constexpr std::size_t kTargets = 1024;
  constexpr std::size_t kWrites = 64;  // << kTargets: the sparse regime
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(300, 60));

  WriteArbiter<GatekeeperPolicy> arbiter(kTargets, tracked_config(threads));
  std::atomic<std::uint64_t> wins{0};

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        for (std::size_t a = 0; a < kWrites; ++a) {
          // Distinct strided set, shifted per round (131 ⊥ 1024).
          const std::size_t target =
              (a * 131 + static_cast<std::size_t>(r)) % kTargets;
          if (arbiter.acquire_at(target, r, tid)) {
            wins.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      [&](round_t r) {
        ASSERT_EQ(wins.exchange(0, std::memory_order_relaxed), kWrites)
            << "round " << r;
        ASSERT_EQ(arbiter.touched_count(), kWrites) << "round " << r;
        // The serial sparse sweep — the stress tier's reset mode.
        auto scope = arbiter.next_round(ResetMode::kPolicySparse);
        (void)scope;
        for (std::size_t i = 0; i < kTargets; ++i) {
          ASSERT_EQ(arbiter.tag(i).contenders(), 0u)
              << "tag " << i << " stale after sparse reset, round " << r;
        }
      });
}

/// Randomised contention: threads hammer random targets (collisions within
/// and across threads), so the dirty set is unpredictable — the touched
/// lists must still cover it exactly. Winner-only recording also bounds
/// list growth: at most one entry per (target, round).
TEST(StressSparseReset, RandomContentionNeverLeavesStaleTags) {
  constexpr std::size_t kTargets = 512;
  const int threads = thread_count();
  const round_t rounds = static_cast<round_t>(scaled(300, 60));

  WriteArbiter<GatekeeperPolicy> arbiter(kTargets, tracked_config(threads));

  run_lockstep(
      threads, rounds,
      [&](int tid, round_t r) {
        util::Xoshiro256 rng(static_cast<std::uint64_t>(tid) * 104729 + r);
        for (int a = 0; a < 48; ++a) {
          const auto target = static_cast<std::size_t>(rng.bounded(kTargets));
          (void)arbiter.acquire_at(target, r, tid);
        }
      },
      [&](round_t r) {
        // One touched entry per won target; wins <= distinct targets hit.
        ASSERT_LE(arbiter.touched_count(), kTargets) << "round " << r;
        auto scope = arbiter.next_round(ResetMode::kPolicySparse);
        (void)scope;
        ASSERT_EQ(arbiter.touched_count(), 0u);
        for (std::size_t i = 0; i < kTargets; ++i) {
          ASSERT_EQ(arbiter.tag(i).contenders(), 0u)
              << "tag " << i << " stale after sparse reset, round " << r;
        }
      });
}

}  // namespace
}  // namespace crcw
