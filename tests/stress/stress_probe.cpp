// Sidecar group probing under raw std::thread + std::barrier schedules —
// the tier that must stay clean under TSan (ctest labels: stress, ds).
//
// What TSan has to bless here: writers publish control bytes with release
// stores while OTHER threads snapshot the same bytes mid-walk. Under TSan
// the snapshot is a per-byte relaxed-atomic loop (util::Group::load), so
// the tool checks exactly the synchronisation the benign-staleness proof
// uses: bytes are a filter, every hit re-verifies the claim word, empty
// and tombstone lanes are always candidates. Each schedule runs with the
// sidecar scan ON and OFF — the arbitration outcome must not notice.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <vector>

#include "ds/concurrent_hash_map.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "stress_common.hpp"

namespace crcw::stress {
namespace {

ds::HashConfig probe_cfg(bool group) {
  ds::HashConfig cfg;
  cfg.group_probe = group;
  return cfg;
}

// All threads offer the SAME key window each round (maximal claim races on
// fingerprint-hot buckets), erase a sliding sub-window, and read mid-churn;
// the serial audit then walks both paths — contains() races the writers,
// so it is only audited at the barrier.
TEST(StressProbe, SetSharedWindowChurnGroupOnAndOff) {
  const int threads = thread_count();
  const int rounds = scaled(48, 12);
  const std::uint64_t window = scaled(512, 128);

  for (const bool group : {true, false}) {
    ds::ConcurrentHashSet<> set(window * 4, probe_cfg(group));
    std::barrier sync(threads);
    std::atomic<std::uint64_t> insert_wins{0};
    std::atomic<std::uint64_t> erase_wins{0};

    run_threads(threads, [&](int tid) {
      for (int r = 0; r < rounds; ++r) {
        const std::uint64_t base = static_cast<std::uint64_t>(r) * window / 2;
        // Phase 1: racing inserts over one shared window + racing erases
        // over the window's trailing quarter. The window slides by half
        // each round, so the keys erased here get re-offered next round —
        // revive races (tombstone-bit clear, fingerprint republish) on
        // every schedule, not just claim races.
        for (std::uint64_t i = 0; i < window; ++i) {
          if (set.insert(base + i + 1) == ds::SetInsert::kInserted) {
            insert_wins.fetch_add(1, std::memory_order_relaxed);
          }
        }
        for (std::uint64_t i = 0; i < window / 4; ++i) {
          if (set.erase(base + window / 2 + i + 1)) {
            erase_wins.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Concurrent readers on keys both live and tombstoned.
        for (std::uint64_t i = 0; i < window; i += 7) (void)set.contains(base + i + 1);
        sync.arrive_and_wait();

        // Phase 2 (serial): one-winner audit, then open a watermark
        // reclaim for the team — the cooperative rebuild that rewrites the
        // sidecar, spelled out with explicit barriers (no OpenMP in the
        // TSan tier).
        if (tid == 0) {
          ASSERT_EQ(set.size(),
                    insert_wins.load(std::memory_order_relaxed) -
                        erase_wins.load(std::memory_order_relaxed))
              << "group=" << group << " round " << r;
          if (set.needs_reclaim()) set.reclaim_prepare();
        }
        sync.arrive_and_wait();

        // Phase 3 (parallel): every thread helps sweep live buckets into
        // the new array, seeding its control bytes as it goes.
        if (set.growing()) set.grow_help();
        sync.arrive_and_wait();

        // Phase 4 (serial): swap, then the rebuilt sidecar must answer.
        if (tid == 0 && set.growing()) {
          set.grow_finish();
          ASSERT_TRUE(set.contains(base + window / 4 + 1));
        }
        sync.arrive_and_wait();
      }
    });

    // Lockstep replay audit: membership equals wins minus erase-wins.
    EXPECT_EQ(set.size(), insert_wins.load() - erase_wins.load());
  }
}

// Map: upserts and erases race per (key, round) while OTHER threads walk
// the same groups; exactly one commit per key per round, with a
// cooperative grow (sidecar rebuild) injected mid-stream.
TEST(StressProbe, MapOneWinnerPerKeyRoundAcrossSidecarRebuilds) {
  const int threads = thread_count();
  const round_t rounds = scaled(120, 30);
  constexpr std::uint64_t kKeys = 48;

  for (const bool group : {true, false}) {
    ds::ConcurrentHashMap<std::uint64_t, std::uint64_t> map(kKeys, probe_cfg(group));
    std::vector<std::atomic<int>> winners(kKeys);
    std::barrier sync(threads);

    run_threads(threads, [&](int tid) {
      for (round_t r = 1; r <= rounds; ++r) {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          // Erase and upsert contend on the same (key, round) tag — the
          // committed op is whichever CAS landed, one winner total.
          const bool won = (k + r + static_cast<std::uint64_t>(tid)) % 5 == 0
                               ? map.erase(r, k) == ds::MapUpsert::kWon
                               : map.upsert(r, k, r * 100 + k) == ds::MapUpsert::kWon;
          if (won) winners[k].fetch_add(1, std::memory_order_relaxed);
        }
        sync.arrive_and_wait();
        if (tid == 0) {
          for (std::uint64_t k = 0; k < kKeys; ++k) {
            ASSERT_EQ(winners[k].exchange(0, std::memory_order_relaxed), 1)
                << "group=" << group << " round " << r << " key " << k;
          }
          // Rebuild the sidecar mid-stream, both directions: grow keeps
          // every bucket, reclaim drops the tombstoned ones. Single-helper
          // sweeps (serial here) — the parallel-sweep schedule is the set
          // test's job; no OpenMP in the TSan tier.
          if (r % 24 == 0) {
            map.grow_prepare();
            map.grow_help();
            map.grow_finish();
          } else if (map.needs_reclaim()) {
            map.reclaim_prepare();
            map.grow_help();
            map.grow_finish();
          }
        }
        sync.arrive_and_wait();
      }
    });
  }
}

}  // namespace
}  // namespace crcw::stress
