// Shared harness for the raw-thread stress tier (ctest label: stress).
//
// The tier-1 suites drive the concurrent-write core through OpenMP, whose
// runtime synchronises internally — invisibly to ThreadSanitizer, which
// would then report every barrier-published access as a race. This tier
// re-creates the PRAM lock-step discipline with std::thread + std::barrier,
// primitives TSan models natively, so its happens-before analysis sees the
// exact synchronisation the protocol claims to need: if a schedule here is
// racy under TSan, the race argument of paper §5 has a hole.
//
// Run locally:   cmake -B build-tsan -S . -DCRCW_TSAN=ON
//                cmake --build build-tsan -j
//                ctest --test-dir build-tsan -L stress --output-on-failure
// The same tests run (faster, without race checking) in regular builds.
#pragma once

#include <barrier>
#include <thread>
#include <vector>

#include "core/round_tag.hpp"
#include "util/sanitizer.hpp"

namespace crcw::stress {

/// Thread count for stress schedules: enough for real interleavings, small
/// enough that TSan's (heavily serialised) runtime finishes in seconds.
inline int thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 4;
  return static_cast<int>(hw < 4 ? 4 : (hw > 8 ? 8 : hw));
}

/// Iteration scale: TSan instrumentation costs ~5-20x, so schedules shrink
/// under it rather than time out. Keep invariant checks per-round, not
/// per-run, so the shorter runs lose coverage volume, never strictness.
inline constexpr int scaled(int plain, int tsan) noexcept {
#if CRCW_TSAN_ENABLED
  (void)plain;
  return tsan;
#else
  (void)tsan;
  return plain;
#endif
}

/// Runs body(tid) on `threads` raw std::threads and joins them all.
template <typename Body>
void run_threads(int threads, Body&& body) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&body, t] { body(t); });
  }
  for (auto& th : pool) th.join();
}

/// PRAM lock-step driver. Per round r in [1, rounds]:
///   1. every thread runs step(tid, r)         (the parallel CW step)
///   2. all threads meet at a barrier          (the synchronisation point)
///   3. thread 0 runs audit(r)                 (the post-barrier reader)
///   4. all threads meet at a second barrier   (so the next step cannot
///                                              overlap the audit)
template <typename Step, typename Audit>
void run_lockstep(int threads, round_t rounds, Step&& step, Audit&& audit) {
  std::barrier sync(threads);
  run_threads(threads, [&](int tid) {
    for (round_t r = 1; r <= rounds; ++r) {
      step(tid, r);
      sync.arrive_and_wait();
      if (tid == 0) audit(r);
      sync.arrive_and_wait();
    }
  });
}

}  // namespace crcw::stress
