// Raw-thread schedules for src/stream (label: stream-stress). Two layers:
//
//   * IncrementalCc raw: lock-step rounds of concurrent hooks (the
//     arbitrary-CW parent CAS) from std::threads, compaction between
//     rounds on one thread — TSan checks the CAS/acquire chain directly.
//   * The full session with batch.exec_threads == 1: the pump executes
//     rounds strictly serially (no OpenMP region anywhere), so TSan sees
//     client enqueue → pump drain → round execution → publish end to end
//     over the streaming backend, including hooks, deletion rebuilds,
//     and reclaim at batch close.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "graph/reference.hpp"
#include "serve/serve_session.hpp"
#include "stream/stream_scheduler.hpp"
#include "stress_common.hpp"
#include "util/rng.hpp"

namespace crcw::stream {
namespace {

using serve::Op;
using serve::OpFuture;
using serve::Result;
using StreamSession = serve::BasicServeSession<StreamScheduler>;

[[nodiscard]] serve::ServeConfig serial_config(std::uint32_t vertices) {
  serve::ServeConfig cfg;
  cfg.batch.exec_threads = 1;  // no OpenMP under TSan
  cfg.batch.max_batch = 64;
  cfg.batch.max_wait_us = 100;
  cfg.stream.vertices = vertices;
  return cfg;
}

// Lock-step hook torture: each round, every thread links a slice of the
// same random edge list (many threads collide on the same roots); after
// the barrier, thread 0 compacts serially. Final partition must equal
// the serial DSU's.
TEST(StressStream, LockstepHooksMatchSerialPartition) {
  const int threads = stress::thread_count();
  constexpr std::uint32_t kN = 1024;
  const int rounds = stress::scaled(60, 12);
  const int per_round = 64;  // edges linked per round, split across threads

  util::Xoshiro256 rng(31);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (int i = 0; i < rounds * per_round; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.bounded(kN));
    auto v = static_cast<std::uint32_t>(rng.bounded(kN - 1));
    if (v >= u) ++v;
    edges.push_back({u, v});
  }

  IncrementalCc cc(kN);
  stress::run_lockstep(threads, rounds, [&](int tid, int round) {
    const int base = (round - 1) * per_round;
    for (int i = tid; i < per_round; i += threads) {
      const auto [u, v] = edges[static_cast<std::size_t>(base + i)];
      cc.link(u, v);
    }
  }, [&](int round) {
    (void)round;
    cc.compact(1);  // the between-rounds cooperative sweep, serial
  });

  graph::UnionFind uf(kN);
  for (const auto& [u, v] : edges) uf.unite(u, v);
  EXPECT_EQ(cc.components(), uf.num_sets());
  for (std::uint32_t v = 0; v < kN; ++v) {
    ASSERT_EQ(cc.same_component(0, v), uf.find(0) == uf.find(v)) << v;
  }
}

// Concurrent same_component reads against concurrent links: find() is a
// read-only walk over atomics, legal during the write phase. Readers
// assert monotonicity (once connected, never disconnected — no deletions
// here); writers link a growing path.
TEST(StressStream, ReadsRaceLinksWithoutTearing) {
  const int threads = stress::thread_count();
  constexpr std::uint32_t kN = 512;
  const std::uint32_t chain = static_cast<std::uint32_t>(stress::scaled(kN, 128));
  IncrementalCc cc(kN);
  std::atomic<std::uint32_t> linked{0};

  stress::run_threads(threads, [&](int tid) {
    if (tid == 0) {
      for (std::uint32_t v = 1; v < chain; ++v) {
        cc.link(v - 1, v);
        linked.store(v, std::memory_order_release);
      }
      return;
    }
    std::uint32_t seen_connected = 0;
    while (linked.load(std::memory_order_acquire) + 1 < chain) {
      const std::uint32_t frontier = linked.load(std::memory_order_acquire);
      // Everything at or below the published frontier is connected to 0
      // forever after — a reader observing otherwise saw a torn state.
      if (frontier > 0 && !cc.same_component(0, frontier)) {
        ADD_FAILURE() << "vertex " << frontier << " disconnected after link";
        return;
      }
      seen_connected = frontier;
    }
    (void)seen_connected;
  });
  cc.compact(1);
  EXPECT_EQ(cc.component_size(0), chain);
}

// The full streaming session under raw-thread clients: a dedicated pump,
// clients owning disjoint vertex blocks (so expected connectivity is
// exact per client), mixing inserts, deletes and queries. exec_threads=1
// keeps every round OpenMP-free.
TEST(StressStream, SessionClientsDisjointBlocks) {
  const int threads = stress::thread_count();
  const int clients = threads - 1;
  const std::uint32_t block = 32;
  const int cycles = stress::scaled(30, 6);
  const auto vertices = static_cast<std::uint32_t>(clients) * block + 2;
  StreamSession session(serial_config(vertices));
  std::atomic<int> finished{0};

  stress::run_threads(threads, [&](int tid) {
    if (tid == 0) {
      while (finished.load(std::memory_order_acquire) < clients) {
        if (!session.poll()) session.flush();
      }
      session.flush();
      return;
    }
    const std::uint32_t base = static_cast<std::uint32_t>(tid - 1) * block;
    OpFuture f;
    const auto do_op = [&](const Op& op) {
      session.submit(op, f);
      return session.wait(f);
    };
    for (int c = 0; c < cycles; ++c) {
      // Build the path base..base+block-1.
      for (std::uint32_t v = 1; v < block; ++v) {
        const Result r = do_op(Op::edge_insert(base + v - 1, base + v, v));
        if (!r.won) ADD_FAILURE() << "insert lost on a private edge";
      }
      // Ends connected; size exact (queries are RYW via round ordering:
      // submit-after-complete lands in a strictly later round).
      Result q = do_op(Op::same_component(base, base + block - 1));
      if (q.value != 1u) ADD_FAILURE() << "path ends disconnected, client " << tid;
      q = do_op(Op::component_size(base));
      if (q.value != block) {
        ADD_FAILURE() << "component size " << q.value << " != " << block;
      }
      // Split in the middle, check both halves.
      const std::uint32_t mid = base + block / 2;
      if (!do_op(Op::edge_erase(mid - 1, mid)).won) {
        ADD_FAILURE() << "erase lost on a private edge";
      }
      q = do_op(Op::same_component(base, base + block - 1));
      if (q.value != 0u) ADD_FAILURE() << "split not observed, client " << tid;
      q = do_op(Op::component_size(base));
      if (q.value != block / 2) {
        ADD_FAILURE() << "half size " << q.value << " != " << block / 2;
      }
      // Tear the rest down so the next cycle starts clean (and the edge
      // table churns through tombstones + reclaim).
      for (std::uint32_t v = 1; v < block; ++v) {
        if (v != block / 2) (void)do_op(Op::edge_erase(base + v - 1, base + v));
      }
    }
    finished.fetch_add(1, std::memory_order_release);
  });

  EXPECT_EQ(session.backend().graph().edges(), 0u);
  EXPECT_EQ(session.backend().cc().components(), vertices);
}

}  // namespace
}  // namespace crcw::stream
