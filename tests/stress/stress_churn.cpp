// Long-lived churn under raw std::thread + std::barrier schedules (ctest
// label: churn-stress — the compound token matches both `-L churn` and
// `-L stress`).
//
// The erase/reclaim safety argument has three legs, and each gets its own
// TSan-visible schedule here: (1) erase and upsert share ONE CAS-LT
// arbitration, so mixed same-round writers still produce exactly one
// winner; (2) the reclaim rebuild is the grow protocol pointed the other
// way — prepare | help | finish between rounds — and must preserve every
// committed (round, value) while dropping every tombstone; (3) the
// chained set's erase CAS + node recycling keep the arena bounded while
// lifetime churn exceeds it many times over.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <vector>

#include "ds/chained_hash_set.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "stress_common.hpp"

namespace crcw::stress {
namespace {

// Threads race erase against upsert on every key every round; the winner's
// kind decides the key's liveness for the round. Every 16 rounds the
// threads run a cooperative reclaim and the surviving commits must keep
// arbitrating correctly afterwards.
TEST(StressChurn, MapMixedOpsOneWinnerAcrossReclaims) {
  const int threads = thread_count();
  const round_t rounds = scaled(120, 24);
  constexpr std::uint64_t kKeys = 48;

  ds::ConcurrentHashMap<std::uint64_t, std::uint64_t> map(kKeys);
  std::vector<std::atomic<int>> winners(kKeys);
  std::vector<std::atomic<int>> erase_won(kKeys);
  std::barrier sync(threads);

  run_threads(threads, [&](int tid) {
    for (round_t r = 1; r <= rounds; ++r) {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        // Parity split over (tid, r, k): both op kinds contend on every
        // key every round, and each thread plays both roles.
        const bool erase = (static_cast<round_t>(tid) + r + k) % 2 == 0;
        const ds::MapUpsert out =
            erase ? map.erase(r, k)
                  : map.upsert(r, k, r * 1000 + static_cast<std::uint64_t>(tid));
        if (out == ds::MapUpsert::kWon) {
          winners[k].fetch_add(1, std::memory_order_relaxed);
          if (erase) erase_won[k].store(1, std::memory_order_relaxed);
        }
      }
      sync.arrive_and_wait();

      if (tid == 0) {
        std::uint64_t live = 0;
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          ASSERT_EQ(winners[k].exchange(0, std::memory_order_relaxed), 1)
              << "round " << r << " key " << k;
          const std::uint64_t* v = map.find(k);
          if (erase_won[k].exchange(0, std::memory_order_relaxed) != 0) {
            ASSERT_EQ(v, nullptr) << "round " << r << " key " << k;
          } else {
            ASSERT_NE(v, nullptr) << "round " << r << " key " << k;
            ASSERT_EQ(*v / 1000, r);  // the winner committed THIS round
            ++live;
          }
        }
        ASSERT_EQ(map.size(), live);
      }
      sync.arrive_and_wait();

      // Cooperative reclaim between rounds: same barrier shape as the
      // grow protocol, arrays swapped only after every helper passed.
      if (r % 16 == 0) {
        if (tid == 0) map.reclaim_prepare();
        sync.arrive_and_wait();
        if (map.growing()) map.grow_help();
        sync.arrive_and_wait();
        if (tid == 0) {
          map.grow_finish();
          ASSERT_EQ(map.tombstones(), 0u);
          ASSERT_EQ(map.occupied(), map.size());
        }
        sync.arrive_and_wait();
      }
    }
  });
}

// Fresh disjoint keys every round, all erased the same round — the
// worst-case schedule for a grow-only table. Cooperative backlog-grow and
// watermark-reclaim bracket each round; bucket_count must oscillate
// inside one band instead of ratcheting up.
TEST(StressChurn, SetBucketCountStaysBoundedUnderLockstepChurn) {
  const int threads = thread_count();
  const round_t rounds = scaled(64, 16);
  const std::uint64_t keys_per_thread = scaled(128, 32);
  const std::uint64_t round_size =
      static_cast<std::uint64_t>(threads) * keys_per_thread;

  ds::ConcurrentHashSet<> set(round_size);
  const std::uint64_t band = set.bucket_count() * 4;
  std::atomic<std::uint64_t> erased{0};
  std::uint64_t max_buckets = 0;  // tid 0 only, barrier-separated
  std::barrier sync(threads);

  run_threads(threads, [&](int tid) {
    for (round_t r = 1; r <= rounds; ++r) {
      // Phase 0 (serial): size the table for this round's batch — the
      // backlog-grow decision, cooperatively swept. After a shrink the
      // needed factor exceeds 2, so it is computed, not hardcoded.
      if (tid == 0) {
        const std::uint64_t want = ds::bucket_count_for(
            ds::required_buckets(set.size() + round_size, 0.5));
        if (want > set.bucket_count()) {
          set.grow_prepare(want / set.bucket_count());
        }
      }
      sync.arrive_and_wait();
      if (set.growing()) set.grow_help();
      sync.arrive_and_wait();
      if (tid == 0 && set.growing()) set.grow_finish();
      sync.arrive_and_wait();

      // Phase 1: disjoint fresh ranges — every insert must win.
      const std::uint64_t base =
          (static_cast<std::uint64_t>(r - 1) * threads +
           static_cast<std::uint64_t>(tid)) *
          keys_per_thread;
      for (std::uint64_t i = 0; i < keys_per_thread; ++i) {
        ASSERT_EQ(set.insert(base + i), ds::SetInsert::kInserted);
      }
      sync.arrive_and_wait();

      // Phase 2: erase the whole round back out (own range → all first).
      for (std::uint64_t i = 0; i < keys_per_thread; ++i) {
        if (set.erase(base + i)) erased.fetch_add(1, std::memory_order_relaxed);
      }
      sync.arrive_and_wait();

      // Phase 3: watermark-gated cooperative shrink, then audit.
      if (tid == 0) {
        ASSERT_EQ(erased.exchange(0, std::memory_order_relaxed), round_size);
        ASSERT_EQ(set.size(), 0u);
        ASSERT_EQ(set.tombstones(), round_size);
        if (set.needs_reclaim()) set.reclaim_prepare();
      }
      sync.arrive_and_wait();
      if (set.growing()) set.grow_help();
      sync.arrive_and_wait();
      if (tid == 0) {
        if (set.growing()) set.grow_finish();
        max_buckets = std::max(max_buckets, set.bucket_count());
        ASSERT_LE(set.bucket_count(), band) << "round " << r;
      }
      sync.arrive_and_wait();
    }
  });

  EXPECT_LE(max_buckets, band);
  EXPECT_EQ(set.size(), 0u);
}

// Chained set: overlapping offers (dedup races), contended erase CAS
// (exactly one true per key), serial reclaim restocking the allocator —
// lifetime node churn is many multiples of the arena.
TEST(StressChurn, ChainedEraseOneWinnerAndArenaRecycles) {
  const int threads = thread_count();
  const round_t rounds = scaled(40, 10);
  const std::uint64_t keys_per_round = scaled(256, 64);

  // Arena bound: one round's worst case is a node per thread per offer;
  // two rounds' worth of headroom, recycled thereafter.
  const std::uint64_t arena_cap =
      2 * static_cast<std::uint64_t>(threads) * keys_per_round;
  ds::ChainedHashSet<> set(arena_cap, threads);
  std::atomic<std::uint64_t> erased{0};

  std::barrier sync(threads);
  run_threads(threads, [&](int tid) {
    for (round_t r = 1; r <= rounds; ++r) {
      // Phase 1: every thread offers the same window → maximal Treiber
      // push + self-tombstone dedup contention.
      const std::uint64_t base = (r - 1) * keys_per_round;
      for (std::uint64_t i = 0; i < keys_per_round; ++i) {
        ASSERT_NE(set.insert(tid, base + i), ds::SetInsert::kFull)
            << "arena exhausted in round " << r << " — recycling broken";
      }
      sync.arrive_and_wait();

      // Phase 2: every thread tries to erase every key — the dead-flag
      // CAS admits exactly one winner per live node.
      for (std::uint64_t i = 0; i < keys_per_round; ++i) {
        if (set.erase(base + i)) erased.fetch_add(1, std::memory_order_relaxed);
      }
      sync.arrive_and_wait();

      // Phase 3 (serial): audit, then recycle the round's tombstones.
      if (tid == 0) {
        ASSERT_EQ(erased.exchange(0, std::memory_order_relaxed), keys_per_round)
            << "round " << r;
        ASSERT_EQ(set.size(), 0u);
        const std::uint64_t freed = set.reclaim();
        ASSERT_GE(freed, keys_per_round);  // erased keys + dedup losers
        ASSERT_EQ(set.tombstones(), 0u);
      }
      sync.arrive_and_wait();
    }
  });

  // Recycling carried most grants once the first round's nodes came back.
  EXPECT_GT(set.allocator().recycled_grants(), 0u);
}

}  // namespace
}  // namespace crcw::stress
