// Parallel prefix sums and stream compaction.
#include "algorithms/scan.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/gatekeeper.hpp"
#include "util/rng.hpp"

namespace crcw::algo {
namespace {

std::vector<std::uint64_t> serial_exclusive(std::span<const std::uint64_t> in) {
  std::vector<std::uint64_t> out(in.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
  return out;
}

TEST(ExclusiveScan, Empty) { EXPECT_TRUE(exclusive_scan({}).empty()); }

TEST(ExclusiveScan, Basics) {
  const std::vector<std::uint64_t> in = {3, 1, 4, 1, 5};
  EXPECT_EQ(exclusive_scan(in), (std::vector<std::uint64_t>{0, 3, 4, 8, 9}));
}

TEST(InclusiveScan, Basics) {
  const std::vector<std::uint64_t> in = {3, 1, 4, 1, 5};
  EXPECT_EQ(inclusive_scan(in), (std::vector<std::uint64_t>{3, 4, 8, 9, 14}));
}

class ScanRandomTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ScanRandomTest, MatchesSerialReference) {
  const auto& [n, threads] = GetParam();
  util::Xoshiro256 rng(n + static_cast<std::uint64_t>(threads));
  std::vector<std::uint64_t> in(n);
  for (auto& x : in) x = rng.bounded(1000);
  EXPECT_EQ(exclusive_scan(in, {.threads = threads}), serial_exclusive(in));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScanRandomTest,
                         ::testing::Combine(::testing::Values(std::uint64_t{1},
                                                              std::uint64_t{2},
                                                              std::uint64_t{7},
                                                              std::uint64_t{100},
                                                              std::uint64_t{4096},
                                                              std::uint64_t{100000}),
                                            ::testing::Values(1, 3, 8)),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(std::get<0>(pinfo.param)) + "_t" +
                                  std::to_string(std::get<1>(pinfo.param));
                         });

TEST(ExclusiveScanOp, MaxScan) {
  const std::vector<std::uint64_t> in = {2, 9, 1, 7, 11, 3};
  const auto out = exclusive_scan_op(
      in, 0, [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); },
      {.threads = 4});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 2, 9, 9, 9, 11}));
}

TEST(PackIndices, Basics) {
  const std::vector<std::uint8_t> flags = {0, 1, 1, 0, 1, 0};
  EXPECT_EQ(pack_indices(flags), (std::vector<std::uint64_t>{1, 2, 4}));
  EXPECT_TRUE(pack_indices({}).empty());
  const std::vector<std::uint8_t> none(10, 0);
  EXPECT_TRUE(pack_indices(none).empty());
  const std::vector<std::uint8_t> all(10, 1);
  EXPECT_EQ(pack_indices(all).size(), 10u);
}

TEST(PackIndices, OrderedAndCompleteOnRandomFlags) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint8_t> flags(2000);
    std::uint64_t expected = 0;
    for (auto& f : flags) {
      f = rng.bounded(3) == 0 ? 1 : 0;
      expected += f;
    }
    const auto packed = pack_indices(flags, {.threads = 4});
    ASSERT_EQ(packed.size(), expected);
    for (std::size_t i = 0; i < packed.size(); ++i) {
      ASSERT_TRUE(flags[packed[i]] != 0);
      if (i > 0) ASSERT_LT(packed[i - 1], packed[i]) << "indices must stay ordered";
    }
  }
}

/// The §3 connection: the XMT prefix-sum CW method selects, as winner of a
/// concurrent write, the requester whose exclusive-scan offset is 0 — and
/// the Gatekeeper of Figure 2 computes exactly that, one atomic at a time.
TEST(Scan, GatekeeperIsAnOnlinePrefixSum) {
  const std::vector<std::uint64_t> requests = {1, 1, 0, 1, 1};
  const auto offsets = exclusive_scan(requests);

  Gatekeeper gate;
  std::vector<bool> gate_winner;
  for (const std::uint64_t r : requests) {
    gate_winner.push_back(r != 0 && gate.try_acquire());
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const bool scan_winner = requests[i] != 0 && offsets[i] == 0;
    EXPECT_EQ(gate_winner[i], scan_winner) << i;
  }
}

}  // namespace
}  // namespace crcw::algo
