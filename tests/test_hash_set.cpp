// ConcurrentHashSet: claim semantics, probing, cooperative grow, telemetry.
#include "ds/concurrent_hash_set.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace crcw::ds {
namespace {

TEST(HashSet, InsertThenContains) {
  ConcurrentHashSet<> set(16);
  EXPECT_EQ(set.insert(7), SetInsert::kInserted);
  EXPECT_EQ(set.insert(9), SetInsert::kInserted);
  EXPECT_EQ(set.insert(7), SetInsert::kFound);
  EXPECT_TRUE(set.contains(7));
  EXPECT_TRUE(set.contains(9));
  EXPECT_FALSE(set.contains(8));
  EXPECT_EQ(set.size(), 2u);
}

TEST(HashSet, ZeroIsAValidKey) {
  ConcurrentHashSet<> set(4);
  EXPECT_FALSE(set.contains(0));
  EXPECT_EQ(set.insert(0), SetInsert::kInserted);
  EXPECT_TRUE(set.contains(0));
}

TEST(HashSet, SentinelKeyThrows) {
  ConcurrentHashSet<> set(4);
  EXPECT_THROW((void)set.insert(ConcurrentHashSet<>::kEmptyKey), std::invalid_argument);
  EXPECT_FALSE(set.contains(ConcurrentHashSet<>::kEmptyKey));
}

TEST(HashSet, RejectsBadLoadFactor) {
  HashConfig cfg;
  cfg.max_load = 0.0;
  EXPECT_THROW(ConcurrentHashSet<>(8, cfg), std::invalid_argument);
  cfg.max_load = 1.5;
  EXPECT_THROW(ConcurrentHashSet<>(8, cfg), std::invalid_argument);
}

TEST(HashSet, BucketCountRespectsLoadFactor) {
  // capacity / max_load keys must fit under the load factor: 100 at 0.5
  // needs >= 200 buckets, rounded to the next power of two.
  ConcurrentHashSet<> set(100);
  EXPECT_EQ(set.bucket_count(), 256u);
  HashConfig cfg;
  cfg.max_load = 1.0;
  ConcurrentHashSet<> tight(100, cfg);
  EXPECT_EQ(tight.bucket_count(), 128u);
}

TEST(HashSet, FullTableReportsKFull) {
  // max_load 1.0 lets the table fill completely: a 2-bucket table holds
  // two keys, the third probe walk exhausts every bucket.
  HashConfig cfg;
  cfg.max_load = 1.0;
  ConcurrentHashSet<> set(2, cfg);
  ASSERT_EQ(set.bucket_count(), 2u);
  EXPECT_EQ(set.insert(1), SetInsert::kInserted);
  EXPECT_EQ(set.insert(2), SetInsert::kInserted);
  EXPECT_EQ(set.insert(3), SetInsert::kFull);
  EXPECT_EQ(set.insert(1), SetInsert::kFound);  // present keys still found
}

TEST(HashSet, ForEachVisitsEveryKeyOnce) {
  ConcurrentHashSet<> set(64);
  for (std::uint64_t k = 100; k < 150; ++k) (void)set.insert(k);
  std::multiset<std::uint64_t> seen;
  set.for_each([&](std::uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 50u);
  for (std::uint64_t k = 100; k < 150; ++k) EXPECT_EQ(seen.count(k), 1u);
}

TEST(HashSet, SerialGrowProtocolPreservesKeys) {
  ConcurrentHashSet<> set(8);
  for (std::uint64_t k = 1; k <= 8; ++k) (void)set.insert(k);
  const std::uint64_t before = set.bucket_count();
  ASSERT_TRUE(set.needs_grow() || set.size() <= 8);  // occupancy may sit at the edge

  set.grow_prepare(4);
  EXPECT_TRUE(set.growing());
  set.grow_help();  // single helper sweeps every chunk
  set.grow_finish();
  EXPECT_FALSE(set.growing());

  EXPECT_GE(set.bucket_count(), before * 4);
  EXPECT_EQ(set.size(), 8u);
  for (std::uint64_t k = 1; k <= 8; ++k) EXPECT_TRUE(set.contains(k));
  EXPECT_FALSE(set.contains(99));
  EXPECT_EQ(set.insert(99), SetInsert::kInserted);  // still writable after
}

TEST(HashSet, MaybeGrowParallelGrowsExactlyWhenNeeded) {
  ConcurrentHashSet<> set(16);
  EXPECT_FALSE(set.maybe_grow_parallel());
  const std::uint64_t before = set.bucket_count();
  // Push occupancy past max_load (0.5 of 32 buckets = 16).
  for (std::uint64_t k = 1; k <= 17; ++k) (void)set.insert(k);
  EXPECT_TRUE(set.needs_grow());
  EXPECT_TRUE(set.maybe_grow_parallel(2));
  EXPECT_GT(set.bucket_count(), before);
  EXPECT_FALSE(set.needs_grow());
  for (std::uint64_t k = 1; k <= 17; ++k) EXPECT_TRUE(set.contains(k));
}

TEST(HashSet, RepeatedGrowsKeepEverything) {
  util::Xoshiro256 rng(2024);
  std::set<std::uint64_t> reference;
  ConcurrentHashSet<> set(4);  // tiny start → many grows
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = rng.bounded(2000);
    reference.insert(k);
    (void)set.insert(k);
    set.maybe_grow_parallel(2);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const std::uint64_t k : reference) EXPECT_TRUE(set.contains(k));
}

TEST(HashSet, ParallelInsertOneWinnerPerKey) {
  const int threads = std::max(4, omp_get_max_threads());
  constexpr std::uint64_t kKeys = 1000;
  ConcurrentHashSet<> set(kKeys);
  std::vector<int> winners(kKeys, 0);
  // Every thread offers every key: exactly one kInserted per key.
#pragma omp parallel num_threads(threads)
  {
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      if (set.insert(k) == SetInsert::kInserted) {
#pragma omp atomic
        ++winners[k];
      }
    }
  }
  EXPECT_EQ(set.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(winners[k], 1) << "key " << k;
    EXPECT_TRUE(set.contains(k));
  }
}

TEST(HashSet, TelemetryCountsMapToTableEvents) {
  obs::MetricsRegistry local;
  {
    const obs::ScopedRegistry scoped(local);
    HashConfig cfg;
    cfg.telemetry = true;
    cfg.site_name = "unit-set";
    cfg.migrate_chunk = 8;
    ConcurrentHashSet<> set(16, cfg);
    for (std::uint64_t k = 0; k < 20; ++k) (void)set.insert(k);
    for (std::uint64_t k = 0; k < 20; ++k) (void)set.insert(k);  // all kFound
    set.grow_parallel(2);
    set.flush_round();
  }
  const obs::ContentionTotals t = local.totals();
  EXPECT_EQ(t.wins, 20u);            // one win per distinct key
  EXPECT_GE(t.atomics, t.wins);      // every win cost a CAS; migration adds more
  EXPECT_GE(t.attempts, 40u);        // every insert probed at least once
  EXPECT_GE(t.refills, 1u);          // the grow sweep claimed >= 1 chunk
  EXPECT_EQ(t.reset_tags, 32u);      // old array had 32 buckets, all swept
}

TEST(HashSet, BacklogSizedGrowAbsorbsTheWholeBacklog) {
  ConcurrentHashSet<> set(4);
  const std::uint64_t before = set.bucket_count();
  EXPECT_TRUE(set.maybe_grow_for_backlog(500, 2));
  const std::uint64_t grown = set.bucket_count();
  EXPECT_GE(grown, 1024u);  // 500 keys at max_load 0.5, pow2
  for (std::uint64_t k = 1; k <= 500; ++k) {
    ASSERT_EQ(set.insert(k), SetInsert::kInserted);
  }
  EXPECT_FALSE(set.needs_grow());
  EXPECT_EQ(set.bucket_count(), grown);  // one grow, no cascade
  EXPECT_GT(grown, before);
  EXPECT_FALSE(set.maybe_grow_for_backlog(1, 2));  // already fits
}

TEST(HashSet, StringKeyAdapterFeedsTheUint64Space) {
  // Distinct strings map to distinct keys (collision would need ~2^32
  // strings; these few must differ), the empty string is valid, and no
  // string can produce the reserved all-ones sentinel.
  const std::uint64_t a = string_key("alpha");
  const std::uint64_t b = string_key("beta");
  const std::uint64_t c = string_key("alphb");  // one char off
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_NE(a, ConcurrentHashSet<>::kEmptyKey);
  EXPECT_NE(string_key(""), ConcurrentHashSet<>::kEmptyKey);
  // Deterministic: same bytes, same key (constexpr-evaluable too).
  static_assert(string_key("alpha") == string_key("alpha"));
  EXPECT_EQ(a, string_key(std::string_view("alpha")));

  ConcurrentHashSet<> set(8);
  EXPECT_EQ(set.insert(a), SetInsert::kInserted);
  EXPECT_EQ(set.insert(string_key("alpha")), SetInsert::kFound);
  EXPECT_TRUE(set.contains(a));
  EXPECT_FALSE(set.contains(b));
}

TEST(HashSet, EraseHidesReviveRestores) {
  ConcurrentHashSet<> set(16);
  ASSERT_EQ(set.insert(7), SetInsert::kInserted);
  EXPECT_TRUE(set.erase(7));
  EXPECT_FALSE(set.contains(7));
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.occupied(), 1u);  // the bucket stays claimed
  EXPECT_EQ(set.tombstones(), 1u);
  EXPECT_FALSE(set.erase(7));   // already dead
  EXPECT_FALSE(set.erase(42));  // absent
  // Revive in place: the re-insert wins kInserted (its RMW made it live).
  EXPECT_EQ(set.insert(7), SetInsert::kInserted);
  EXPECT_TRUE(set.contains(7));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.tombstones(), 0u);
  EXPECT_EQ(set.insert(7), SetInsert::kFound);
}

TEST(HashSet, ForEachSkipsTombstones) {
  ConcurrentHashSet<> set(64);
  for (std::uint64_t k = 0; k < 20; ++k) (void)set.insert(k);
  for (std::uint64_t k = 0; k < 20; k += 2) ASSERT_TRUE(set.erase(k));
  std::multiset<std::uint64_t> seen;
  set.for_each([&](std::uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 10u);
  for (std::uint64_t k = 1; k < 20; k += 2) EXPECT_EQ(seen.count(k), 1u);
}

TEST(HashSet, ReclaimDropsTombstonesAndShrinks) {
  // Fill a big table, erase almost everything, reclaim: the array must
  // shrink back to the live count's sizing and the tombstoned buckets must
  // be genuinely gone (their keys re-insertable as fresh).
  ConcurrentHashSet<> set(500);
  const std::uint64_t grown = set.bucket_count();
  EXPECT_GE(grown, 1024u);  // 500 keys at max_load 0.5
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_EQ(set.insert(k), SetInsert::kInserted);
  }

  for (std::uint64_t k = 8; k < 500; ++k) ASSERT_TRUE(set.erase(k));
  EXPECT_TRUE(set.needs_reclaim());
  set.reclaim_parallel(2);
  EXPECT_EQ(set.bucket_count(), 16u);  // 8 live keys at 0.5 → 16 buckets
  EXPECT_EQ(set.size(), 8u);
  EXPECT_EQ(set.occupied(), 8u);  // tombstones dropped, not carried
  EXPECT_EQ(set.tombstones(), 0u);
  for (std::uint64_t k = 0; k < 8; ++k) EXPECT_TRUE(set.contains(k));
  for (std::uint64_t k = 8; k < 500; ++k) ASSERT_FALSE(set.contains(k));
  // Erased keys come back as fresh claims in the rebuilt array.
  EXPECT_EQ(set.insert(100), SetInsert::kInserted);
}

TEST(HashSet, GrowSweepAlsoReclaims) {
  // Migrations drop tombstones in either direction: a grow after churn
  // carries only the live keys.
  ConcurrentHashSet<> set(8);
  for (std::uint64_t k = 0; k < 8; ++k) (void)set.insert(k);
  for (std::uint64_t k = 0; k < 4; ++k) ASSERT_TRUE(set.erase(k));
  set.grow_parallel(2);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(set.occupied(), 4u);
  EXPECT_EQ(set.tombstones(), 0u);
  for (std::uint64_t k = 4; k < 8; ++k) EXPECT_TRUE(set.contains(k));
}

TEST(HashSet, ParallelEraseOneWinnerPerKey) {
  const int threads = std::max(4, omp_get_max_threads());
  constexpr std::uint64_t kKeys = 1000;
  ConcurrentHashSet<> set(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) ASSERT_EQ(set.insert(k), SetInsert::kInserted);
  std::vector<int> winners(kKeys, 0);
  // Every thread erases every key: the bit CAS admits exactly one winner.
#pragma omp parallel num_threads(threads)
  {
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      if (set.erase(k)) {
#pragma omp atomic
        ++winners[k];
      }
    }
  }
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.tombstones(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(winners[k], 1) << "key " << k;
    EXPECT_FALSE(set.contains(k));
  }
}

TEST(HashSet, RequiredBucketsCeilsAtTheEdge) {
  // The regression the ceiling division fixes: 5 keys at max_load 0.6
  // truncated to 8 buckets (load 0.625 > 0.6); the ceil lands on 9, which
  // rounds to 16 — a table that respects its own load factor from birth.
  HashConfig cfg;
  cfg.max_load = 0.6;
  ConcurrentHashSet<> set(5, cfg);
  EXPECT_EQ(set.bucket_count(), 16u);
  for (std::uint64_t k = 0; k < 5; ++k) ASSERT_EQ(set.insert(k), SetInsert::kInserted);
  EXPECT_FALSE(set.needs_grow());  // the fresh table honors max_load
  EXPECT_EQ(required_buckets(5, 0.6), 9u);
  EXPECT_EQ(required_buckets(6, 0.6), 10u);  // exact-quotient edge: 6/0.6
  EXPECT_EQ(required_buckets(1, 1.0), 1u);
  EXPECT_EQ(required_buckets(0, 0.5), 2u);  // clamps to capacity 1
}

TEST(HashSet, TelemetryOffCountsNothing) {
  obs::MetricsRegistry local;
  {
    const obs::ScopedRegistry scoped(local);
    ConcurrentHashSet<> set(16);  // telemetry defaults off
    for (std::uint64_t k = 0; k < 20; ++k) (void)set.insert(k);
    set.flush_round();
  }
  const obs::ContentionTotals t = local.totals();
  EXPECT_EQ(t.attempts, 0u);
  EXPECT_EQ(t.atomics, 0u);
}

}  // namespace
}  // namespace crcw::ds
