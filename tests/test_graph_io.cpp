// Graph serialisation round trips.
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace crcw::graph {
namespace {

TEST(EdgeListIo, RoundTripThroughStreams) {
  const EdgeList edges = {{0, 1}, {1, 2}, {3, 0}};
  std::stringstream ss;
  write_edge_list(ss, 4, edges);
  const LoadedEdgeList loaded = read_edge_list(ss);
  EXPECT_EQ(loaded.num_vertices, 4u);
  EXPECT_EQ(loaded.edges, edges);
}

TEST(EdgeListIo, HeaderlessInputInfersVertexCount) {
  std::stringstream ss("0 5\n2 3\n");
  const LoadedEdgeList loaded = read_edge_list(ss);
  EXPECT_EQ(loaded.num_vertices, 6u);
  ASSERT_EQ(loaded.edges.size(), 2u);
  EXPECT_EQ(loaded.edges[0].v, 5u);
}

TEST(EdgeListIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# a comment\n\n0 1\n# another\n1 2\n");
  const LoadedEdgeList loaded = read_edge_list(ss);
  EXPECT_EQ(loaded.edges.size(), 2u);
}

TEST(EdgeListIo, MalformedLineThrowsWithLineNumber) {
  std::stringstream ss("0 1\nbroken\n");
  try {
    (void)read_edge_list(ss);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(EdgeListIo, HeaderEdgeCountMismatchThrows) {
  std::stringstream ss("# crcw-edgelist 3 5\n0 1\n");
  EXPECT_THROW((void)read_edge_list(ss), std::runtime_error);
}

TEST(EdgeListIo, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "crcw_io_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "g.txt").string();
  const EdgeList edges = gnm(20, 50, 3);
  save_edge_list(path, 20, edges);
  const LoadedEdgeList loaded = load_edge_list(path);
  EXPECT_EQ(loaded.num_vertices, 20u);
  EXPECT_EQ(loaded.edges, edges);
  std::filesystem::remove_all(dir);
}

TEST(CsrBinaryIo, RoundTripThroughStreams) {
  const Csr g = build_csr(50, gnm(50, 200, 5));
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(ss, g);
  const Csr g2 = read_csr_binary(ss);
  EXPECT_EQ(g, g2);
}

TEST(CsrBinaryIo, EmptyGraphRoundTrip) {
  const Csr g = build_csr(3, {});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(ss, g);
  const Csr g2 = read_csr_binary(ss);
  EXPECT_EQ(g2.num_vertices(), 3u);
  EXPECT_EQ(g2.num_edges(), 0u);
}

TEST(CsrBinaryIo, BadMagicThrows) {
  std::stringstream ss("NOTACSR1xxxxxxxxxxxxxxxx",
                       std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_THROW((void)read_csr_binary(ss), std::runtime_error);
}

TEST(CsrBinaryIo, TruncatedInputThrows) {
  const Csr g = build_csr(50, gnm(50, 200, 5));
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(ss, g);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW((void)read_csr_binary(cut), std::runtime_error);
}

TEST(CsrBinaryIo, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "crcw_io_bin";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "g.csr").string();
  const Csr g = random_graph(64, 256, 8);
  save_csr_binary(path, g);
  EXPECT_EQ(load_csr_binary(path), g);
  std::filesystem::remove_all(dir);
}

TEST(Io, MissingFilesThrow) {
  EXPECT_THROW((void)load_edge_list("/nonexistent/x.txt"), std::runtime_error);
  EXPECT_THROW((void)load_csr_binary("/nonexistent/x.csr"), std::runtime_error);
  EXPECT_THROW((void)load_rodinia("/nonexistent/x.graph"), std::runtime_error);
}

TEST(RodiniaIo, RoundTripThroughStreams) {
  const Csr g = random_graph(40, 120, 6);
  std::stringstream ss;
  write_rodinia(ss, g, 7);
  const RodiniaGraph loaded = read_rodinia(ss);
  EXPECT_EQ(loaded.graph, g);
  EXPECT_EQ(loaded.source, 7u);
  ASSERT_EQ(loaded.costs.size(), g.num_edges());
  for (const auto c : loaded.costs) EXPECT_EQ(c, 1u);
}

TEST(RodiniaIo, ParsesHandWrittenFixture) {
  // The exact layout Rodinia's BFS inputs use: 3 nodes, a path 0-1-2.
  std::stringstream ss(
      "3\n"
      "0 1\n"
      "1 2\n"
      "3 1\n"
      "\n0\n\n"
      "4\n"
      "1 1\n"
      "0 1\n"
      "2 1\n"
      "1 1\n");
  const RodiniaGraph loaded = read_rodinia(ss);
  EXPECT_EQ(loaded.graph.num_vertices(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 4u);
  EXPECT_EQ(loaded.source, 0u);
  EXPECT_TRUE(loaded.graph.has_edge(1, 0));
  EXPECT_TRUE(loaded.graph.has_edge(1, 2));
  EXPECT_FALSE(loaded.graph.has_edge(0, 2));
}

TEST(RodiniaIo, RejectsMalformedInputs) {
  // Non-contiguous offsets.
  std::stringstream bad1("2\n0 1\n5 1\n\n0\n\n2\n1 1\n0 1\n");
  EXPECT_THROW((void)read_rodinia(bad1), std::runtime_error);
  // Source out of range.
  std::stringstream bad2("2\n0 1\n1 1\n\n9\n\n2\n1 1\n0 1\n");
  EXPECT_THROW((void)read_rodinia(bad2), std::runtime_error);
  // Edge count mismatch.
  std::stringstream bad3("2\n0 1\n1 1\n\n0\n\n5\n1 1\n0 1\n");
  EXPECT_THROW((void)read_rodinia(bad3), std::runtime_error);
  // Destination out of range.
  std::stringstream bad4("2\n0 1\n1 1\n\n0\n\n2\n9 1\n0 1\n");
  EXPECT_THROW((void)read_rodinia(bad4), std::runtime_error);
  // Truncated.
  std::stringstream bad5("2\n0 1\n");
  EXPECT_THROW((void)read_rodinia(bad5), std::runtime_error);
}

TEST(RodiniaIo, FileRoundTripAndBfsPipeline) {
  const auto dir = std::filesystem::temp_directory_path() / "crcw_rodinia";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "g.graph").string();
  const Csr g = random_graph(64, 200, 14);
  save_rodinia(path, g, 3);
  const RodiniaGraph loaded = load_rodinia(path);
  EXPECT_EQ(loaded.graph, g);
  EXPECT_EQ(loaded.source, 3u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace crcw::graph
