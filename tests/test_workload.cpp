// Workload traces: deterministic replay, monotone timestamps, the op mix,
// burstiness actually compressing inter-arrivals, erases targeting live
// edges only, and config validation.
#include "stream/workload.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "serve/op.hpp"

namespace crcw::stream {
namespace {

using serve::OpKind;

TEST(Workload, DeterministicReplay) {
  WorkloadConfig cfg;
  cfg.vertices = 512;
  const std::vector<Event> a = generate_trace(cfg, 3000);
  const std::vector<Event> b = generate_trace(cfg, 3000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].at_ns, b[i].at_ns) << i;
    ASSERT_EQ(a[i].op.kind, b[i].op.kind) << i;
    ASSERT_EQ(a[i].op.key, b[i].op.key) << i;
    ASSERT_EQ(a[i].op.value, b[i].op.value) << i;
  }
  // A different seed diverges.
  WorkloadConfig other = cfg;
  other.seed = cfg.seed + 1;
  const std::vector<Event> c = generate_trace(other, 3000);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.size() && !any_diff; ++i) {
    any_diff = c[i].op.key != a[i].op.key || c[i].at_ns != a[i].at_ns;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, TimestampsMonotoneAndOpsWellFormed) {
  WorkloadConfig cfg;
  cfg.vertices = 128;
  const std::vector<Event> trace = generate_trace(cfg, 5000);
  std::uint64_t prev = 0;
  for (const Event& ev : trace) {
    ASSERT_GE(ev.at_ns, prev);
    prev = ev.at_ns;
    switch (ev.op.kind) {
      case OpKind::kEdgeInsert:
      case OpKind::kEdgeErase: {
        const ds::EdgeKey e = ds::unpack_edge(ev.op.key);
        ASSERT_LT(e.u, e.v);
        ASSERT_LT(e.v, cfg.vertices);
        break;
      }
      case OpKind::kSameComponent:
        ASSERT_LT(ev.op.key, cfg.vertices);
        ASSERT_LT(ev.op.value, cfg.vertices);
        break;
      case OpKind::kComponentSize:
        ASSERT_LT(ev.op.key, cfg.vertices);
        break;
      default:
        FAIL() << "unexpected op kind in trace";
    }
  }
}

TEST(Workload, MixFractionsRoughlyHold) {
  WorkloadConfig cfg;
  cfg.vertices = 1 << 12;
  cfg.insert_frac = 0.6;
  cfg.erase_frac = 0.1;
  cfg.same_component_frac = 0.2;
  constexpr std::uint64_t kN = 20'000;
  const std::vector<Event> trace = generate_trace(cfg, kN);
  std::uint64_t counts[4] = {0, 0, 0, 0};
  for (const Event& ev : trace) {
    switch (ev.op.kind) {
      case OpKind::kEdgeInsert: ++counts[0]; break;
      case OpKind::kEdgeErase: ++counts[1]; break;
      case OpKind::kSameComponent: ++counts[2]; break;
      default: ++counts[3]; break;
    }
  }
  // Inserts absorb erases drawn against an empty reservoir, so inserts
  // land at >= their fraction and erases at <= theirs; 5 sigma slack.
  EXPECT_GT(counts[0], kN * 0.55);
  EXPECT_LE(counts[1], kN * 0.12);
  EXPECT_NEAR(static_cast<double>(counts[2]), kN * 0.2, kN * 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]), kN * 0.1, kN * 0.02);
}

TEST(Workload, ErasesOnlyTargetLiveEdges) {
  WorkloadConfig cfg;
  cfg.vertices = 64;  // small universe → heavy key reuse
  cfg.insert_frac = 0.45;
  cfg.erase_frac = 0.45;
  cfg.same_component_frac = 0.05;
  const std::vector<Event> trace = generate_trace(cfg, 10'000);
  std::set<std::uint64_t> live;
  std::uint64_t erases = 0;
  for (const Event& ev : trace) {
    if (ev.op.kind == OpKind::kEdgeInsert) {
      live.insert(ev.op.key);
    } else if (ev.op.kind == OpKind::kEdgeErase) {
      ++erases;
      ASSERT_EQ(live.count(ev.op.key), 1u) << "erase of a non-live edge";
      live.erase(ev.op.key);
    }
  }
  EXPECT_GT(erases, 1000u);  // the mix actually exercises deletion
}

TEST(Workload, BurstsCompressInterArrivals) {
  WorkloadConfig cfg;
  cfg.base_rate = 1e5;
  cfg.burst_rate = 1e7;
  cfg.burst_every = 1000;
  cfg.burst_duty = 0.5;
  const std::vector<Event> trace = generate_trace(cfg, 10'000);
  // Mean gap inside the on-phase vs the off-phase of each period.
  double on_sum = 0, off_sum = 0;
  std::uint64_t on_n = 0, off_n = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double gap = static_cast<double>(trace[i].at_ns - trace[i - 1].at_ns);
    if (i % 1000 < 500) {
      on_sum += gap;
      ++on_n;
    } else {
      off_sum += gap;
      ++off_n;
    }
  }
  ASSERT_GT(on_n, 0u);
  ASSERT_GT(off_n, 0u);
  // 100x rate ratio → the means must separate by well over an order.
  EXPECT_GT(off_sum / static_cast<double>(off_n),
            10.0 * (on_sum / static_cast<double>(on_n)));
}

TEST(Workload, ValidationRejectsNonsense) {
  WorkloadConfig cfg;
  cfg.vertices = 1;
  EXPECT_THROW((void)cfg.validated(), std::invalid_argument);
  cfg = {};
  cfg.insert_frac = 0.9;
  cfg.erase_frac = 0.2;  // sum > 1
  EXPECT_THROW((void)cfg.validated(), std::invalid_argument);
  cfg = {};
  cfg.base_rate = 0;
  EXPECT_THROW((void)cfg.validated(), std::invalid_argument);
  cfg = {};
  cfg.burst_every = 0;
  EXPECT_THROW((void)cfg.validated(), std::invalid_argument);
  cfg = {};
  cfg.burst_duty = 1.5;
  EXPECT_THROW((void)cfg.validated(), std::invalid_argument);
  EXPECT_NO_THROW((void)WorkloadConfig{}.validated());
}

}  // namespace
}  // namespace crcw::stream
