// ConWriteCell — payload + tag in one object.
#include "core/cell.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <string>
#include <vector>

namespace crcw {
namespace {

TEST(ConWriteCell, DefaultAndInitialValue) {
  ConWriteCell<int> a;
  EXPECT_EQ(a.read(), 0);
  ConWriteCell<int> b(41);
  EXPECT_EQ(b.read(), 41);
}

TEST(ConWriteCell, WinnerStoresValue) {
  ConWriteCell<int> cell;
  EXPECT_TRUE(cell.try_write(1, 10));
  EXPECT_EQ(cell.read(), 10);
  EXPECT_FALSE(cell.try_write(1, 20));
  EXPECT_EQ(cell.read(), 10) << "loser must not overwrite";
  EXPECT_TRUE(cell.try_write(2, 30));
  EXPECT_EQ(cell.read(), 30);
}

TEST(ConWriteCell, MoveOverloadWorks) {
  ConWriteCell<std::string, CriticalPolicy> cell;
  std::string s = "payload";
  EXPECT_TRUE(cell.try_write(1, std::move(s)));
  EXPECT_EQ(cell.read(), "payload");
}

TEST(ConWriteCell, FactoryRunsOnlyForWinner) {
  ConWriteCell<int> cell;
  int factory_calls = 0;
  const auto make = [&] {
    ++factory_calls;
    return 99;
  };
  EXPECT_TRUE(cell.try_write_with(1, make));
  EXPECT_FALSE(cell.try_write_with(1, make));
  EXPECT_FALSE(cell.try_write_with(1, make));
  EXPECT_EQ(factory_calls, 1) << "losers must skip payload construction";
  EXPECT_EQ(cell.read(), 99);
}

TEST(ConWriteCell, ResetTagReopens) {
  ConWriteCell<int> cell;
  ASSERT_TRUE(cell.try_write(1, 1));
  cell.reset_tag();
  EXPECT_TRUE(cell.try_write(1, 2));
  EXPECT_EQ(cell.read(), 2);
}

TEST(ConWriteCell, GatekeeperPolicyVariant) {
  ConWriteCell<int, GatekeeperPolicy> cell;
  EXPECT_TRUE(cell.try_write(1, 5));
  EXPECT_FALSE(cell.try_write(2, 6));  // gatekeeper ignores rounds...
  cell.reset_tag();                    // ...and needs explicit reset
  EXPECT_TRUE(cell.try_write(2, 6));
  EXPECT_EQ(cell.read(), 6);
}

TEST(ConWriteCellStress, ArbitraryWriteCommitsExactlyOneOffer) {
  // The defining arbitrary-CW property: the committed value is exactly one
  // of the concurrently offered values, and exactly one thread observed
  // success.
  const int threads = std::max(4, omp_get_max_threads());
  for (round_t round = 1; round <= 100; ++round) {
    ConWriteCell<int> cell(-1);
    std::atomic<int> winners{0};
    std::atomic<int> winner_value{-1};
#pragma omp parallel num_threads(threads)
    {
      const int mine = omp_get_thread_num() + 1000;
      if (cell.try_write(round, mine)) {
        winners.fetch_add(1, std::memory_order_relaxed);
        winner_value.store(mine, std::memory_order_relaxed);
      }
    }
    ASSERT_EQ(winners.load(), 1);
    ASSERT_EQ(cell.read(), winner_value.load())
        << "committed value must be the winner's offer";
    ASSERT_GE(cell.read(), 1000);
    ASSERT_LT(cell.read(), 1000 + threads);
  }
}

TEST(ConWriteCellStress, CommonWriteAllValuesEqual) {
  // Common CW through the cell: everyone offers the same value; whoever
  // wins, the result is that value.
  for (round_t round = 1; round <= 50; ++round) {
    ConWriteCell<int> cell(0);
#pragma omp parallel num_threads(8)
    {
      (void)cell.try_write(round, 7);
    }
    ASSERT_EQ(cell.read(), 7);
  }
}

}  // namespace
}  // namespace crcw
