// CSR structure and invariants.
#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace crcw::graph {
namespace {

Csr triangle() {
  // 0-1, 0-2, 1-2 symmetrised, sorted.
  return Csr({0, 2, 4, 6}, {1, 2, 0, 2, 0, 1});
}

TEST(Csr, EmptyGraph) {
  Csr g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Csr, BasicAccessors) {
  const Csr g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.offset(1), 2u);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(Csr, IsolatedVerticesHaveZeroDegree) {
  const Csr g({0, 0, 0, 1, 1}, {0});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_TRUE(g.neighbors(1).empty());
}

TEST(Csr, HasEdge) {
  const Csr g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Csr, ValidateRejectsBadOffsets) {
  EXPECT_THROW(Csr({1, 2}, {0}), std::invalid_argument);            // offsets[0] != 0
  EXPECT_THROW(Csr({0, 2, 1}, {0, 0}), std::invalid_argument);      // non-monotone
  EXPECT_THROW(Csr({0, 1}, {0, 0}), std::invalid_argument);         // back mismatch
  EXPECT_THROW(Csr({}, {0}), std::invalid_argument);                // targets w/o offsets
}

TEST(Csr, ValidateRejectsOutOfRangeTargets) {
  EXPECT_THROW(Csr({0, 1}, {5}), std::invalid_argument);
}

TEST(Csr, DegreeStatistics) {
  const Csr g({0, 3, 4, 4, 6}, {1, 2, 3, 0, 0, 0});
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 6.0 / 4.0);
}

TEST(Csr, Equality) {
  EXPECT_EQ(triangle(), triangle());
  const Csr other({0, 1, 1, 1}, {1});
  EXPECT_NE(triangle(), other);
}

}  // namespace
}  // namespace crcw::graph
