// Graph generators — determinism and structural ground truths.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "graph/reference.hpp"

namespace crcw::graph {
namespace {

TEST(Gnm, ProducesExactlyMEdgesNoSelfLoops) {
  const EdgeList edges = gnm(100, 500, 42);
  EXPECT_EQ(edges.size(), 500u);
  for (const auto& e : edges) {
    EXPECT_LT(e.u, 100u);
    EXPECT_LT(e.v, 100u);
    EXPECT_NE(e.u, e.v);
  }
}

TEST(Gnm, DeterministicPerSeed) {
  EXPECT_EQ(gnm(50, 200, 7), gnm(50, 200, 7));
  EXPECT_NE(gnm(50, 200, 7), gnm(50, 200, 8));
}

TEST(Gnm, RejectsTinyVertexCount) {
  EXPECT_THROW(gnm(1, 5, 0), std::invalid_argument);
  EXPECT_NO_THROW(gnm(1, 0, 0));
}

TEST(GnmSimple, NoDuplicatePairs) {
  const EdgeList edges = gnm_simple(30, 200, 5);
  EXPECT_EQ(edges.size(), 200u);
  std::set<std::pair<vertex_t, vertex_t>> seen;
  for (const auto& e : edges) {
    const auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.emplace(key.first, key.second).second) << e.u << "," << e.v;
  }
}

TEST(GnmSimple, RejectsImpossibleDensity) {
  EXPECT_THROW(gnm_simple(4, 7, 0), std::invalid_argument);  // max 6 pairs
  EXPECT_NO_THROW(gnm_simple(4, 6, 0));
}

TEST(Rmat, SizeAndRange) {
  const EdgeList edges = rmat(1000, 5000, 11);
  EXPECT_EQ(edges.size(), 5000u);
  for (const auto& e : edges) {
    EXPECT_LT(e.u, 1024u);  // rounded to the next power of two
    EXPECT_NE(e.u, e.v);
  }
}

TEST(Rmat, SkewedDegreeDistribution) {
  // Graph500 parameters concentrate edges: max degree must far exceed the
  // average (the defining property vs G(n,m)).
  const Csr g = build_csr(1024, rmat(1024, 8192, 3));
  EXPECT_GT(static_cast<double>(g.max_degree()), 4.0 * g.average_degree());
}

TEST(Rmat, RejectsBadParams) {
  EXPECT_THROW(rmat(16, 10, 0, {.a = 0.9, .b = 0.2, .c = 0.2}), std::invalid_argument);
  EXPECT_THROW(rmat(16, 10, 0, {.a = -0.1, .b = 0.5, .c = 0.5}), std::invalid_argument);
}

TEST(StructuredFamilies, PathCycleStarComplete) {
  EXPECT_EQ(path(5).size(), 4u);
  EXPECT_EQ(cycle(5).size(), 5u);
  EXPECT_EQ(star(5).size(), 4u);
  EXPECT_EQ(complete(5).size(), 10u);
  EXPECT_TRUE(path(1).empty());
  EXPECT_TRUE(star(1).empty());
}

TEST(StructuredFamilies, PathDiameter) {
  const Csr g = build_csr(10, path(10));
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[9], 9);
}

TEST(StructuredFamilies, StarHasCentreZero) {
  const Csr g = build_csr(8, star(8));
  EXPECT_EQ(g.degree(0), 7u);
  for (vertex_t v = 1; v < 8; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(StructuredFamilies, Grid2d) {
  const EdgeList edges = grid2d(3, 4);
  // 3 rows × 3 horizontal + 2×4 vertical = 9 + 8 = 17.
  EXPECT_EQ(edges.size(), 17u);
  const Csr g = build_csr(12, edges);
  EXPECT_EQ(count_components(g), 1u);
  EXPECT_EQ(g.degree(0), 2u);  // corner
}

TEST(RandomTree, ConnectedWithNMinusOneEdges) {
  const EdgeList edges = random_tree(64, 9);
  EXPECT_EQ(edges.size(), 63u);
  const Csr g = build_csr(64, edges);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(PlantedComponents, ExactComponentCount) {
  for (const std::uint64_t k : {1ull, 3ull, 10ull}) {
    const EdgeList edges = planted_components(k, 20, 5, 31);
    const Csr g = build_csr(k * 20, edges);
    EXPECT_EQ(count_components(g), k);
  }
}

TEST(PlantedComponents, SingletonComponents) {
  const EdgeList edges = planted_components(4, 1, 0, 0);
  EXPECT_TRUE(edges.empty());
  const Csr g = build_csr(4, edges);
  EXPECT_EQ(count_components(g), 4u);
}

TEST(Zipf, DeterministicPerSeedAndInRange) {
  ZipfSampler a(1000, 0.9, 7);
  ZipfSampler b(1000, 0.9, 7);
  ZipfSampler c(1000, 0.9, 8);
  bool diverged = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t ra = a.next();
    EXPECT_LT(ra, 1000u);
    ASSERT_EQ(ra, b.next()) << "draw " << i;
    diverged = diverged || ra != c.next();
  }
  EXPECT_TRUE(diverged);
}

TEST(Zipf, PmfIsMonotoneAndSumsToOne) {
  const ZipfSampler z(64, 1.1, 0);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < 64; ++r) {
    sum += z.probability(r);
    if (r > 0) {
      EXPECT_LT(z.probability(r), z.probability(r - 1)) << r;
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // s = 0 degenerates to uniform.
  const ZipfSampler u(10, 0.0, 0);
  for (std::uint64_t r = 0; r < 10; ++r) EXPECT_NEAR(u.probability(r), 0.1, 1e-12);
}

TEST(Zipf, ChiSquareSmokeAgainstAnalyticPmf) {
  // Empirical counts vs the analytic pmf over the head of the
  // distribution (ranks with expected count >= 5, the classic validity
  // floor; the tail is pooled into one cell). With k cells the statistic
  // is chi2(k-1); we assert against a generous 99.9%-ish bound so the
  // fixed seed can never flake while a wrong CDF (off-by-one rank, un-
  // normalised weights, biased search) blows past it immediately.
  constexpr std::uint64_t kN = 256;
  constexpr int kDraws = 200000;
  ZipfSampler z(kN, 0.9, 12345);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[z.next()];

  double chi2 = 0.0, tail_observed = 0.0, tail_expected = 0.0;
  std::size_t cells = 0;
  for (std::uint64_t r = 0; r < kN; ++r) {
    const double expected = z.probability(r) * kDraws;
    if (expected >= 5.0) {
      const double d = counts[r] - expected;
      chi2 += d * d / expected;
      ++cells;
    } else {
      tail_observed += counts[r];
      tail_expected += expected;
    }
  }
  if (tail_expected > 0.0) {
    const double d = tail_observed - tail_expected;
    chi2 += d * d / tail_expected;
    ++cells;
  }
  ASSERT_GT(cells, 50u) << "smoke needs a real distribution to bite on";
  // chi2 df ~ cells-1; mean df, sd sqrt(2 df): df + 5*sqrt(2 df) is far
  // past any sane quantile yet catches gross pmf/CDF disagreement.
  const double df = static_cast<double>(cells - 1);
  EXPECT_LT(chi2, df + 5.0 * std::sqrt(2.0 * df));
}

TEST(RandomGraph, BuildsSymmetrizedCsr) {
  const Csr g = random_graph(100, 300, 17);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 600u);  // both directions
  // Symmetry spot check.
  for (vertex_t u = 0; u < 100; ++u) {
    for (const vertex_t v : g.neighbors(u)) {
      ASSERT_TRUE(g.has_edge(v, u)) << u << "->" << v;
    }
  }
}

}  // namespace
}  // namespace crcw::graph
