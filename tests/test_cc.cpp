// Connected Components (Awerbuch–Shiloach) — the partition must equal
// union–find's for every method, graph family, and thread count.
#include "algorithms/cc.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algorithms/dispatch.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"

namespace crcw::algo {
namespace {

using graph::Csr;
using graph::vertex_t;

struct GraphCase {
  std::string name;
  Csr graph;
  std::uint64_t expected_components;
};

GraphCase make_case(const std::string& name) {
  using namespace graph;
  if (name == "path") return {name, build_csr(100, path(100)), 1};
  if (name == "star") return {name, build_csr(200, star(200)), 1};
  if (name == "cycle") return {name, build_csr(64, cycle(64)), 1};
  if (name == "grid") return {name, build_csr(100, grid2d(10, 10)), 1};
  if (name == "gnm") {
    Csr g = random_graph(300, 900, 13);
    const std::uint64_t k = count_components(g);
    return {name, std::move(g), k};
  }
  if (name == "planted5") return {name, build_csr(100, planted_components(5, 20, 6, 3)), 5};
  if (name == "isolated") return {name, build_csr(50, {}), 50};
  if (name == "twopair") return {name, build_csr(4, EdgeList{{0, 1}, {2, 3}}), 2};
  throw std::logic_error("unknown case " + name);
}

using CcParam = std::tuple<std::string, std::string, int>;

class CcMethodTest : public ::testing::TestWithParam<CcParam> {};

TEST_P(CcMethodTest, PartitionMatchesUnionFind) {
  const auto& [method, gcase, threads] = GetParam();
  const GraphCase c = make_case(gcase);
  const CcResult r = run_cc(method, c.graph, {.threads = threads});
  EXPECT_EQ(r.components, c.expected_components) << method << "/" << gcase;
  EXPECT_TRUE(graph::validate_components(c.graph, r.label)) << method << "/" << gcase;
}

TEST_P(CcMethodTest, LabelsAreRootsOfThemselves) {
  // After convergence every label must itself be labelled with itself —
  // i.e. pointer jumping reached a fixpoint.
  const auto& [method, gcase, threads] = GetParam();
  const GraphCase c = make_case(gcase);
  const CcResult r = run_cc(method, c.graph, {.threads = threads});
  for (vertex_t v = 0; v < c.graph.num_vertices(); ++v) {
    ASSERT_EQ(r.label[r.label[v]], r.label[v]) << method << "/" << gcase << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByGraphsByThreads, CcMethodTest,
    ::testing::Combine(
        ::testing::Values("gatekeeper", "gatekeeper-skip", "caslt", "critical", "min-hook"),
        ::testing::Values("path", "star", "cycle", "grid", "gnm", "planted5", "isolated",
                          "twopair"),
        ::testing::Values(1, 8)),
    [](const ::testing::TestParamInfo<CcParam>& pinfo) {
      auto name = std::get<0>(pinfo.param) + "_" + std::get<1>(pinfo.param) + "_t" +
                  std::to_string(std::get<2>(pinfo.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------

TEST(Cc, EmptyGraph) {
  const Csr g;
  const CcResult r = cc_caslt(g);
  EXPECT_TRUE(r.label.empty());
  EXPECT_EQ(r.components, 0u);
}

TEST(Cc, SingleVertex) {
  const auto g = graph::build_csr(1, {});
  const CcResult r = cc_caslt(g);
  EXPECT_EQ(r.components, 1u);
  EXPECT_EQ(r.label[0], 0u);
}

TEST(Cc, SelfLoopsAndMultiEdges) {
  graph::EdgeList edges = {{0, 0}, {0, 1}, {0, 1}, {2, 2}};
  const auto g = graph::build_csr(3, edges);
  const CcResult r = cc_caslt(g);
  EXPECT_EQ(r.components, 2u);
  EXPECT_TRUE(graph::validate_components(g, r.label));
}

TEST(Cc, IterationCountIsLogarithmic) {
  // A-S converges in O(log n) iterations; a path is the deep-tree stressor.
  const auto g = graph::build_csr(4096, graph::path(4096));
  const CcResult r = cc_caslt(g);
  EXPECT_EQ(r.components, 1u);
  EXPECT_LE(r.iterations, 30u) << "A-S must converge in O(log n) iterations";
}

TEST(Cc, ManySeedsManyShapes) {
  // Randomised property sweep: sparse through dense.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const std::uint64_t n = 100 + seed * 50;
    const std::uint64_t m = n * (1 + seed % 4);
    const auto g = graph::random_graph(n, m, seed);
    const auto expected = graph::count_components(g);
    const CcResult r = cc_caslt(g);
    ASSERT_EQ(r.components, expected) << "seed " << seed;
    ASSERT_TRUE(graph::validate_components(g, r.label)) << "seed " << seed;
  }
}

TEST(Cc, AllMethodsProduceIdenticalCanonicalLabels) {
  const auto g = graph::random_graph(200, 380, 23);
  const auto canon = graph::canonicalize_labels(cc_caslt(g).label);
  for (const auto& method : cc_methods()) {
    const CcResult r = run_cc(method, g);
    EXPECT_EQ(graph::canonicalize_labels(r.label), canon) << method;
  }
}

/// The multi-array hook record really is a spanning forest — the §7.2
/// reason CC demands single-winner CW: n − components edges, no cycles,
/// and exactly the connectivity of the full graph.
TEST(Cc, ForestEdgesFormASpanningForest) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto g = graph::random_graph(150, 300 + seed * 120, seed);
    const CcResult r = cc_caslt(g, {.threads = 8});
    ASSERT_EQ(r.forest_edges.size(), g.num_vertices() - r.components) << seed;

    // Recover endpoints from CSR slots and union them: every edge must
    // merge two distinct trees (no cycles), and the final partition must
    // equal the labels.
    std::vector<vertex_t> src(g.num_edges());
    for (vertex_t u = 0; u < g.num_vertices(); ++u) {
      for (graph::edge_t j = g.offset(u); j < g.offset(u) + g.degree(u); ++j) src[j] = u;
    }
    graph::UnionFind uf(g.num_vertices());
    for (const auto j : r.forest_edges) {
      ASSERT_LT(j, g.num_edges());
      ASSERT_TRUE(uf.unite(src[j], g.targets()[j])) << "cycle edge in forest, seed " << seed;
    }
    ASSERT_EQ(uf.num_sets(), r.components);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(uf.find(v) == uf.find(static_cast<vertex_t>(r.label[v])), true);
    }
  }
}

TEST(Cc, ForestEdgesAcrossAllGuardedMethods) {
  const auto g = graph::random_graph(120, 240, 77);
  for (const std::string method : {"gatekeeper", "gatekeeper-skip", "caslt", "critical"}) {
    const CcResult r = run_cc(method, g);
    EXPECT_EQ(r.forest_edges.size(), g.num_vertices() - r.components) << method;
  }
  // min-hook uses combining writes (no payload) — no forest by design.
  EXPECT_TRUE(run_cc("min-hook", g).forest_edges.empty());
}

TEST(Cc, DispatchRejectsNaive) {
  // §7.2: no naive CC exists — racing multi-array hooks are unsafe.
  const auto g = graph::build_csr(2, graph::path(2));
  EXPECT_THROW((void)run_cc("naive", g), std::invalid_argument);
}

}  // namespace
}  // namespace crcw::algo
