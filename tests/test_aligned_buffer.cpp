// AlignedBuffer / AlignedAllocator.
#include "util/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <vector>

namespace crcw::util {
namespace {

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer<int> buf;
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBuffer, ValueInitializesContents) {
  AlignedBuffer<std::uint64_t> buf(100);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0u);
}

TEST(AlignedBuffer, StartsOnCacheLineBoundary) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<std::uint32_t> buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineSize, 0u) << n;
  }
}

TEST(AlignedBuffer, HoldsNonCopyableAtomics) {
  AlignedBuffer<std::atomic<int>> buf(16);
  buf[3].store(42);
  EXPECT_EQ(buf[3].load(), 42);
  EXPECT_EQ(buf[0].load(), 0);
}

namespace {
int g_tracked_live = 0;
struct Tracked {
  Tracked() { ++g_tracked_live; }
  ~Tracked() { --g_tracked_live; }
};
}  // namespace

TEST(AlignedBuffer, HoldsNonTriviallyDestructibleTypes) {
  {
    AlignedBuffer<Tracked> buf(10);
    EXPECT_EQ(g_tracked_live, 10);
  }
  EXPECT_EQ(g_tracked_live, 0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(8);
  a[2] = 5;
  int* const data = a.data();

  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b[2], 5);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move): asserting moved-from state
  EXPECT_EQ(a.size(), 0u);

  AlignedBuffer<int> c(2);
  c = std::move(b);
  EXPECT_EQ(c.data(), data);
  EXPECT_EQ(c[2], 5);
}

TEST(AlignedBuffer, IterationCoversAllElements) {
  AlignedBuffer<int> buf(10);
  int k = 0;
  for (int& x : buf) x = k++;
  EXPECT_EQ(std::accumulate(buf.begin(), buf.end(), 0), 45);
}

TEST(AlignedAllocator, VectorIsAligned) {
  std::vector<double, AlignedAllocator<double>> v(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineSize, 0u);
  v.resize(5000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineSize, 0u);
}

TEST(AlignedAllocator, ComparesEqual) {
  AlignedAllocator<int> a;
  AlignedAllocator<int> b;
  EXPECT_TRUE(a == b);
}

TEST(AlignedBuffer, ParallelFirstTouchValueInitializes) {
  AlignedBuffer<std::uint64_t> buf(10'000, FirstTouch::kParallel, 4);
  EXPECT_EQ(buf.size(), 10'000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineSize, 0u);
  for (std::size_t i = 0; i < buf.size(); ++i) ASSERT_EQ(buf[i], 0u);
}

TEST(AlignedBuffer, ParallelFirstTouchFillConstructor) {
  AlignedBuffer<int> buf(10'000, 7, FirstTouch::kParallel, 4);
  for (std::size_t i = 0; i < buf.size(); ++i) ASSERT_EQ(buf[i], 7);
  // threads = 0 → OpenMP default team; must behave identically.
  AlignedBuffer<int> dflt(100, 3, FirstTouch::kParallel);
  for (std::size_t i = 0; i < dflt.size(); ++i) ASSERT_EQ(dflt[i], 3);
}

TEST(AlignedBuffer, FirstTouchFallsBackForThrowingTypes) {
  // std::vector's copy ctor can throw, so the parallel path (which cannot
  // unwind across an OpenMP region) must silently construct serially —
  // same observable result.
  const std::vector<int> proto{1, 2, 3};
  AlignedBuffer<std::vector<int>> buf(50, proto, FirstTouch::kParallel);
  for (std::size_t i = 0; i < buf.size(); ++i) ASSERT_EQ(buf[i], proto);
}

TEST(AlignedBuffer, HoldsMutexBearingTags) {
  struct MutexTag {
    std::mutex m;
    int x = 0;
  };
  AlignedBuffer<MutexTag> buf(4);
  {
    const std::lock_guard<std::mutex> lock(buf[1].m);
    buf[1].x = 9;
  }
  EXPECT_EQ(buf[1].x, 9);
}

}  // namespace
}  // namespace crcw::util
