// semijoin: probe ⋉ build against the serial baseline; the arbitrary pick
// among duplicate build keys must still be a valid witness.
#include "algorithms/semijoin.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algorithms/dispatch.hpp"
#include "util/rng.hpp"

namespace crcw::algo {
namespace {

[[nodiscard]] std::vector<std::uint64_t> draws(std::size_t n, std::uint64_t range,
                                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.bounded(range);
  return keys;
}

/// The semijoin answer that is method-independent: which probe rows
/// matched. (The build witness is arbitrary by specification.)
[[nodiscard]] std::vector<std::uint64_t> matched_probes(
    std::vector<SemijoinMatch> matches) {
  std::vector<std::uint64_t> probes;
  probes.reserve(matches.size());
  for (const auto& m : matches) probes.push_back(m.probe_index);
  std::sort(probes.begin(), probes.end());
  return probes;
}

TEST(Semijoin, EmptySides) {
  const std::vector<std::uint64_t> keys = {1, 2, 3};
  for (const auto& method : semijoin_methods()) {
    EXPECT_TRUE(run_semijoin(method, {}, keys).empty()) << method;
    EXPECT_TRUE(run_semijoin(method, keys, {}).empty()) << method;
  }
}

TEST(Semijoin, MatchesAgreeWithSerialBaseline) {
  const auto probe = draws(20000, 5000, 3);
  const auto build = draws(8000, 5000, 5);
  const auto expected = matched_probes(semijoin_serial(probe, build));
  for (const auto& method : semijoin_methods()) {
    auto matches = run_semijoin(method, probe, build);
    EXPECT_EQ(matched_probes(matches), expected) << method;
    // Every reported witness must actually hold the probed key — for any
    // resolution of the arbitrary choice.
    for (const auto& m : matches) {
      ASSERT_LT(m.build_index, build.size()) << method;
      ASSERT_EQ(build[m.build_index], probe[m.probe_index]) << method;
    }
  }
}

TEST(Semijoin, DuplicateBuildKeysYieldOneMatchPerProbeRow) {
  // Build side: the same key 1000 times. Every probe hit reports exactly
  // one witness — some build row holding that key, arbitrarily chosen.
  const std::vector<std::uint64_t> build(1000, 7);
  const std::vector<std::uint64_t> probe = {7, 8, 7, 9};
  for (const auto& method : semijoin_methods()) {
    auto matches = run_semijoin(method, probe, build);
    ASSERT_EQ(matches.size(), 2u) << method;
    for (const auto& m : matches) {
      EXPECT_TRUE(m.probe_index == 0 || m.probe_index == 2) << method;
      EXPECT_EQ(build[m.build_index], 7u) << method;
    }
  }
}

TEST(Semijoin, DisjointSidesMatchNothing) {
  const auto probe = draws(1000, 500, 13);
  std::vector<std::uint64_t> build = draws(1000, 500, 17);
  for (auto& k : build) k += 1000;  // shift out of the probe range
  for (const auto& method : semijoin_methods()) {
    EXPECT_TRUE(run_semijoin(method, probe, build).empty()) << method;
  }
}

TEST(Semijoin, ProfileCountsBuildWins) {
  const auto probe = draws(2000, 400, 19);
  const auto build = draws(2000, 400, 29);
  const auto totals = profile_semijoin("caslt", probe, build);
  ASSERT_TRUE(totals.has_value());
  // One win per distinct build key (duplicate rows lose the claim).
  std::vector<std::uint64_t> distinct = build;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  EXPECT_EQ(totals->wins, distinct.size());
  EXPECT_GE(totals->attempts, build.size());  // every build row probed >= once
  EXPECT_FALSE(profile_semijoin("serial", probe, build).has_value());
}

TEST(Semijoin, UnknownMethodThrows) {
  EXPECT_THROW((void)run_semijoin("nope", {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace crcw::algo
