// sim::Simulator — PRAM conflict-resolution semantics per access mode.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

namespace crcw::sim {
namespace {

TEST(Simulator, ReadsPrecedeWritesWithinAStep) {
  Simulator sim(AccessMode::kArbitrary, 2);
  sim.memory().poke(0, 10);
  // Every processor reads cell 0 then writes it; all must read the
  // pre-step value (§2: "reads always happen before writes").
  std::vector<word_t> seen;
  sim.step(4, [&](Simulator::Proc& p) {
    seen.push_back(p.read(0));
    p.write(0, static_cast<word_t>(p.id()));
  });
  for (const word_t v : seen) EXPECT_EQ(v, 10);
  EXPECT_NE(sim.memory().peek(0), 10);
}

TEST(Simulator, ErewRejectsConcurrentReads) {
  Simulator sim(AccessMode::kEREW, 2);
  EXPECT_THROW(sim.step(2, [](Simulator::Proc& p) { (void)p.read(0); }), ModelViolation);
}

TEST(Simulator, ErewAllowsDisjointReads) {
  Simulator sim(AccessMode::kEREW, 4);
  EXPECT_NO_THROW(sim.step(4, [](Simulator::Proc& p) { (void)p.read(p.id()); }));
}

TEST(Simulator, ErewRepeatedReadBySameProcIsFine) {
  Simulator sim(AccessMode::kEREW, 2);
  EXPECT_NO_THROW(sim.step(1, [](Simulator::Proc& p) {
    (void)p.read(0);
    (void)p.read(0);
  }));
}

TEST(Simulator, ExclusiveWriteModesRejectConcurrentWrites) {
  for (const AccessMode mode : {AccessMode::kEREW, AccessMode::kCREW}) {
    Simulator sim(mode, 2);
    try {
      sim.step(2, [](Simulator::Proc& p) { p.write(1, static_cast<word_t>(p.id())); });
      FAIL() << "expected ModelViolation under " << to_string(mode);
    } catch (const ModelViolation& v) {
      EXPECT_EQ(v.kind(), ModelViolation::Kind::kConcurrentWrite);
      EXPECT_EQ(v.addr(), 1u);
      EXPECT_EQ(v.step(), 1u);
    }
  }
}

TEST(Simulator, CrewAllowsConcurrentReads) {
  Simulator sim(AccessMode::kCREW, 2);
  EXPECT_NO_THROW(sim.step(8, [](Simulator::Proc& p) { (void)p.read(0); }));
}

TEST(Simulator, CommonAcceptsEqualValues) {
  Simulator sim(AccessMode::kCommon, 2);
  sim.step(8, [](Simulator::Proc& p) { p.write(0, 5); });
  EXPECT_EQ(sim.memory().peek(0), 5);
}

TEST(Simulator, CommonRejectsDifferingValues) {
  Simulator sim(AccessMode::kCommon, 2);
  try {
    sim.step(2, [](Simulator::Proc& p) { p.write(0, static_cast<word_t>(p.id())); });
    FAIL() << "expected CommonViolation";
  } catch (const ModelViolation& v) {
    EXPECT_EQ(v.kind(), ModelViolation::Kind::kCommonMismatch);
  }
}

TEST(Simulator, ArbitraryCommitsSomeOfferedValue) {
  Simulator sim(AccessMode::kArbitrary, 1);
  sim.step(8, [](Simulator::Proc& p) { p.write(0, static_cast<word_t>(p.id() * 10)); });
  const word_t v = sim.memory().peek(0);
  EXPECT_EQ(v % 10, 0);
  EXPECT_GE(v, 0);
  EXPECT_LE(v, 70);
}

TEST(Simulator, ArbitraryIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    Simulator sim(AccessMode::kArbitrary, 1, seed);
    sim.step(16, [](Simulator::Proc& p) { p.write(0, static_cast<word_t>(p.id())); });
    return sim.memory().peek(0);
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(Simulator, ArbitrarySeedsExerciseDifferentWinners) {
  std::set<word_t> winners;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Simulator sim(AccessMode::kArbitrary, 1, seed);
    sim.step(16, [](Simulator::Proc& p) { p.write(0, static_cast<word_t>(p.id())); });
    winners.insert(sim.memory().peek(0));
  }
  // 32 seeds over 16 contenders: overwhelmingly likely to see >1 winner.
  EXPECT_GT(winners.size(), 1u) << "adversary must vary across seeds";
}

TEST(Simulator, PriorityMinRankWins) {
  Simulator sim(AccessMode::kPriorityMinRank, 1);
  sim.step(8, [](Simulator::Proc& p) {
    if (p.id() >= 2) p.write(0, static_cast<word_t>(100 + p.id()));
  });
  EXPECT_EQ(sim.memory().peek(0), 102);
}

TEST(Simulator, PriorityMinValueWins) {
  Simulator sim(AccessMode::kPriorityMinValue, 1);
  sim.step(8, [](Simulator::Proc& p) {
    p.write(0, static_cast<word_t>((p.id() * 3 + 5) % 7));  // min value 0 at id 3
  });
  EXPECT_EQ(sim.memory().peek(0), 0);
}

TEST(Simulator, PriorityMinValueTieBreaksByRank) {
  Simulator sim(AccessMode::kPriorityMinValue, 2);
  // All write the same value; the resolution record should name proc 0.
  const StepStats stats = sim.step(4, [](Simulator::Proc& p) { p.write(0, 9); });
  EXPECT_EQ(stats.max_contention, 4u);
  EXPECT_EQ(sim.memory().peek(0), 9);
}

TEST(Simulator, StepStatsAreAccurate) {
  Simulator sim(AccessMode::kArbitrary, 8);
  const StepStats s = sim.step(4, [](Simulator::Proc& p) {
    (void)p.read(0);
    p.write(p.id() % 2, 1);  // two cells, contention 2 each
  });
  EXPECT_EQ(s.step, 1u);
  EXPECT_EQ(s.processors, 4u);
  EXPECT_EQ(s.reads, 4u);
  EXPECT_EQ(s.writes, 4u);
  EXPECT_EQ(s.cells_written, 2u);
  EXPECT_EQ(s.max_contention, 2u);
}

TEST(Simulator, WorkDepthCounters) {
  Simulator sim(AccessMode::kCommon, 1);
  sim.step(10, [](Simulator::Proc&) {});
  sim.step(20, [](Simulator::Proc&) {});
  EXPECT_EQ(sim.counters().depth, 2u);
  EXPECT_EQ(sim.counters().work, 30u);
  EXPECT_EQ(sim.history().size(), 2u);
  sim.reset_accounting();
  EXPECT_EQ(sim.counters().depth, 0u);
  EXPECT_TRUE(sim.history().empty());
}

TEST(Simulator, ModeNames) {
  EXPECT_EQ(to_string(AccessMode::kEREW), "EREW");
  EXPECT_EQ(to_string(AccessMode::kArbitrary), "CRCW-Arbitrary");
}

TEST(Simulator, TraceSummaryAndResolutions) {
  Simulator sim(AccessMode::kArbitrary, 2);
  std::ostringstream trace;
  sim.set_trace(&trace);
  sim.step(3, [](Simulator::Proc& p) { p.write(0, static_cast<word_t>(p.id())); });
  const std::string out = trace.str();
  EXPECT_NE(out.find("step 1 [CRCW-Arbitrary]"), std::string::npos);
  EXPECT_NE(out.find("3 writes into 1 cells"), std::string::npos);
  EXPECT_NE(out.find("of 3 contenders"), std::string::npos);
}

TEST(Simulator, TraceAccessesOptIn) {
  Simulator sim(AccessMode::kCommon, 2);
  std::ostringstream trace;
  sim.set_trace(&trace, {.accesses = true, .resolutions = false, .summary = false});
  sim.step(1, [](Simulator::Proc& p) {
    (void)p.read(1);
    p.write(0, 7);
  });
  const std::string out = trace.str();
  EXPECT_NE(out.find("P0 reads  [1]"), std::string::npos);
  EXPECT_NE(out.find("P0 offers [0] <- 7"), std::string::npos);
  EXPECT_EQ(out.find("step 1"), std::string::npos) << "summary disabled";
}

TEST(Simulator, TraceDisabledByNull) {
  Simulator sim(AccessMode::kCommon, 1);
  std::ostringstream trace;
  sim.set_trace(&trace);
  sim.step(1, [](Simulator::Proc& p) { p.write(0, 1); });
  sim.set_trace(nullptr);
  const auto before = trace.str().size();
  sim.step(1, [](Simulator::Proc& p) { p.write(0, 2); });
  EXPECT_EQ(trace.str().size(), before);
}

}  // namespace
}  // namespace crcw::sim
