// Parallel histograms (combining adds vs privatization).
#include "algorithms/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace crcw::algo {
namespace {

std::vector<std::uint64_t> serial_histogram(std::span<const std::uint64_t> keys,
                                            std::uint64_t buckets) {
  std::vector<std::uint64_t> counts(buckets, 0);
  for (const auto k : keys) ++counts[k];
  return counts;
}

TEST(Histogram, EmptyInput) {
  EXPECT_EQ(histogram_atomic({}, 4), (std::vector<std::uint64_t>(4, 0)));
  EXPECT_EQ(histogram_privatized({}, 4), (std::vector<std::uint64_t>(4, 0)));
}

TEST(Histogram, KnownSmall) {
  const std::vector<std::uint64_t> keys = {0, 1, 1, 3, 3, 3};
  const std::vector<std::uint64_t> expected = {1, 2, 0, 3};
  EXPECT_EQ(histogram_atomic(keys, 4), expected);
  EXPECT_EQ(histogram_privatized(keys, 4), expected);
}

TEST(Histogram, Rejections) {
  const std::vector<std::uint64_t> keys = {5};
  EXPECT_THROW((void)histogram_atomic(keys, 4), std::invalid_argument);
  EXPECT_THROW((void)histogram_privatized(keys, 4), std::invalid_argument);
  EXPECT_THROW((void)histogram_atomic(keys, 0), std::invalid_argument);
}

class HistogramRandomTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t, int>> {};

TEST_P(HistogramRandomTest, BothStrategiesMatchSerial) {
  const auto& [n, buckets, threads] = GetParam();
  util::Xoshiro256 rng(n + buckets);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.bounded(buckets);
  const auto expected = serial_histogram(keys, buckets);
  EXPECT_EQ(histogram_atomic(keys, buckets, {.threads = threads}), expected);
  EXPECT_EQ(histogram_privatized(keys, buckets, {.threads = threads}), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HistogramRandomTest,
    ::testing::Values(std::make_tuple(std::uint64_t{100}, std::uint64_t{1}, 4),  // one hot bucket
                      std::make_tuple(std::uint64_t{10000}, std::uint64_t{4}, 8),
                      std::make_tuple(std::uint64_t{10000}, std::uint64_t{1000}, 4),
                      std::make_tuple(std::uint64_t{50000}, std::uint64_t{65536}, 8)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_b" +
             std::to_string(std::get<1>(pinfo.param)) + "_t" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(Histogram, SingleHotBucketUnderContention) {
  // The §6 worst case: everyone increments one cell. Counts must be exact.
  const std::vector<std::uint64_t> keys(100000, 0);
  for (const int t : {2, 8}) {
    EXPECT_EQ(histogram_atomic(keys, 1, {.threads = t})[0], 100000u) << t;
    EXPECT_EQ(histogram_privatized(keys, 1, {.threads = t})[0], 100000u) << t;
  }
}

}  // namespace
}  // namespace crcw::algo
