// Edge-list → CSR builder options.
#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace crcw::graph {
namespace {

TEST(Builder, SymmetrizeDoublesEdges) {
  const EdgeList edges = {{0, 1}, {1, 2}};
  const Csr g = build_csr(3, edges);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(Builder, DirectedKeepsSingleDirection) {
  const EdgeList edges = {{0, 1}};
  const Csr g = build_csr(2, edges, {.symmetrize = false});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Builder, SortsNeighbors) {
  const EdgeList edges = {{0, 3}, {0, 1}, {0, 2}};
  const Csr g = build_csr(4, edges, {.symmetrize = false, .sort_neighbors = true});
  const auto n = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(Builder, DedupRemovesParallelEdges) {
  const EdgeList edges = {{0, 1}, {0, 1}, {0, 1}, {1, 2}};
  const Csr g = build_csr(3, edges, {.symmetrize = true, .dedup = true});
  EXPECT_EQ(g.num_edges(), 4u);  // 0-1 and 1-2, both directions, once each
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Builder, SelfLoopHandling) {
  const EdgeList edges = {{0, 0}, {0, 1}};
  const Csr keep = build_csr(2, edges);
  // A self-loop is stored once even when symmetrising.
  EXPECT_EQ(keep.num_edges(), 3u);
  EXPECT_TRUE(keep.has_edge(0, 0));

  const Csr drop = build_csr(2, edges, {.remove_self_loops = true});
  EXPECT_EQ(drop.num_edges(), 2u);
  EXPECT_FALSE(drop.has_edge(0, 0));
}

TEST(Builder, RejectsOutOfRangeEndpoints) {
  const EdgeList edges = {{0, 5}};
  EXPECT_THROW(build_csr(3, edges), std::invalid_argument);
}

TEST(Builder, EmptyEdgeList) {
  const Csr g = build_csr(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builder, ToEdgeListRoundTrip) {
  const EdgeList edges = {{0, 1}, {1, 2}, {2, 3}};
  const Csr g = build_csr(4, edges, {.symmetrize = false, .sort_neighbors = true});
  const EdgeList out = to_edge_list(g);
  ASSERT_EQ(out.size(), 3u);
  const Csr g2 = build_csr(4, out, {.symmetrize = false, .sort_neighbors = true});
  EXPECT_EQ(g, g2);
}

TEST(Builder, PreservesMultigraphWhenNotDeduping) {
  const EdgeList edges = {{0, 1}, {0, 1}};
  const Csr g = build_csr(2, edges, {.symmetrize = false});
  EXPECT_EQ(g.degree(0), 2u);
}

}  // namespace
}  // namespace crcw::graph
