// Randomized maximal matching via priority concurrent writes.
#include "algorithms/matching.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "graph/generators.hpp"

namespace crcw::algo {
namespace {

using graph::EdgeList;
using graph::kNoVertex;

TEST(Matching, EmptyInputs) {
  const MatchingResult r0 = maximal_matching(0, {});
  EXPECT_TRUE(r0.mate.empty());
  const MatchingResult r1 = maximal_matching(5, {});
  EXPECT_EQ(r1.mate.size(), 5u);
  for (const auto m : r1.mate) EXPECT_EQ(m, kNoVertex);
  EXPECT_TRUE(validate_matching(5, {}, r1));
}

TEST(Matching, SingleEdge) {
  const EdgeList edges = {{0, 1}};
  const MatchingResult r = maximal_matching(2, edges);
  EXPECT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.mate[0], 1u);
  EXPECT_EQ(r.mate[1], 0u);
  EXPECT_TRUE(validate_matching(2, edges, r));
}

TEST(Matching, TrianglePicksExactlyOneEdge) {
  const EdgeList edges = {{0, 1}, {1, 2}, {0, 2}};
  const MatchingResult r = maximal_matching(3, edges);
  EXPECT_EQ(r.edges.size(), 1u);
  EXPECT_TRUE(validate_matching(3, edges, r));
}

TEST(Matching, PathOfFour) {
  // 0-1-2-3: maximal matchings have 1 or 2 edges; validity demands the
  // middle edge alone, or both outer edges.
  const EdgeList edges = {{0, 1}, {1, 2}, {2, 3}};
  const MatchingResult r = maximal_matching(4, edges);
  EXPECT_TRUE(validate_matching(4, edges, r));
  EXPECT_GE(r.edges.size(), 1u);
  EXPECT_LE(r.edges.size(), 2u);
}

TEST(Matching, SelfLoopsIgnored) {
  const EdgeList edges = {{0, 0}, {0, 1}, {1, 1}};
  const MatchingResult r = maximal_matching(2, edges);
  EXPECT_TRUE(validate_matching(2, edges, r));
  EXPECT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0], 1u);
}

TEST(Matching, ParallelEdgesYieldOneMatch) {
  const EdgeList edges = {{0, 1}, {0, 1}, {1, 0}};
  const MatchingResult r = maximal_matching(2, edges);
  EXPECT_TRUE(validate_matching(2, edges, r));
  EXPECT_EQ(r.edges.size(), 1u);
}

TEST(Matching, StarMatchesExactlyOneLeaf) {
  const EdgeList edges = graph::star(100);
  const MatchingResult r = maximal_matching(100, edges);
  EXPECT_TRUE(validate_matching(100, edges, r));
  EXPECT_EQ(r.edges.size(), 1u) << "all star edges share the centre";
}

TEST(Matching, RejectsBadEndpoint) {
  const EdgeList edges = {{0, 7}};
  EXPECT_THROW((void)maximal_matching(3, edges), std::invalid_argument);
}

using MatchParam = std::tuple<std::uint64_t, std::uint64_t, int>;

class MatchingRandomTest : public ::testing::TestWithParam<MatchParam> {};

TEST_P(MatchingRandomTest, ValidAndMaximalAcrossSeedsAndThreads) {
  const auto& [n, m, threads] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const EdgeList edges = graph::gnm(n, m, seed);
    const MatchingResult r =
        maximal_matching(n, edges, {.threads = threads, .seed = seed * 13 + 1});
    ASSERT_TRUE(validate_matching(n, edges, r))
        << "n=" << n << " m=" << m << " seed=" << seed;
    // O(log m) w.h.p. convergence, with slack.
    ASSERT_LE(r.rounds, 60u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatchingRandomTest,
    ::testing::Values(std::make_tuple(std::uint64_t{10}, std::uint64_t{20}, 1),
                      std::make_tuple(std::uint64_t{100}, std::uint64_t{300}, 4),
                      std::make_tuple(std::uint64_t{1000}, std::uint64_t{500}, 4),
                      std::make_tuple(std::uint64_t{1000}, std::uint64_t{5000}, 8),
                      std::make_tuple(std::uint64_t{5000}, std::uint64_t{20000}, 8)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_m" +
             std::to_string(std::get<1>(pinfo.param)) + "_t" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(Matching, PathGraphNearHalfMatched) {
  // On a long path a maximal matching covers at least 1/2 of the maximum
  // (n/2); check the size lower bound m* >= matched_max / 2 = n/4 - ish.
  const std::uint64_t n = 1000;
  const EdgeList edges = graph::path(n);
  const MatchingResult r = maximal_matching(n, edges);
  EXPECT_TRUE(validate_matching(n, edges, r));
  EXPECT_GE(r.edges.size(), n / 4);
}

TEST(ValidateMatching, CatchesBrokenResults) {
  const EdgeList edges = {{0, 1}, {2, 3}};
  MatchingResult r = maximal_matching(4, edges);
  ASSERT_TRUE(validate_matching(4, edges, r));

  MatchingResult not_maximal = r;
  not_maximal.mate.assign(4, graph::kNoVertex);
  not_maximal.edges.clear();
  EXPECT_FALSE(validate_matching(4, edges, not_maximal));

  MatchingResult broken_involution = r;
  broken_involution.mate[0] = 2;
  EXPECT_FALSE(validate_matching(4, edges, broken_involution));

  MatchingResult bad_edge = r;
  bad_edge.edges.push_back(99);
  EXPECT_FALSE(validate_matching(4, edges, bad_edge));
}

}  // namespace
}  // namespace crcw::algo
