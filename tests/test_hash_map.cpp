// ConcurrentHashMap: claim + round-tag composition, grow with values,
// round monotonicity across migration.
#include "ds/concurrent_hash_map.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"

namespace crcw::ds {
namespace {

using Map = ConcurrentHashMap<std::uint64_t, std::uint64_t>;

TEST(HashMap, InsertFirstThenFind) {
  Map map(16);
  EXPECT_EQ(map.insert_first(7, 70), SetInsert::kInserted);
  EXPECT_EQ(map.insert_first(7, 71), SetInsert::kFound);  // loser, value kept
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 70u);
  EXPECT_EQ(map.find(8), nullptr);
  EXPECT_TRUE(map.contains(7));
  EXPECT_EQ(map.size(), 1u);
}

TEST(HashMap, SentinelKeyThrows) {
  Map map(4);
  EXPECT_THROW((void)map.insert_first(Map::kEmptyKey, 0), std::invalid_argument);
  EXPECT_THROW((void)map.upsert(1, Map::kEmptyKey, 0), std::invalid_argument);
  EXPECT_EQ(map.find(Map::kEmptyKey), nullptr);
}

TEST(HashMap, UpsertOneWinnerPerRound) {
  Map map(16);
  EXPECT_EQ(map.upsert(1, 7, 100), MapUpsert::kWon);
  EXPECT_EQ(map.upsert(1, 7, 200), MapUpsert::kLost);  // round 1 closed
  EXPECT_EQ(*map.find(7), 100u);
  EXPECT_EQ(map.upsert(2, 7, 300), MapUpsert::kWon);  // round 2 reopens
  EXPECT_EQ(*map.find(7), 300u);
  EXPECT_EQ(map.size(), 1u);  // still one key
}

TEST(HashMap, UpsertWithRunsFactoryOnlyForWinner) {
  Map map(16);
  int calls = 0;
  const auto make = [&]() -> std::uint64_t {
    ++calls;
    return 5;
  };
  EXPECT_EQ(map.upsert_with(1, 9, make), MapUpsert::kWon);
  EXPECT_EQ(map.upsert_with(1, 9, make), MapUpsert::kLost);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(*map.find(9), 5u);
}

TEST(HashMap, FullTableReportsKFull) {
  HashConfig cfg;
  cfg.max_load = 1.0;
  Map map(2, cfg);
  ASSERT_EQ(map.bucket_count(), 2u);
  EXPECT_EQ(map.upsert(1, 10, 1), MapUpsert::kWon);
  EXPECT_EQ(map.upsert(1, 11, 2), MapUpsert::kWon);
  EXPECT_EQ(map.upsert(1, 12, 3), MapUpsert::kFull);
}

TEST(HashMap, ForEachSeesCommittedPairs) {
  Map map(64);
  for (std::uint64_t k = 0; k < 40; ++k) (void)map.insert_first(k, k * 10);
  std::map<std::uint64_t, std::uint64_t> seen;
  map.for_each([&](std::uint64_t k, const std::uint64_t& v) { seen[k] = v; });
  ASSERT_EQ(seen.size(), 40u);
  for (const auto& [k, v] : seen) EXPECT_EQ(v, k * 10);
}

TEST(HashMap, GrowCarriesValuesAndCommittedRounds) {
  Map map(8);
  ASSERT_EQ(map.upsert(5, 1, 111), MapUpsert::kWon);
  ASSERT_EQ(map.upsert(5, 2, 222), MapUpsert::kWon);
  const std::uint64_t before = map.bucket_count();

  map.grow_prepare();
  map.grow_help();
  map.grow_finish();

  EXPECT_GT(map.bucket_count(), before);
  ASSERT_NE(map.find(1), nullptr);
  EXPECT_EQ(*map.find(1), 111u);
  EXPECT_EQ(*map.find(2), 222u);
  // Round monotonicity survived the swap: round 5 is still committed, so a
  // round-5 (or older) upsert must lose; round 6 must win.
  EXPECT_EQ(map.upsert(5, 1, 999), MapUpsert::kLost);
  EXPECT_EQ(map.upsert(4, 2, 999), MapUpsert::kLost);
  EXPECT_EQ(*map.find(1), 111u);
  EXPECT_EQ(map.upsert(6, 1, 666), MapUpsert::kWon);
  EXPECT_EQ(*map.find(1), 666u);
}

TEST(HashMap, RepeatedGrowsKeepEveryPair) {
  Map map(4);
  std::map<std::uint64_t, std::uint64_t> reference;
  round_t round = 0;
  for (std::uint64_t k = 1; k <= 500; ++k) {
    ++round;
    ASSERT_EQ(map.upsert(round, k, k + 7), MapUpsert::kWon);
    reference[k] = k + 7;
    map.maybe_grow_parallel(2);
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [k, v] : reference) {
    ASSERT_NE(map.find(k), nullptr) << "key " << k;
    EXPECT_EQ(*map.find(k), v);
  }
}

TEST(HashMap, ParallelUpsertOneWinnerPerKeyPerRound) {
  const int threads = std::max(4, omp_get_max_threads());
  constexpr std::uint64_t kKeys = 64;
  Map map(kKeys);
  for (round_t round = 1; round <= 20; ++round) {
    std::vector<std::atomic<int>> winners(kKeys);
#pragma omp parallel num_threads(threads)
    {
      const auto tid = static_cast<std::uint64_t>(omp_get_thread_num());
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        // Winner encodes its thread id so the audit can check the
        // committed value belongs to the (single) winner.
        if (map.upsert(round, k, round * 1000 + tid) == MapUpsert::kWon) {
          winners[k].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    // Post-barrier audit (the omp region's end is the barrier).
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(winners[k].load(), 1) << "round " << round << " key " << k;
      const std::uint64_t* v = map.find(k);
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v / 1000, round);  // this round's write, not a stale one
      EXPECT_LT(*v % 1000, static_cast<std::uint64_t>(threads));
    }
  }
  EXPECT_EQ(map.size(), kKeys);
}

TEST(HashMap, BacklogSizedGrowIsOneGrowNotACascade) {
  Map map(4);
  ASSERT_EQ(map.bucket_count(), 8u);  // 4 keys at max_load 0.5
  // Sizing for a 1000-key backlog must land in one grow, big enough that
  // 1000 inserts then proceed without any further grow.
  EXPECT_TRUE(map.maybe_grow_for_backlog(1000, 2));
  const std::uint64_t grown = map.bucket_count();
  EXPECT_GE(grown, 2048u);  // 1000 / 0.5 rounded to pow2
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_EQ(map.upsert(k, k, k), MapUpsert::kWon);
  }
  EXPECT_FALSE(map.needs_grow());
  EXPECT_EQ(map.bucket_count(), grown);
  // A backlog that already fits is a no-op.
  EXPECT_FALSE(map.maybe_grow_for_backlog(1, 2));
  EXPECT_EQ(map.bucket_count(), grown);
}

TEST(HashMap, EraseArbitratesAgainstSameRoundUpserts) {
  Map map(16);
  ASSERT_EQ(map.upsert(1, 7, 70), MapUpsert::kWon);

  // Round 2: the erase wins the (key, round) CAS; a same-round upsert
  // must lose and observe the tombstone (find() returns nullptr).
  EXPECT_EQ(map.erase(2, 7), MapUpsert::kWon);
  EXPECT_EQ(map.upsert(2, 7, 71), MapUpsert::kLost);
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_FALSE(map.contains(7));
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.occupied(), 1u);  // the bucket stays claimed
  EXPECT_EQ(map.tombstones(), 1u);

  // Round 3, reversed: the upsert wins first, the erase loses.
  EXPECT_EQ(map.upsert(3, 7, 72), MapUpsert::kWon);
  EXPECT_EQ(map.erase(3, 7), MapUpsert::kLost);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 72u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.tombstones(), 0u);  // the revive cleared the tombstone
}

TEST(HashMap, EraseOfAbsentKeyStillArbitrates) {
  // Erasing a key that was never inserted claims and tombstones a bucket,
  // so a same-round upsert loser observes the erase's commit — the
  // arbitration is symmetric whether or not the key existed.
  Map map(16);
  EXPECT_EQ(map.erase(1, 5), MapUpsert::kWon);
  EXPECT_EQ(map.upsert(1, 5, 50), MapUpsert::kLost);
  EXPECT_EQ(map.find(5), nullptr);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.occupied(), 1u);
  EXPECT_EQ(map.tombstones(), 1u);
  // Double erase in a later round wins the round but moves no counter.
  EXPECT_EQ(map.erase(2, 5), MapUpsert::kWon);
  EXPECT_EQ(map.tombstones(), 1u);
}

TEST(HashMap, InsertFirstRevivesTombstonedKeys) {
  Map map(16);
  ASSERT_EQ(map.upsert(1, 3, 30), MapUpsert::kWon);
  ASSERT_EQ(map.erase(2, 3), MapUpsert::kWon);
  // Build-phase revive: first-writer-wins on the liveness bit.
  EXPECT_EQ(map.insert_first(3, 31), SetInsert::kInserted);
  EXPECT_EQ(map.insert_first(3, 32), SetInsert::kFound);
  ASSERT_NE(map.find(3), nullptr);
  EXPECT_EQ(*map.find(3), 31u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.tombstones(), 0u);
}

TEST(HashMap, ReclaimDropsTombstonesAndShrinks) {
  Map map(500);
  const std::uint64_t grown = map.bucket_count();
  EXPECT_GE(grown, 1024u);
  round_t r = 1;
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_EQ(map.upsert(r, k, k * 10), MapUpsert::kWon);
  }
  ++r;
  for (std::uint64_t k = 8; k < 500; ++k) {
    ASSERT_EQ(map.erase(r, k), MapUpsert::kWon);
  }
  EXPECT_TRUE(map.needs_reclaim());
  map.reclaim_parallel(2);
  EXPECT_EQ(map.bucket_count(), 16u);  // 8 live keys at 0.5 → 16 buckets
  EXPECT_EQ(map.size(), 8u);
  EXPECT_EQ(map.occupied(), 8u);
  EXPECT_EQ(map.tombstones(), 0u);
  for (std::uint64_t k = 0; k < 8; ++k) {
    ASSERT_NE(map.find(k), nullptr);
    EXPECT_EQ(*map.find(k), k * 10);
  }
  for (std::uint64_t k = 8; k < 500; ++k) ASSERT_EQ(map.find(k), nullptr);
  // Round monotonicity survives the rebuild: round r is still closed for
  // surviving keys, and the erased keys' rounds were dropped with them.
  ++r;
  EXPECT_EQ(map.upsert(r, 0, 999), MapUpsert::kWon);
  EXPECT_EQ(map.upsert(r, 0, 998), MapUpsert::kLost);
}

TEST(HashMap, GrowCarriesTombstonesAway) {
  // Either migration direction reclaims: a grow after churn drops dead
  // buckets instead of copying them.
  Map map(8);
  round_t r = 1;
  for (std::uint64_t k = 0; k < 8; ++k) ASSERT_EQ(map.upsert(r, k, k), MapUpsert::kWon);
  ++r;
  for (std::uint64_t k = 0; k < 4; ++k) ASSERT_EQ(map.erase(r, k), MapUpsert::kWon);
  map.grow_parallel(2);
  EXPECT_EQ(map.size(), 4u);
  EXPECT_EQ(map.occupied(), 4u);
  EXPECT_EQ(map.tombstones(), 0u);
  for (std::uint64_t k = 4; k < 8; ++k) EXPECT_TRUE(map.contains(k));
}

TEST(HashMap, ParallelMixedEraseUpsertOneWinnerPerKeyPerRound) {
  // The tentpole's contract at table level: threads erase AND upsert the
  // same keys in the same round; per (key, round) exactly one op commits,
  // and post-barrier liveness matches the winning op's kind.
  const int threads = std::max(4, omp_get_max_threads());
  constexpr std::uint64_t kKeys = 256;
  Map map(kKeys * 2);
  round_t r = 1;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(map.upsert(r, k, 1), MapUpsert::kWon);
  }
  for (int round = 2; round <= 6; ++round) {
    r = static_cast<round_t>(round);
    std::vector<int> winners(kKeys, 0);
    std::vector<unsigned char> erase_won(kKeys, 0);
#pragma omp parallel num_threads(threads)
    {
      const int tid = omp_get_thread_num();
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        // Even threads erase, odd threads upsert — every key contested.
        const MapUpsert out = tid % 2 == 0 ? map.erase(r, k)
                                           : map.upsert(r, k, r * 1000 + k);
        if (out == MapUpsert::kWon) {
#pragma omp atomic
          ++winners[k];
          if (tid % 2 == 0) erase_won[k] = 1;
        }
      }
    }
    std::uint64_t live = 0;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(winners[k], 1) << "key " << k << " round " << round;
      const std::uint64_t* v = map.find(k);
      if (erase_won[k] != 0) {
        ASSERT_EQ(v, nullptr) << "key " << k;
      } else {
        ASSERT_NE(v, nullptr) << "key " << k;
        ASSERT_EQ(*v, r * 1000 + k);
        ++live;
      }
    }
    ASSERT_EQ(map.size(), live);  // counters track exactly the live keys
  }
}

TEST(HashMap, TelemetryCountsTombstonesAndReclaims) {
  obs::MetricsRegistry local;
  {
    const obs::ScopedRegistry scoped(local);
    HashConfig cfg;
    cfg.telemetry = true;
    cfg.site_name = "unit-map-churn";
    Map map(64, cfg);
    round_t r = 1;
    for (std::uint64_t k = 0; k < 32; ++k) (void)map.upsert(r, k, k);
    ++r;
    for (std::uint64_t k = 0; k < 32; ++k) (void)map.erase(r, k);
    map.reclaim_parallel(1);
    map.flush_round();
  }
  const obs::ContentionTotals t = local.totals();
  // One committed erase per key — the one-CAS-per-(key, round) pin the
  // churn bench divides out — and every tombstone dropped by the rebuild.
  EXPECT_EQ(t.tombstones, 32u);
  EXPECT_EQ(t.reclaimed, 32u);
}

TEST(HashMap, TelemetrySkipsAtomicsForClosedRounds) {
  obs::MetricsRegistry local;
  {
    const obs::ScopedRegistry scoped(local);
    HashConfig cfg;
    cfg.telemetry = true;
    cfg.site_name = "unit-map";
    Map map(16, cfg);
    ASSERT_EQ(map.upsert(1, 7, 1), MapUpsert::kWon);  // claim CAS + tag CAS
    const std::uint64_t after_win = local.totals().atomics;
    EXPECT_EQ(after_win, 2u);
    // A closed-round upsert takes the CAS-LT skip: no new atomic counted.
    ASSERT_EQ(map.upsert(1, 7, 2), MapUpsert::kLost);
    EXPECT_EQ(local.totals().atomics, after_win);
    map.flush_round();
  }
  EXPECT_EQ(local.totals().wins, 1u);
}

}  // namespace
}  // namespace crcw::ds
