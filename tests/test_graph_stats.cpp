// Graph statistics.
#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace crcw::graph {
namespace {

TEST(GraphStats, EmptyGraph) {
  const GraphStats s = compute_stats(Csr{});
  EXPECT_EQ(s.vertices, 0u);
  EXPECT_EQ(s.directed_slots, 0u);
}

TEST(GraphStats, StarShape) {
  const auto g = build_csr(9, star(9));
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.vertices, 9u);
  EXPECT_EQ(s.directed_slots, 16u);
  EXPECT_EQ(s.max_degree, 8u);
  EXPECT_EQ(s.isolated, 0u);
  EXPECT_EQ(s.components, 1u);
  EXPECT_EQ(s.self_loop_slots, 0u);
  // 8 leaves of degree 1 in bucket 0, centre degree 8 in bucket 3.
  ASSERT_EQ(s.log_degree_histogram.size(), 4u);
  EXPECT_EQ(s.log_degree_histogram[0], 8u);
  EXPECT_EQ(s.log_degree_histogram[3], 1u);
}

TEST(GraphStats, IsolatedAndSelfLoops) {
  EdgeList edges = {{0, 0}, {1, 2}};
  const auto g = build_csr(4, edges);
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.isolated, 1u);  // vertex 3
  EXPECT_EQ(s.self_loop_slots, 1u);
  EXPECT_EQ(s.components, 3u);
}

TEST(GraphStats, CollisionIndexOrdersStarAboveGnm) {
  // A star concentrates all collisions on one vertex; G(n,m) at the same
  // size spreads them — the index must reflect that.
  const auto st = compute_stats(build_csr(1000, star(1000)));
  const auto rnd = compute_stats(random_graph(1000, 999, 4));
  EXPECT_GT(st.collision_index, 5.0 * rnd.collision_index);
}

TEST(GraphStats, PrintContainsKeyLines) {
  const auto g = random_graph(50, 100, 1);
  std::ostringstream os;
  print_stats(os, compute_stats(g));
  const std::string out = os.str();
  EXPECT_NE(out.find("vertices           50"), std::string::npos);
  EXPECT_NE(out.find("collision index"), std::string::npos);
  EXPECT_NE(out.find("degree histogram"), std::string::npos);
}

}  // namespace
}  // namespace crcw::graph
