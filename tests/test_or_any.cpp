// Parallel OR / ANY — the O(1) CRCW separator primitive.
#include "algorithms/or_any.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace crcw::algo {
namespace {

using OrFn = std::function<bool(std::span<const std::uint8_t>, const OrOptions&)>;

struct OrCase {
  std::string name;
  OrFn fn;
};

class OrMethodTest : public ::testing::TestWithParam<int> {
 protected:
  static std::vector<OrCase> methods() {
    return {{"naive", parallel_or_naive},
            {"gatekeeper", parallel_or_gatekeeper},
            {"caslt", parallel_or_caslt}};
  }
};

TEST_P(OrMethodTest, EmptyIsFalse) {
  const OrOptions opts{.threads = GetParam()};
  for (const auto& m : methods()) {
    EXPECT_FALSE(m.fn({}, opts)) << m.name;
  }
}

TEST_P(OrMethodTest, AllZeros) {
  const OrOptions opts{.threads = GetParam()};
  const std::vector<std::uint8_t> bits(1000, 0);
  for (const auto& m : methods()) EXPECT_FALSE(m.fn(bits, opts)) << m.name;
}

TEST_P(OrMethodTest, SingleBitAnywhere) {
  const OrOptions opts{.threads = GetParam()};
  for (const std::size_t pos : {0u, 1u, 499u, 998u, 999u}) {
    std::vector<std::uint8_t> bits(1000, 0);
    bits[pos] = 1;
    for (const auto& m : methods()) EXPECT_TRUE(m.fn(bits, opts)) << m.name << "@" << pos;
  }
}

TEST_P(OrMethodTest, AllOnesMaximumContention) {
  const OrOptions opts{.threads = GetParam()};
  const std::vector<std::uint8_t> bits(5000, 1);
  for (const auto& m : methods()) EXPECT_TRUE(m.fn(bits, opts)) << m.name;
}

INSTANTIATE_TEST_SUITE_P(Threads, OrMethodTest, ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "t" + std::to_string(pinfo.param);
                         });

TEST(AnyOf, PredicateForm) {
  EXPECT_TRUE(any_of_caslt(100, [](std::uint64_t i) { return i == 57; }));
  EXPECT_FALSE(any_of_caslt(100, [](std::uint64_t i) { return i > 1000; }));
  EXPECT_FALSE(any_of_caslt(0, [](std::uint64_t) { return true; }));
}

TEST(AnyOf, UsedAsTerminationProbe) {
  // The kernel-style use: "is any vertex still active?"
  std::vector<std::uint8_t> active(256, 0);
  active[200] = 1;
  EXPECT_TRUE(any_of_caslt(active.size(), [&](std::uint64_t i) { return active[i] != 0; }));
  active[200] = 0;
  EXPECT_FALSE(any_of_caslt(active.size(), [&](std::uint64_t i) { return active[i] != 0; }));
}

}  // namespace
}  // namespace crcw::algo
