// Control-byte sidecar probing (ctest label ds): the H2 fingerprint slice,
// the filter-with-verify walk, tombstone bytes across erase/revive/reclaim,
// and the group-vs-scalar equivalence that lets HashConfig::group_probe be
// a pure A/B lever. The sidecar is only ever a FILTER — these tests pin
// that discipline by cross-checking every group-path answer against the
// scalar walk and the authoritative bucket words.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "ds/concurrent_hash_map.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "ds/hash_common.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace crcw::ds {
namespace {

using Map = ConcurrentHashMap<std::uint64_t, std::uint64_t>;
using Set = ConcurrentHashSet<>;

HashConfig probing(bool group, bool telemetry = false) {
  HashConfig cfg;
  cfg.group_probe = group;
  cfg.telemetry = telemetry;
  cfg.site_name = "probe-test";
  return cfg;
}

// -- fingerprint slice -------------------------------------------------------

TEST(HashProbe, H2SliceIndependentOfBucketAndShardBits) {
  util::Xoshiro256 rng(7);
  for (int iter = 0; iter < 256; ++iter) {
    const std::uint64_t mixed = rng.next();
    const std::uint8_t fp = ctrl_h2(mixed);
    EXPECT_NE(fp, kCtrlEmpty);
    EXPECT_NE(fp, kCtrlTombstone);
    EXPECT_EQ(fp & 0x80u, 0x80u);  // full bytes never collide with controls
    // Bits [0, 39) feed bucket homes (mix64 & mask) and the serve shard
    // router (mix64 >> 32 over <= 2^7 shards). Flipping any of them must
    // leave the fingerprint alone...
    for (unsigned bit = 0; bit < kH2Shift; ++bit) {
      EXPECT_EQ(ctrl_h2(mixed ^ (std::uint64_t{1} << bit)), fp) << "bit " << bit;
    }
    // ...while every bit of the [39, 46) slice lands in the fingerprint.
    for (unsigned bit = kH2Shift; bit < kH2Shift + 7; ++bit) {
      EXPECT_NE(ctrl_h2(mixed ^ (std::uint64_t{1} << bit)), fp) << "bit " << bit;
    }
    // Bits above the slice are ignored too.
    EXPECT_EQ(ctrl_h2(mixed ^ (std::uint64_t{1} << (kH2Shift + 7))), fp);
  }
}

TEST(HashProbe, FingerprintsSpreadWithinOneProbeChain) {
  // Keys whose homes collide under a small mask still fan out across H2
  // values — the whole point of slicing H2 from independent mix64 bits.
  constexpr std::uint64_t kMask = 63;
  std::set<std::uint8_t> fps;
  std::uint64_t found = 0;
  for (std::uint64_t k = 0; found < 64; ++k) {
    const std::uint64_t mixed = mix64(k);
    if ((mixed & kMask) != 0) continue;  // same home bucket only
    fps.insert(ctrl_h2(mixed));
    ++found;
  }
  // 64 same-home keys over 128 fingerprint values: expect rich diversity
  // (a correlated slice would collapse to a handful).
  EXPECT_GE(fps.size(), 16u);
}

TEST(HashProbe, GroupWalkCoversEveryLaneFromEveryHome) {
  constexpr std::uint64_t kBuckets = 64;
  for (std::uint64_t home = 0; home < kBuckets; ++home) {
    std::set<std::uint64_t> visited;
    std::uint64_t steps = 0;
    GroupWalk walk(home, kBuckets);
    for (std::uint32_t lanes = walk.first(); !walk.done(); lanes = walk.next()) {
      ++steps;
      for (unsigned lane = 0; lane < util::kGroupWidth; ++lane) {
        if ((lanes >> lane) & 1u) visited.insert(walk.base() + lane);
      }
    }
    EXPECT_EQ(steps, kBuckets / util::kGroupWidth + 1) << "home " << home;
    EXPECT_EQ(visited.size(), kBuckets) << "home " << home;  // full coverage
  }
}

// -- H2 collisions: verify, then continue ------------------------------------

/// Two distinct keys with the same home bucket AND the same fingerprint
/// under `mask` — the walk must verify the first key's bucket, classify it
/// a false positive, and probe on.
std::pair<std::uint64_t, std::uint64_t> h2_colliding_pair(std::uint64_t mask) {
  std::map<std::pair<std::uint64_t, std::uint8_t>, std::uint64_t> seen;
  for (std::uint64_t k = 0;; ++k) {
    const std::uint64_t mixed = mix64(k);
    const auto bin = std::make_pair(mixed & mask, ctrl_h2(mixed));
    const auto [it, fresh] = seen.emplace(bin, k);
    if (!fresh) return {it->second, k};
  }
}

TEST(HashProbe, H2CollisionVerifiesThenContinues) {
  HashConfig cfg = probing(/*group=*/true, /*telemetry=*/true);
  cfg.max_load = 0.5;
  Set set(32, cfg);  // 64 buckets
  const auto [k1, k2] = h2_colliding_pair(set.bucket_count() - 1);
  ASSERT_EQ(ctrl_h2(mix64(k1)), ctrl_h2(mix64(k2)));

  EXPECT_EQ(set.insert(k1), SetInsert::kInserted);
  // k2's walk hits k1's fingerprint-matched bucket first, verifies the
  // claim word, finds a stranger, and moves on — a counted false positive.
  EXPECT_EQ(set.insert(k2), SetInsert::kInserted);
  EXPECT_TRUE(set.contains(k1));
  EXPECT_TRUE(set.contains(k2));
  EXPECT_NE(set.debug_bucket_of(k1), set.debug_bucket_of(k2));
  EXPECT_GE(set.telemetry().site()->totals().fingerprint_fps, 1u);

  // Same walk, same verdicts, when re-offered (kFound via verified hits).
  EXPECT_EQ(set.insert(k1), SetInsert::kFound);
  EXPECT_EQ(set.insert(k2), SetInsert::kFound);
  EXPECT_EQ(set.erase(k2), true);
  EXPECT_TRUE(set.contains(k1));
  EXPECT_FALSE(set.contains(k2));
}

// -- tombstone bytes across erase / revive / reclaim -------------------------

TEST(HashProbe, SetCtrlByteTracksLifecycle) {
  Set set(64, probing(true));
  const std::uint64_t key = 1234;
  const std::uint8_t fp = ctrl_h2(mix64(key));

  ASSERT_EQ(set.insert(key), SetInsert::kInserted);
  const std::uint64_t b = set.debug_bucket_of(key);
  ASSERT_NE(b, ~std::uint64_t{0});
  EXPECT_EQ(set.debug_ctrl(b), fp);

  EXPECT_TRUE(set.erase(key));
  EXPECT_EQ(set.debug_ctrl(b), kCtrlTombstone);
  EXPECT_FALSE(set.contains(key));
  EXPECT_FALSE(set.erase(key));  // already dead: no second winner

  // Revive republishes the fingerprint byte.
  EXPECT_EQ(set.insert(key), SetInsert::kInserted);
  EXPECT_EQ(set.debug_ctrl(b), fp);
  EXPECT_TRUE(set.contains(key));

  // Erase + reclaim: the rebuilt array drops the bucket and its byte.
  EXPECT_TRUE(set.erase(key));
  set.reclaim_parallel(1);
  EXPECT_EQ(set.debug_bucket_of(key), ~std::uint64_t{0});
  EXPECT_EQ(set.size(), 0u);
  for (std::uint64_t i = 0; i < set.bucket_count(); ++i) {
    EXPECT_EQ(set.debug_ctrl(i), kCtrlEmpty);
  }
}

TEST(HashProbe, MapCtrlByteTracksRoundArbitratedLifecycle) {
  Map map(64, probing(true));
  const std::uint64_t key = 99;
  const std::uint8_t fp = ctrl_h2(mix64(key));

  ASSERT_EQ(map.upsert(1, key, 7), MapUpsert::kWon);
  const std::uint64_t b = map.debug_bucket_of(key);
  ASSERT_NE(b, ~std::uint64_t{0});
  EXPECT_EQ(map.debug_ctrl(b), fp);

  ASSERT_EQ(map.erase(2, key), MapUpsert::kWon);
  EXPECT_EQ(map.debug_ctrl(b), kCtrlTombstone);
  EXPECT_EQ(map.find(key), nullptr);

  // Round-arbitrated revive: the round winner republishes the byte.
  ASSERT_EQ(map.upsert(3, key, 8), MapUpsert::kWon);
  EXPECT_EQ(map.debug_ctrl(b), fp);
  ASSERT_NE(map.find(key), nullptr);
  EXPECT_EQ(*map.find(key), 8u);

  // Erase-of-absent claims and immediately tombstones a bucket — its byte
  // must say so, or every later walk would re-verify a dead stranger.
  const std::uint64_t absent = 4242;
  ASSERT_EQ(map.erase(4, absent), MapUpsert::kWon);
  const std::uint64_t ab = map.debug_bucket_of(absent);
  ASSERT_NE(ab, ~std::uint64_t{0});
  EXPECT_EQ(map.debug_ctrl(ab), kCtrlTombstone);

  // Reclaim drops both tombstones (the revived key is live and survives).
  ASSERT_EQ(map.erase(5, key), MapUpsert::kWon);
  map.reclaim_parallel(1);
  EXPECT_EQ(map.debug_bucket_of(key), ~std::uint64_t{0});
  EXPECT_EQ(map.debug_bucket_of(absent), ~std::uint64_t{0});
  EXPECT_EQ(map.size(), 0u);
}

TEST(HashProbe, GrowMigrationRebuildsTheSidecar) {
  HashConfig cfg = probing(true);
  Set set(32, cfg);  // 64 buckets at max_load 0.5
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; k <= 60; ++k) {
    keys.push_back(k * 2654435761u);
    ASSERT_EQ(set.insert(keys.back()), SetInsert::kInserted);
  }
  ASSERT_TRUE(set.needs_grow());
  const std::uint64_t before = set.bucket_count();
  set.grow_parallel(2);
  EXPECT_GT(set.bucket_count(), before);
  // Every migrated bucket's byte is its key's fingerprint in the NEW
  // array — the first post-swap walk must find a fully populated sidecar.
  for (const std::uint64_t k : keys) {
    EXPECT_TRUE(set.contains(k));
    const std::uint64_t b = set.debug_bucket_of(k);
    ASSERT_NE(b, ~std::uint64_t{0});
    EXPECT_EQ(set.debug_ctrl(b), ctrl_h2(mix64(k)));
  }
}

// -- group/scalar equivalence ------------------------------------------------

TEST(HashProbe, SetGroupAndScalarWalksAgreeOnRandomChurn) {
  Set grouped(256, probing(true));
  Set scalar(256, probing(false));
  util::Xoshiro256 rng(42);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.bounded(512);  // dense: collisions + revives
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(grouped.insert(key), scalar.insert(key)) << "op " << op;
        break;
      case 1:
        ASSERT_EQ(grouped.erase(key), scalar.erase(key)) << "op " << op;
        break;
      default:
        ASSERT_EQ(grouped.contains(key), scalar.contains(key)) << "op " << op;
    }
    ASSERT_EQ(grouped.size(), scalar.size()) << "op " << op;
  }
  // Final sweep: identical membership, bucket for bucket of key space.
  for (std::uint64_t k = 0; k < 512; ++k) {
    ASSERT_EQ(grouped.contains(k), scalar.contains(k)) << "key " << k;
  }
}

TEST(HashProbe, MapGroupAndScalarWalksAgreeAcrossRounds) {
  Map grouped(128, probing(true));
  Map scalar(128, probing(false));
  util::Xoshiro256 rng(1337);
  for (round_t r = 1; r <= 300; ++r) {
    for (int i = 0; i < 16; ++i) {
      const std::uint64_t key = rng.bounded(96);
      if (rng.bounded(4) == 0) {
        ASSERT_EQ(grouped.erase(r, key), scalar.erase(r, key));
      } else {
        const std::uint64_t v = r * 1000 + static_cast<std::uint64_t>(i);
        ASSERT_EQ(grouped.upsert(r, key, v), scalar.upsert(r, key, v));
      }
    }
    if (r % 64 == 0) {
      grouped.reclaim_parallel(1);
      scalar.reclaim_parallel(1);
    }
    for (std::uint64_t k = 0; k < 96; ++k) {
      const std::uint64_t* a = grouped.find(k);
      const std::uint64_t* b = scalar.find(k);
      ASSERT_EQ(a == nullptr, b == nullptr) << "round " << r << " key " << k;
      if (a != nullptr) {
        ASSERT_EQ(*a, *b);
      }
    }
  }
}

TEST(HashProbe, FullTableReportsKFullInBothModes) {
  HashConfig cfg = probing(true);
  cfg.max_load = 1.0;
  for (const bool group : {true, false}) {
    cfg.group_probe = group;
    Set set(16, cfg);
    ASSERT_EQ(set.bucket_count(), 16u);
    std::uint64_t inserted = 0;
    for (std::uint64_t k = 1; inserted < 16; ++k) {
      if (set.insert(k) == SetInsert::kInserted) ++inserted;
    }
    // The 17th distinct key exhausts the walk — including the wrap-revisit
    // of the partial first group, so the verdict covers every lane.
    EXPECT_EQ(set.insert(1u << 20), SetInsert::kFull) << "group=" << group;
  }
}

// -- telemetry batching ------------------------------------------------------

TEST(HashProbe, WalkTelemetryBatchesAndFeedsHistogram) {
  Set grouped(256, probing(true, /*telemetry=*/true));
  for (std::uint64_t k = 1; k <= 128; ++k) (void)grouped.insert(k);
  const obs::ContentionTotals t = grouped.telemetry().site()->totals();
  EXPECT_GE(t.attempts, 128u);  // every op verified >= 1 bucket
  // Inserts that claim their empty home lane resolve on the fast path
  // without a group snapshot; only displaced keys walk groups. At 50%
  // fill some collisions are certain, so the counter moves but stays
  // well under one load per op.
  EXPECT_GE(t.group_loads, 1u);
  EXPECT_LT(t.group_loads, 128u);
  EXPECT_GE(grouped.telemetry().probe_p50(), 1u);
  EXPECT_GE(grouped.telemetry().probe_p99(), grouped.telemetry().probe_p50());

  // Scalar walks load no groups but still batch probes per op.
  Set scalar(256, probing(false, /*telemetry=*/true));
  for (std::uint64_t k = 1; k <= 128; ++k) (void)scalar.insert(k);
  const obs::ContentionTotals s = scalar.telemetry().site()->totals();
  EXPECT_GE(s.attempts, 128u);
  EXPECT_EQ(s.group_loads, 0u);
  EXPECT_EQ(s.fingerprint_fps, 0u);
  EXPECT_GE(scalar.telemetry().probe_p50(), 1u);
}

TEST(HashProbe, SubGroupTablesAlwaysWalkScalar) {
  // 8 buckets < one 16-lane group: the group lever must quietly fall back.
  HashConfig cfg = probing(true, /*telemetry=*/true);
  Set set(4, cfg);
  ASSERT_LT(set.bucket_count(), util::kGroupWidth);
  for (std::uint64_t k = 1; k <= 4; ++k) {
    ASSERT_EQ(set.insert(k), SetInsert::kInserted);
    EXPECT_TRUE(set.contains(k));
  }
  EXPECT_TRUE(set.erase(2));
  EXPECT_FALSE(set.contains(2));
  EXPECT_EQ(set.telemetry().site()->totals().group_loads, 0u);
}

}  // namespace
}  // namespace crcw::ds
