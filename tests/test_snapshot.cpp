// src/snap: round-consistent cuts, scan digests, checkpoint/restore, the
// kill/restore audit over real TCP, and the fail-closed hostility sweep on
// the snapshot file reader (truncation at every proper prefix, bit flips,
// wrong version/kind/shape, trailing bytes).
#include "snap/checkpointer.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "serve/serve_server.hpp"
#include "serve/serve_session.hpp"
#include "serve/wire_client.hpp"
#include "snap/cut.hpp"
#include "snap/snapshot_file.hpp"
#include "stream/stream_scheduler.hpp"

namespace crcw::snap {
namespace {

using serve::Op;
using serve::Result;
using serve::ServeConfig;
using serve::ServeSession;
using serve::ShardedServeSession;
using StreamSession = serve::BasicServeSession<stream::StreamScheduler>;

[[nodiscard]] std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "crcw_snap_" + name;
  mkdir(dir.c_str(), 0755);  // exists-ok: tests may rerun in one tree
  return dir;
}

[[nodiscard]] std::vector<unsigned char> slurp(const std::string& path) {
  std::vector<unsigned char> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  unsigned char buf[4096];
  for (std::size_t n = 0; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// -- cut semantics -----------------------------------------------------------

TEST(Snapshot, CutExcludesRoundsCommittedAfterMint) {
  ServeSession session;
  for (std::uint64_t k = 1; k <= 8; ++k) {
    ASSERT_TRUE(session.call(Op::upsert(k, 100 + k)).won);
  }
  auto& backend = session.backend();
  const SnapshotCut cut = backend.mint_cut();
  EXPECT_EQ(backend.cuts_held(), 1u);

  // Writers keep committing while the cut is held (held-cut discipline:
  // only grow/reclaim is parked, never the write path).
  const Result late = session.call(Op::upsert(99, 999));
  ASSERT_TRUE(late.won);
  EXPECT_GT(late.round, cut.round);

  std::map<std::uint64_t, std::uint64_t> seen;
  backend.scan_shard_at(0, cut.round,
                        [&seen](std::uint64_t k, std::uint64_t v, round_t) {
                          seen[k] = v;
                        });
  backend.release_cut();
  EXPECT_EQ(backend.cuts_held(), 0u);

  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(seen.count(99), 0u) << "post-cut write must not appear at the cut";
  for (std::uint64_t k = 1; k <= 8; ++k) EXPECT_EQ(seen[k], 100 + k);
}

TEST(Snapshot, ScanDigestStableWhenQuiescedAndCountsEntries) {
  ShardedServeSession session(ServeConfig{}.with_shards(4));
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(session.call(Op::upsert(k * 7 + 1, k)).won);
  }
  const ScanDigest a = scan_digest(session.backend());
  const ScanDigest b = scan_digest(session.backend());
  EXPECT_EQ(a.entries, 64u);
  EXPECT_EQ(a.cut.round, b.cut.round) << "no batches between quiesced scans";
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(session.backend().cuts_held(), 0u) << "scan_digest releases its cut";
}

// -- checkpoint / restore round trips ----------------------------------------

TEST(Snapshot, CheckpointRestoreRoundTripBatch) {
  const std::string path = temp_dir("batch") + "/rt.crcwsnap";
  ServeSession old_session;
  for (std::uint64_t k = 1; k <= 100; ++k) {
    ASSERT_TRUE(old_session.call(Op::upsert(k, k * k)).won);
  }
  const ScanDigest before = scan_digest(old_session.backend());
  std::string err;
  const auto cut = checkpoint_sync(old_session.backend(), path, &err);
  ASSERT_TRUE(cut.has_value()) << err;
  EXPECT_EQ(cut->round, before.cut.round);

  ServeSession fresh;
  ASSERT_TRUE(restore(fresh.backend(), path, &err)) << err;
  EXPECT_EQ(scan_digest(fresh.backend()).digest, before.digest);
  for (std::uint64_t k = 1; k <= 100; ++k) {
    const Result r = fresh.call(Op::lookup(k));
    EXPECT_TRUE(r.won);
    EXPECT_EQ(r.value, k * k);
  }
  // Arbiter continuity: the first post-restore write commits strictly
  // after the snapshot's cut.
  EXPECT_GT(fresh.call(Op::upsert(7, 1)).round, cut->round);
}

TEST(Snapshot, CheckpointRestoreRoundTripSharded) {
  const std::string path = temp_dir("sharded") + "/rt.crcwsnap";
  const ServeConfig cfg = ServeConfig{}.with_shards(4);
  ShardedServeSession old_session(cfg);
  for (std::uint64_t k = 0; k < 256; ++k) {
    ASSERT_TRUE(old_session.call(Op::upsert(k * 31 + 5, ~k)).won);
  }
  // Erased keys must not ride into the file.
  ASSERT_TRUE(old_session.call(Op::erase(5)).won);
  const ScanDigest before = scan_digest(old_session.backend());
  std::string err;
  const auto cut = checkpoint_sync(old_session.backend(), path, &err);
  ASSERT_TRUE(cut.has_value()) << err;

  ShardedServeSession fresh(cfg);
  ASSERT_TRUE(restore(fresh.backend(), path, &err)) << err;
  EXPECT_EQ(scan_digest(fresh.backend()).digest, before.digest);
  EXPECT_FALSE(fresh.call(Op::lookup(5)).won);
  for (std::uint64_t k = 1; k < 256; ++k) {
    EXPECT_EQ(fresh.call(Op::lookup(k * 31 + 5)).value, ~k);
  }
  EXPECT_GT(fresh.call(Op::upsert(1, 1)).round, cut->round);
}

TEST(Snapshot, StreamCheckpointRestoresConnectivity) {
  const std::string path = temp_dir("stream") + "/rt.crcwsnap";
  const ServeConfig cfg =
      ServeConfig{}.with_vertices(1 << 10).with_expected_keys(1 << 12);
  StreamSession old_session(cfg);
  // Two components: a path 1-2-3-4 and a triangle 10-11-12 (weighted).
  for (auto [u, v] : {std::pair{1u, 2u}, {2u, 3u}, {3u, 4u}, {10u, 11u},
                      {11u, 12u}, {10u, 12u}}) {
    ASSERT_TRUE(old_session.call(Op::edge_insert(u, v, u * 100 + v)).won);
  }
  const ScanDigest before = scan_digest(old_session.backend());
  std::string err;
  const auto cut = checkpoint_sync(old_session.backend(), path, &err);
  ASSERT_TRUE(cut.has_value()) << err;

  StreamSession fresh(cfg);
  ASSERT_TRUE(restore(fresh.backend(), path, &err)) << err;
  EXPECT_EQ(scan_digest(fresh.backend()).digest, before.digest);
  EXPECT_EQ(fresh.call(Op::same_component(1, 4)).value, 1u);
  EXPECT_EQ(fresh.call(Op::same_component(1, 10)).value, 0u);
  EXPECT_EQ(fresh.call(Op::component_size(11)).value, 3u);
  EXPECT_EQ(fresh.call(Op::lookup(ds::pack_edge(1, 2))).value, 102u);
  // The restored forest must keep answering through further mutation.
  ASSERT_TRUE(fresh.call(Op::edge_erase(11, 12)).won);
  EXPECT_EQ(fresh.call(Op::same_component(11, 12)).value, 1u) << "triangle survives";
  EXPECT_GT(fresh.call(Op::edge_insert(4, 5)).round, cut->round);
}

// -- the kill/restore audit over real TCP ------------------------------------

TEST(Snapshot, KillRestoreAuditOverWire) {
  const std::string dir = temp_dir("audit");
  const ServeConfig cfg = ServeConfig{}.with_shards(2).with_snapshot_dir(dir);
  std::string snapshot_path;
  std::uint64_t digest_at_cut = 0;
  round_t cut_round = 0;

  {  // server A: build state, publish a checkpoint, record the witness.
    ShardedServeSession session(cfg);
    session.start_pump();
    serve::BasicWireServer<serve::ShardedScheduler> server(session,
                                                           serve::WireConfig{});
    server.start();
    ASSERT_NE(server.port(), 0);
    serve::WireClient client("127.0.0.1", server.port());
    for (std::uint64_t k = 1; k <= 128; ++k) {
      ASSERT_TRUE(client.call(Op::upsert(k, k * 3)).won);
    }
    const serve::wire::Response created = client.snapshot_create();
    ASSERT_TRUE(created.won) << "checkpoint must publish";
    cut_round = created.round;
    snapshot_path =
        dir + "/snapshot-r" + std::to_string(cut_round) + ".crcwsnap";
    const serve::wire::Response scanned = client.snapshot_scan();
    ASSERT_TRUE(scanned.won);
    EXPECT_EQ(scanned.round, cut_round) << "quiesced: scan cut == create cut";
    digest_at_cut = scanned.value;
    // Snapshot ops are not writes: RYW lookups keep working afterwards.
    EXPECT_EQ(client.call(Op::lookup(1)).value, 3u);
    server.stop();
    session.stop_pump();
  }  // the "kill": server and session destroyed, only the file survives

  {  // server B: restore, then answer identically at the cut.
    ShardedServeSession session(cfg);
    std::string err;
    ASSERT_TRUE(restore(session.backend(), snapshot_path, &err)) << err;
    session.start_pump();
    serve::BasicWireServer<serve::ShardedScheduler> server(session,
                                                           serve::WireConfig{});
    server.start();
    serve::WireClient client("127.0.0.1", server.port());
    const serve::wire::Response scanned = client.snapshot_scan();
    ASSERT_TRUE(scanned.won);
    EXPECT_EQ(scanned.value, digest_at_cut)
        << "restored server must answer the cut bit-for-bit";
    for (std::uint64_t k = 1; k <= 128; ++k) {
      EXPECT_EQ(client.call(Op::lookup(k)).value, k * 3);
    }
    // Committed rounds stay strictly increasing across the restart.
    const serve::wire::Response w = client.call(Op::upsert(500, 1));
    EXPECT_TRUE(w.won);
    EXPECT_GT(w.round, cut_round);
    server.stop();
    session.stop_pump();
  }
}

// -- checkpointer lifecycle ---------------------------------------------------

TEST(Snapshot, CheckpointerPublishesInBackgroundAndIsReusable) {
  const std::string dir = temp_dir("ckpt");
  ServeSession session;
  for (std::uint64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(session.call(Op::upsert(k + 1, k)).won);
  }
  Checkpointer<serve::BatchScheduler> ckpt(session.backend(), dir);
  std::string err;
  const auto cut = ckpt.begin(&err);
  ASSERT_TRUE(cut.has_value()) << err;
  ASSERT_TRUE(ckpt.wait(&err)) << err;
  EXPECT_EQ(session.backend().cuts_held(), 0u) << "worker released its cut";
  EXPECT_FALSE(slurp(ckpt.last_path()).empty());

  // Reusable: a later checkpoint lands in a new file named by its round.
  ASSERT_TRUE(session.call(Op::upsert(1000, 1)).won);
  const auto cut2 = ckpt.begin(&err);
  ASSERT_TRUE(cut2.has_value()) << err;
  EXPECT_GT(cut2->round, cut->round);
  ASSERT_TRUE(ckpt.wait(&err)) << err;
  EXPECT_NE(ckpt.last_path(), ckpt.path_for(cut->round));

  ServeSession fresh;
  ASSERT_TRUE(restore(fresh.backend(), ckpt.last_path(), &err)) << err;
  EXPECT_EQ(fresh.call(Op::lookup(1000)).value, 1u);
}

// -- snapshot ops never enter a round -----------------------------------------

TEST(Snapshot, SchedulersRejectSnapshotOpsAtAdmission) {
  ServeSession batch;
  EXPECT_FALSE(batch.call(Op::snapshot_create()).won);
  EXPECT_FALSE(batch.call(Op::snapshot_scan()).won);
  ShardedServeSession sharded(ServeConfig{}.with_shards(2));
  EXPECT_FALSE(sharded.call(Op::snapshot_scan()).won);
  StreamSession stream(ServeConfig{}.with_vertices(64).with_expected_keys(256));
  EXPECT_FALSE(stream.call(Op::snapshot_create()).won);
}

TEST(Snapshot, WireCreateWithoutConfiguredDirRefusesButScanAnswers) {
  ServeSession session;  // no with_snapshot_dir
  ASSERT_TRUE(session.call(Op::upsert(3, 33)).won);
  session.start_pump();
  serve::BasicWireServer<serve::BatchScheduler> server(session, serve::WireConfig{});
  server.start();
  serve::WireClient client("127.0.0.1", server.port());
  EXPECT_FALSE(client.snapshot_create().won) << "no dir → create disabled";
  const serve::wire::Response scanned = client.snapshot_scan();
  EXPECT_TRUE(scanned.won);
  EXPECT_EQ(scanned.value, scan_digest(session.backend()).digest);
  server.stop();
  session.stop_pump();
}

// -- restore shape checks -----------------------------------------------------

TEST(Snapshot, RestoreRefusesKindShardAndDigestMismatch) {
  const std::string dir = temp_dir("shape");
  ServeSession kv;
  ASSERT_TRUE(kv.call(Op::upsert(1, 1)).won);
  std::string err;
  const std::string kv_path = dir + "/kv.crcwsnap";
  ASSERT_TRUE(checkpoint_sync(kv.backend(), kv_path, &err).has_value()) << err;

  // Kind mismatch: a KV snapshot into a stream backend.
  StreamSession stream(ServeConfig{}.with_vertices(64).with_expected_keys(256));
  err.clear();
  EXPECT_FALSE(restore(stream.backend(), kv_path, &err));
  EXPECT_NE(err.find("kind"), std::string::npos) << err;

  // Shard-count mismatch: a 4-shard snapshot into a 2-shard server.
  ShardedServeSession four(ServeConfig{}.with_shards(4));
  ASSERT_TRUE(four.call(Op::upsert(1, 1)).won);
  const std::string four_path = dir + "/four.crcwsnap";
  ASSERT_TRUE(checkpoint_sync(four.backend(), four_path, &err).has_value()) << err;
  ShardedServeSession two(ServeConfig{}.with_shards(2));
  err.clear();
  EXPECT_FALSE(restore(two.backend(), four_path, &err));
  EXPECT_NE(err.find("shards"), std::string::npos) << err;

  // Config-digest mismatch with kind and shards agreeing: streams of
  // different vertex counts.
  StreamSession big(ServeConfig{}.with_vertices(128).with_expected_keys(256));
  ASSERT_TRUE(big.call(Op::edge_insert(1, 2)).won);
  const std::string big_path = dir + "/big.crcwsnap";
  ASSERT_TRUE(checkpoint_sync(big.backend(), big_path, &err).has_value()) << err;
  StreamSession small(ServeConfig{}.with_vertices(64).with_expected_keys(256));
  err.clear();
  EXPECT_FALSE(restore(small.backend(), big_path, &err));
  EXPECT_NE(err.find("digest"), std::string::npos) << err;
}

TEST(Snapshot, RestoreRefusesMisroutedAndOutOfRangeShards) {
  const std::string dir = temp_dir("route");
  ShardedServeSession session(ServeConfig{}.with_shards(2));
  const std::uint64_t digest = session.backend().config_digest();

  {  // The same key claimed by both shards: one of them must be refused.
    SnapshotWriter w(dir + "/misroute.crcwsnap");
    ASSERT_TRUE(w.open(SnapshotHeader{kFormatVersion, kKindKv, 3, 2, digest}));
    ASSERT_TRUE(w.append(kFrameKv, 0, {SnapshotEntry{42, 1, 1}}));
    ASSERT_TRUE(w.append(kFrameKv, 1, {SnapshotEntry{42, 1, 1}}));
    ASSERT_TRUE(w.finish());
    std::string err;
    EXPECT_FALSE(restore(session.backend(), dir + "/misroute.crcwsnap", &err));
    EXPECT_NE(err.find("refused"), std::string::npos) << err;
  }
  {  // A frame naming a shard past the header's count.
    SnapshotWriter w(dir + "/oob.crcwsnap");
    ASSERT_TRUE(w.open(SnapshotHeader{kFormatVersion, kKindKv, 3, 2, digest}));
    ASSERT_TRUE(w.append(kFrameKv, 7, {SnapshotEntry{1, 1, 1}}));
    ASSERT_TRUE(w.finish());
    ShardedServeSession fresh(ServeConfig{}.with_shards(2));
    std::string err;
    EXPECT_FALSE(restore(fresh.backend(), dir + "/oob.crcwsnap", &err));
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;
  }
  {  // An entry whose committed round lies past the header's cut.
    SnapshotWriter w(dir + "/future.crcwsnap");
    ASSERT_TRUE(w.open(SnapshotHeader{kFormatVersion, kKindKv, 3, 2, digest}));
    ASSERT_TRUE(w.append(kFrameKv, 0, {SnapshotEntry{2, 1, 9}}));
    ASSERT_TRUE(w.finish());
    ShardedServeSession fresh(ServeConfig{}.with_shards(2));
    std::string err;
    EXPECT_FALSE(restore(fresh.backend(), dir + "/future.crcwsnap", &err));
    EXPECT_NE(err.find("past the cut"), std::string::npos) << err;
  }
}

// -- file-level hostility: fail closed, with a diagnostic ---------------------

/// A small published snapshot to mutilate (one KV frame + end marker).
[[nodiscard]] std::string good_snapshot(const std::string& dir) {
  const std::string path = dir + "/good.crcwsnap";
  ServeSession session;
  for (std::uint64_t k = 1; k <= 5; ++k) {
    EXPECT_TRUE(session.call(Op::upsert(k, k + 10)).won);
  }
  std::string err;
  EXPECT_TRUE(checkpoint_sync(session.backend(), path, &err).has_value()) << err;
  return path;
}

TEST(Snapshot, TruncationAtEveryProperPrefixFailsClosed) {
  const std::string dir = temp_dir("prefix");
  const std::vector<unsigned char> whole = slurp(good_snapshot(dir));
  ASSERT_GT(whole.size(), kHeaderBytes);
  const std::string cut_path = dir + "/cut.crcwsnap";
  for (std::size_t len = 0; len < whole.size(); ++len) {
    spit(cut_path, {whole.begin(), whole.begin() + static_cast<long>(len)});
    ServeSession fresh;
    std::string err;
    EXPECT_FALSE(restore(fresh.backend(), cut_path, &err)) << "prefix " << len;
    EXPECT_FALSE(err.empty()) << "prefix " << len << " must carry a diagnostic";
  }
}

TEST(Snapshot, SingleBitFlipAnywhereFailsClosed) {
  const std::string dir = temp_dir("bitflip");
  const std::vector<unsigned char> whole = slurp(good_snapshot(dir));
  const std::string flip_path = dir + "/flip.crcwsnap";
  for (std::size_t i = 0; i < whole.size(); ++i) {
    std::vector<unsigned char> bad = whole;
    bad[i] ^= 0x01;
    spit(flip_path, bad);
    ServeSession fresh;
    std::string err;
    // Every byte is covered by the header CRC, a frame CRC, or a length
    // prefix the CRC then contradicts — nothing may slip through.
    EXPECT_FALSE(restore(fresh.backend(), flip_path, &err)) << "byte " << i;
    EXPECT_FALSE(err.empty()) << "byte " << i;
  }
}

TEST(Snapshot, WrongVersionUnknownKindBadMagicAndTrailingBytesRefused) {
  const std::string dir = temp_dir("header");
  {  // Future format version, header CRC intact: named in the diagnostic.
    SnapshotWriter w(dir + "/v2.crcwsnap");
    ASSERT_TRUE(w.open(SnapshotHeader{kFormatVersion + 1, kKindKv, 1, 1, 0}));
    ASSERT_TRUE(w.finish());
    SnapshotReader r(dir + "/v2.crcwsnap");
    EXPECT_FALSE(r.open());
    EXPECT_NE(r.error().find("unsupported version"), std::string::npos) << r.error();
  }
  {  // Unknown snapshot kind, header CRC intact.
    SnapshotWriter w(dir + "/kind7.crcwsnap");
    ASSERT_TRUE(w.open(SnapshotHeader{kFormatVersion, 7, 1, 1, 0}));
    ASSERT_TRUE(w.finish());
    SnapshotReader r(dir + "/kind7.crcwsnap");
    EXPECT_FALSE(r.open());
    EXPECT_NE(r.error().find("unknown snapshot kind"), std::string::npos) << r.error();
  }
  const std::string good = good_snapshot(dir);
  {  // Corrupt magic fails before anything else is trusted.
    std::vector<unsigned char> bad = slurp(good);
    bad[0] ^= 0xff;
    spit(dir + "/magic.crcwsnap", bad);
    SnapshotReader r(dir + "/magic.crcwsnap");
    EXPECT_FALSE(r.open());
    EXPECT_NE(r.error().find("bad magic"), std::string::npos) << r.error();
  }
  {  // Bytes appended after the end marker: refused, not ignored.
    std::vector<unsigned char> bad = slurp(good);
    bad.push_back(0);
    spit(dir + "/trailing.crcwsnap", bad);
    ServeSession fresh;
    std::string err;
    EXPECT_FALSE(restore(fresh.backend(), dir + "/trailing.crcwsnap", &err));
    EXPECT_NE(err.find("trailing bytes"), std::string::npos) << err;
  }
}

}  // namespace
}  // namespace crcw::snap
