// Sequential references and structural verifiers.
#include "graph/reference.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace crcw::graph {
namespace {

TEST(BfsLevels, PathGraph) {
  const Csr g = build_csr(5, path(5));
  const auto levels = bfs_levels(g, 0);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(levels[static_cast<std::size_t>(v)], v);
}

TEST(BfsLevels, StarFromLeaf) {
  const Csr g = build_csr(6, star(6));
  const auto levels = bfs_levels(g, 3);
  EXPECT_EQ(levels[3], 0);
  EXPECT_EQ(levels[0], 1);
  for (const vertex_t v : {1u, 2u, 4u, 5u}) EXPECT_EQ(levels[v], 2);
}

TEST(BfsLevels, UnreachableIsMinusOne) {
  const Csr g = build_csr(4, EdgeList{{0, 1}});
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[2], -1);
  EXPECT_EQ(levels[3], -1);
}

TEST(BfsLevels, BadSourceThrows) {
  const Csr g = build_csr(2, path(2));
  EXPECT_THROW(bfs_levels(g, 9), std::invalid_argument);
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
}

TEST(ConnectedComponents, LabelsAreSmallestVertex) {
  // Components {0,1,2} and {3,4}.
  const Csr g = build_csr(5, EdgeList{{1, 2}, {0, 2}, {3, 4}});
  const auto labels = connected_components(g);
  EXPECT_EQ(labels, (std::vector<vertex_t>{0, 0, 0, 3, 3}));
  EXPECT_EQ(count_components(g), 2u);
}

TEST(ConnectedComponents, PlantedGroundTruth) {
  const Csr g = build_csr(60, planted_components(3, 20, 4, 77));
  const auto labels = connected_components(g);
  for (vertex_t v = 0; v < 60; ++v) {
    EXPECT_EQ(labels[v], (v / 20) * 20) << v;
  }
}

TEST(CanonicalizeLabels, MapsAnyLabellingToSmallestVertexForm) {
  // Same partition, different representative scheme.
  const std::vector<vertex_t> labels = {2, 2, 2, 4, 4};
  const auto canon = canonicalize_labels(labels);
  EXPECT_EQ(canon, (std::vector<vertex_t>{0, 0, 0, 3, 3}));
}

TEST(CanonicalizeLabels, RejectsOutOfRange) {
  const std::vector<vertex_t> labels = {9};
  EXPECT_THROW((void)canonicalize_labels(labels), std::invalid_argument);
}

TEST(ValidateBfsTree, AcceptsSequentialResult) {
  const Csr g = random_graph(50, 150, 4);
  const auto levels = bfs_levels(g, 0);
  // Build a valid parent assignment from the levels.
  std::vector<vertex_t> parent(50, kNoVertex);
  parent[0] = 0;
  for (vertex_t v = 1; v < 50; ++v) {
    if (levels[v] <= 0) continue;
    for (const vertex_t u : g.neighbors(v)) {
      if (levels[u] == levels[v] - 1) {
        parent[v] = u;
        break;
      }
    }
  }
  EXPECT_TRUE(validate_bfs_tree(g, 0, levels, parent));
}

TEST(ValidateBfsTree, RejectsWrongLevel) {
  const Csr g = build_csr(3, path(3));
  auto levels = bfs_levels(g, 0);
  const std::vector<vertex_t> parent = {0, 0, 1};
  ASSERT_TRUE(validate_bfs_tree(g, 0, levels, parent));
  levels[2] = 5;
  EXPECT_FALSE(validate_bfs_tree(g, 0, levels, parent));
}

TEST(ValidateBfsTree, RejectsNonEdgeParent) {
  const Csr g = build_csr(4, path(4));
  const auto levels = bfs_levels(g, 0);
  std::vector<vertex_t> parent = {0, 0, 1, 2};
  ASSERT_TRUE(validate_bfs_tree(g, 0, levels, parent));
  parent[3] = 0;  // (0,3) is not an edge and level would be wrong
  EXPECT_FALSE(validate_bfs_tree(g, 0, levels, parent));
}

TEST(ValidateBfsTree, RejectsUnreachableWithParent) {
  const Csr g = build_csr(3, EdgeList{{0, 1}});
  const auto levels = bfs_levels(g, 0);
  std::vector<vertex_t> parent = {0, 0, kNoVertex};
  ASSERT_TRUE(validate_bfs_tree(g, 0, levels, parent));
  parent[2] = 1;
  EXPECT_FALSE(validate_bfs_tree(g, 0, levels, parent));
}

TEST(ValidateComponents, AcceptsTrueLabelling) {
  const Csr g = random_graph(40, 60, 2);
  EXPECT_TRUE(validate_components(g, connected_components(g)));
}

TEST(ValidateComponents, RejectsMergedComponents) {
  const Csr g = build_csr(4, EdgeList{{0, 1}, {2, 3}});
  const std::vector<vertex_t> wrong = {0, 0, 0, 0};
  EXPECT_FALSE(validate_components(g, wrong));
}

TEST(ValidateComponents, RejectsSplitComponents) {
  const Csr g = build_csr(3, EdgeList{{0, 1}, {1, 2}});
  const std::vector<vertex_t> wrong = {0, 0, 2};
  EXPECT_FALSE(validate_components(g, wrong));
}

TEST(ValidateComponents, RejectsSizeMismatch) {
  const Csr g = build_csr(3, path(3));
  const std::vector<vertex_t> wrong = {0, 0};
  EXPECT_FALSE(validate_components(g, wrong));
}

}  // namespace
}  // namespace crcw::graph
