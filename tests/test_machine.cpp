// pram::Machine — lock-step step execution with automatic rounds.
#include "pram/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/cell.hpp"

namespace crcw::pram {
namespace {

TEST(Machine, FreshState) {
  Machine m;
  EXPECT_EQ(m.round(), kInitialRound);
  EXPECT_EQ(m.counters().work, 0u);
  EXPECT_EQ(m.counters().depth, 0u);
  EXPECT_GE(m.physical_processors(), 1);
}

TEST(Machine, StepCoversAllVirtualProcessors) {
  Machine m;
  std::vector<std::atomic<int>> hits(100);
  m.step(100, [&](Machine::vproc_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Machine, RoundsIncrementPerStep) {
  Machine m;
  const round_t r1 = m.step(10, [](Machine::vproc_t) {});
  const round_t r2 = m.step(10, [](Machine::vproc_t) {});
  EXPECT_EQ(r1, 1u);
  EXPECT_EQ(r2, 2u);
  EXPECT_EQ(m.round(), 2u);
}

TEST(Machine, WorkDepthAccounting) {
  Machine m;
  m.step(100, [](Machine::vproc_t) {});
  m.step(50, [](Machine::vproc_t) {});
  m.serial_step([] {});
  EXPECT_EQ(m.counters().depth, 3u);
  EXPECT_EQ(m.counters().work, 151u);
}

TEST(Machine, TwoArgBodyReceivesRound) {
  Machine m;
  m.step(1, [](Machine::vproc_t, round_t) {});
  std::atomic<round_t> seen{0};
  m.step(4, [&](Machine::vproc_t, round_t r) { seen.store(r); });
  EXPECT_EQ(seen.load(), 2u);
}

TEST(Machine, ResetClearsState) {
  Machine m;
  m.step(10, [](Machine::vproc_t) {});
  m.reset();
  EXPECT_EQ(m.round(), kInitialRound);
  EXPECT_EQ(m.counters().depth, 0u);
}

TEST(Machine, ConfiguredThreadCountReported) {
  Machine m(MachineConfig{.threads = 3});
  EXPECT_EQ(m.physical_processors(), 3);
}

TEST(Machine, SchedulesAllCoverTheIndexSpace) {
  for (const Schedule s : {Schedule::kStatic, Schedule::kDynamic, Schedule::kGuided}) {
    Machine m(MachineConfig{.threads = 4, .schedule = s});
    std::atomic<std::uint64_t> sum{0};
    m.step(1000, [&](Machine::vproc_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2) << to_string(s);
  }
}

TEST(Machine, DynamicScheduleWithChunk) {
  Machine m(MachineConfig{.threads = 4, .schedule = Schedule::kDynamic, .chunk = 16});
  std::atomic<int> count{0};
  m.step(257, [&](Machine::vproc_t) { count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(count.load(), 257);
}

TEST(Machine, StepBarrierPublishesWinnerWrite) {
  // The canonical pattern: a concurrent write in step k, the dependent read
  // in step k+1 — the step boundary is the synchronisation point (§4).
  Machine m(MachineConfig{.threads = 4});
  ConWriteCell<std::uint64_t> cell;

  m.step(64, [&](Machine::vproc_t i, round_t r) { (void)cell.try_write(r, i + 1); });

  std::atomic<std::uint64_t> observed{0};
  m.step(64, [&](Machine::vproc_t) {
    observed.store(cell.read(), std::memory_order_relaxed);
  });
  EXPECT_GE(observed.load(), 1u);
  EXPECT_LE(observed.load(), 64u);
}

TEST(Machine, MachineRoundDrivesArbitraryWrites) {
  // Rounds from the machine re-arm CAS-LT tags automatically; no resets.
  Machine m(MachineConfig{.threads = 4});
  ConWriteCell<std::uint64_t> cell;
  for (int k = 0; k < 20; ++k) {
    std::atomic<int> winners{0};
    m.step(16, [&](Machine::vproc_t i, round_t r) {
      if (cell.try_write(r, i)) winners.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(winners.load(), 1) << "machine step " << k;
  }
}

TEST(Machine, ZeroProcessorStepStillAdvancesRound) {
  Machine m;
  const round_t r = m.step(0, [](Machine::vproc_t) { FAIL() << "body must not run"; });
  EXPECT_EQ(r, 1u);
  EXPECT_EQ(m.counters().depth, 1u);
  EXPECT_EQ(m.counters().work, 0u);
}

TEST(ParallelFor, FreeFunctionCoversRange) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, [&](std::uint64_t i) { hits[i].fetch_add(1); }, 4);
  const int total = std::accumulate(hits.begin(), hits.end(), 0,
                                    [](int acc, const std::atomic<int>& h) {
                                      return acc + h.load();
                                    });
  EXPECT_EQ(total, 500);
}

}  // namespace
}  // namespace crcw::pram
