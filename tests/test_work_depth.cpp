// Work–depth accounting and Brent's bound (§6).
#include "pram/work_depth.hpp"

#include <gtest/gtest.h>

namespace crcw::pram {
namespace {

TEST(WorkDepth, StartsEmpty) {
  WorkDepth wd;
  EXPECT_EQ(wd.work, 0u);
  EXPECT_EQ(wd.depth, 0u);
}

TEST(WorkDepth, AccumulatesSteps) {
  WorkDepth wd;
  wd.add_step(100);
  wd.add_step(50);
  EXPECT_EQ(wd.work, 150u);
  EXPECT_EQ(wd.depth, 2u);
}

TEST(WorkDepth, ResetClears) {
  WorkDepth wd;
  wd.add_step(5);
  wd.reset();
  EXPECT_EQ(wd, WorkDepth{});
}

TEST(BrentTime, MatchesFormula) {
  // T = D + W/p (§6).
  const WorkDepth wd{.work = 1000, .depth = 10};
  EXPECT_DOUBLE_EQ(brent_time(wd, 1), 1010.0);
  EXPECT_DOUBLE_EQ(brent_time(wd, 10), 110.0);
  EXPECT_DOUBLE_EQ(brent_time(wd, 1000), 11.0);
}

TEST(BrentTime, ZeroProcessorsTreatedAsOne) {
  const WorkDepth wd{.work = 100, .depth = 1};
  EXPECT_DOUBLE_EQ(brent_time(wd, 0), brent_time(wd, 1));
}

TEST(BrentTime, MoreProcessorsNeverSlower) {
  const WorkDepth wd{.work = 123456, .depth = 7};
  double prev = brent_time(wd, 1);
  for (std::uint64_t p = 2; p <= 1024; p *= 2) {
    const double t = brent_time(wd, p);
    EXPECT_LE(t, prev);
    prev = t;
  }
  // And never below the depth lower bound.
  EXPECT_GE(prev, static_cast<double>(wd.depth));
}

}  // namespace
}  // namespace crcw::pram
