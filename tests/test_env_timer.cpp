// Environment introspection and wall-clock timing.
#include "util/env.hpp"
#include "util/timer.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <chrono>
#include <thread>

namespace crcw::util {
namespace {

TEST(Env, HardwareThreadsPositive) { EXPECT_GE(hardware_threads(), 1); }

TEST(Env, OmpMaxThreadsPositive) { EXPECT_GE(omp_max_threads(), 1); }

TEST(Env, SetOmpThreadsRoundTrips) {
  const int before = omp_max_threads();
  set_omp_threads(3);
  EXPECT_EQ(omp_max_threads(), 3);
  set_omp_threads(before);
  EXPECT_EQ(omp_max_threads(), before);
}

TEST(Env, SetOmpThreadsIgnoresNonPositive) {
  const int before = omp_max_threads();
  set_omp_threads(0);
  set_omp_threads(-4);
  EXPECT_EQ(omp_max_threads(), before);
}

TEST(Env, OversubscriptionDetection) {
  EXPECT_FALSE(oversubscribed(1));
  EXPECT_TRUE(oversubscribed(hardware_threads() + 1));
}

TEST(Env, SummaryMentionsThreadCounts) {
  const std::string s = environment_summary();
  EXPECT_NE(s.find("omp_max_threads="), std::string::npos);
  EXPECT_NE(s.find("hardware_threads="), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);  // generous: CI machines stall
  EXPECT_NEAR(t.milliseconds(), t.seconds() * 1e3, t.seconds() * 20.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, UnitsAgree) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = t.seconds();
  EXPECT_GT(t.microseconds(), s * 1e6 * 0.5);
  EXPECT_GT(static_cast<double>(t.nanoseconds()), s * 1e9 * 0.5);
}

TEST(ScopedTimer, AccumulatesIntoSink) {
  double sink = 0.0;
  {
    ScopedTimer st(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sink, 0.005);
  {
    ScopedTimer st(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sink, 0.01);
}

}  // namespace
}  // namespace crcw::util
