// Long-lived churn lifecycle across the ds/ tables (ctest label ds-churn):
// erase-vs-upsert round arbitration, live-only size accounting, and the
// property the tentpole exists for — bucket/arena consumption stays
// BOUNDED under unbounded insert/erase cycles, because reclaim sweeps
// drop tombstones and shrink instead of letting the tables grow forever.
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ds/chained_hash_set.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "ds/hash_common.hpp"

namespace crcw::ds {
namespace {

using Map = ConcurrentHashMap<std::uint64_t, std::uint64_t>;

TEST(ChurnSizing, RequiredBucketsCeilingAcrossTables) {
  // The truncating-division regression: 5 keys at max_load 0.6 used to get
  // trunc(8.33) = 8 buckets — load 0.625, above the configured factor —
  // so a fresh table was already grow-worthy. Ceiling lands on 9 → 16.
  HashConfig cfg;
  cfg.max_load = 0.6;
  Map map(5, cfg);
  EXPECT_EQ(map.bucket_count(), 16u);
  EXPECT_FALSE(map.needs_grow());

  ConcurrentHashSet<> set(5, cfg);
  EXPECT_EQ(set.bucket_count(), 16u);

  ChainedHashSet<> chained(5, 1, cfg);
  EXPECT_EQ(chained.bucket_count(), 16u);
}

TEST(ChurnSizing, SizingArithmeticSurvivesHugeDemands) {
  // The backlog-grow factor loop used to compute `factor` by repeated
  // doubling against a wrapped product; the fixed path sizes straight from
  // the bit width. The arithmetic must stay well-defined at the extremes
  // (no bit_ceil UB past 2^63, no wrap in occupied + backlog).
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  constexpr std::uint64_t kTop = std::uint64_t{1} << 63;
  EXPECT_EQ(bucket_count_for(kMax), kTop);
  EXPECT_EQ(bucket_count_for(kTop), kTop);
  EXPECT_EQ(bucket_count_for(kTop + 1), kTop);
  EXPECT_EQ(bucket_count_for((std::uint64_t{1} << 62) + 1), kTop);
  // required_buckets saturates through the same clamp once bucket-rounded.
  EXPECT_EQ(bucket_count_for(required_buckets(kTop, 1.0)), kTop);
}

TEST(ChurnArbitration, EraseVsUpsertOneWinnerEveryRound) {
  // (a) of the churn contract: threads mixing erase and upsert on the
  // same key in the same round, exactly one winner per round, for many
  // rounds — and the committed liveness always matches the winner's kind.
  const int threads = std::max(4, omp_get_max_threads());
  Map map(16);
  constexpr std::uint64_t kKey = 7;
  for (round_t r = 1; r <= 100; ++r) {
    std::atomic<int> winners{0};
    std::atomic<int> erase_winners{0};
#pragma omp parallel num_threads(threads)
    {
      // Alternate each thread's role across rounds so both kinds contend
      // from every lane over time.
      const bool erase = (static_cast<round_t>(omp_get_thread_num()) + r) % 2 == 0;
      const MapUpsert out =
          erase ? map.erase(r, kKey) : map.upsert(r, kKey, r * 10);
      if (out == MapUpsert::kWon) {
        winners.fetch_add(1, std::memory_order_relaxed);
        if (erase) erase_winners.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ASSERT_EQ(winners.load(), 1) << "round " << r;
    const std::uint64_t* v = map.find(kKey);
    if (erase_winners.load() != 0) {
      ASSERT_EQ(v, nullptr) << "round " << r;
      ASSERT_EQ(map.size(), 0u);
    } else {
      ASSERT_NE(v, nullptr) << "round " << r;
      ASSERT_EQ(*v, r * 10);
      ASSERT_EQ(map.size(), 1u);
    }
  }
}

TEST(ChurnAccounting, SizeTracksLiveKeysOnly) {
  // (b): size() is live keys, not claimed buckets, through interleaved
  // insert/erase/revive — on both open-addressing tables.
  Map map(64);
  ConcurrentHashSet<> set(64);
  round_t r = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    ++r;
    for (std::uint64_t k = 0; k < 32; ++k) {
      ASSERT_EQ(map.upsert(r, k, k), MapUpsert::kWon);
      (void)set.insert(k);
    }
    EXPECT_EQ(map.size(), 32u);
    EXPECT_EQ(set.size(), 32u);
    ++r;
    for (std::uint64_t k = 0; k < 32; k += 2) {
      ASSERT_EQ(map.erase(r, k), MapUpsert::kWon);
      ASSERT_TRUE(set.erase(k));
    }
    EXPECT_EQ(map.size(), 16u);
    EXPECT_EQ(set.size(), 16u);
    EXPECT_EQ(map.occupied(), 32u);  // buckets stay claimed either way
    EXPECT_EQ(set.occupied(), 32u);
    ++r;
    for (std::uint64_t k = 0; k < 32; k += 2) {  // revive for the next lap
      ASSERT_EQ(map.upsert(r, k, k), MapUpsert::kWon);
      ASSERT_EQ(set.insert(k), SetInsert::kInserted);
    }
    EXPECT_EQ(map.size(), 32u);
    EXPECT_EQ(set.size(), 32u);
    ++r;
    for (std::uint64_t k = 0; k < 32; ++k) ASSERT_EQ(map.erase(r, k), MapUpsert::kWon);
    for (std::uint64_t k = 0; k < 32; ++k) ASSERT_TRUE(set.erase(k));
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(set.size(), 0u);
    EXPECT_EQ(map.tombstones(), 32u);
    EXPECT_EQ(set.tombstones(), 32u);
  }
}

/// One serve-shaped churn step: reserve for the batch, write it, erase it,
/// then let the step boundary reclaim if the watermark fired.
template <typename Table, typename WriteFn, typename EraseFn>
std::uint64_t churn_cycles(Table& table, WriteFn&& write, EraseFn&& erase_all,
                           std::uint64_t churn_per_cycle, int cycles) {
  std::uint64_t max_buckets = 0;
  for (int c = 0; c < cycles; ++c) {
    table.maybe_grow_for_backlog(churn_per_cycle, 2);
    write(c);
    erase_all(c);
    table.maybe_reclaim_parallel(2);
    max_buckets = std::max(max_buckets, table.bucket_count());
  }
  return max_buckets;
}

TEST(ChurnBounded, MapBucketCountBoundedOverManyCycles) {
  // (c), the tentpole property: ≥ 100 insert/erase cycles of 64 transient
  // keys (fresh key space every cycle, the worst case for a grow-only
  // table) on top of 32 permanent keys. Without reclaim, tombstones keep
  // every cycle's buckets claimed and the backlog grow doubles the table
  // indefinitely; with it, bucket_count oscillates inside one hysteresis
  // band forever.
  constexpr std::uint64_t kCore = 32;
  constexpr std::uint64_t kChurn = 64;
  constexpr int kCycles = 128;
  Map map(kCore + kChurn);
  const std::uint64_t band = map.bucket_count() * 4;  // one band of headroom
  round_t r = 0;
  ++r;
  for (std::uint64_t k = 0; k < kCore; ++k) {
    ASSERT_EQ(map.upsert(r, k, k), MapUpsert::kWon);
  }

  const std::uint64_t max_buckets = churn_cycles(
      map,
      [&](int c) {
        ++r;
        const std::uint64_t base = 1000 + static_cast<std::uint64_t>(c) * kChurn;
        for (std::uint64_t i = 0; i < kChurn; ++i) {
          ASSERT_EQ(map.upsert(r, base + i, i), MapUpsert::kWon);
        }
        ASSERT_EQ(map.size(), kCore + kChurn);
      },
      [&](int c) {
        ++r;
        const std::uint64_t base = 1000 + static_cast<std::uint64_t>(c) * kChurn;
        for (std::uint64_t i = 0; i < kChurn; ++i) {
          ASSERT_EQ(map.erase(r, base + i), MapUpsert::kWon);
        }
        ASSERT_EQ(map.size(), kCore);
      },
      kChurn, kCycles);

  EXPECT_LE(max_buckets, band);
  // The permanent keys survived every rebuild.
  for (std::uint64_t k = 0; k < kCore; ++k) {
    ASSERT_NE(map.find(k), nullptr);
    EXPECT_EQ(*map.find(k), k);
  }
}

TEST(ChurnBounded, SetBucketCountBoundedOverManyCycles) {
  constexpr std::uint64_t kCore = 32;
  constexpr std::uint64_t kChurn = 64;
  constexpr int kCycles = 128;
  ConcurrentHashSet<> set(kCore + kChurn);
  const std::uint64_t band = set.bucket_count() * 4;
  for (std::uint64_t k = 0; k < kCore; ++k) {
    ASSERT_EQ(set.insert(k), SetInsert::kInserted);
  }

  const std::uint64_t max_buckets = churn_cycles(
      set,
      [&](int c) {
        const std::uint64_t base = 1000 + static_cast<std::uint64_t>(c) * kChurn;
        for (std::uint64_t i = 0; i < kChurn; ++i) {
          ASSERT_EQ(set.insert(base + i), SetInsert::kInserted);
        }
        ASSERT_EQ(set.size(), kCore + kChurn);
      },
      [&](int c) {
        const std::uint64_t base = 1000 + static_cast<std::uint64_t>(c) * kChurn;
        for (std::uint64_t i = 0; i < kChurn; ++i) ASSERT_TRUE(set.erase(base + i));
        ASSERT_EQ(set.size(), kCore);
      },
      kChurn, kCycles);

  EXPECT_LE(max_buckets, band);
  for (std::uint64_t k = 0; k < kCore; ++k) ASSERT_TRUE(set.contains(k));
}

TEST(ChurnSignal, SignalTriggersGatedOnTheTombstoneFloor) {
  // The signal-driven reclaim trigger, isolated from real probe noise by
  // synthetic ReclaimSignal values: with the static watermark parked out
  // of reach, only an observed-degradation signal may fire, and only once
  // there are enough tombstones (1/64 of the buckets) for a sweep to help.
  HashConfig cfg;
  cfg.reclaim_ratio = 1.0;  // static watermark unreachable
  cfg.reclaim_probe_p99 = 8;
  cfg.reclaim_fp_rate = 0.1;
  Map map(256, cfg);
  const std::uint64_t floor = map.bucket_count() / 64 + 1;

  // A handful of tombstones below the floor: even a screaming signal is
  // ignored (the histogram is cumulative; reclaim can't help yet).
  round_t r = 0;
  ++r;
  for (std::uint64_t k = 0; k < floor - 1; ++k) {
    ASSERT_EQ(map.upsert(r, k, k), MapUpsert::kWon);
  }
  ++r;
  for (std::uint64_t k = 0; k < floor - 1; ++k) {
    ASSERT_EQ(map.erase(r, k), MapUpsert::kWon);
  }
  ASSERT_EQ(map.tombstones(), floor - 1);
  EXPECT_FALSE(map.needs_reclaim(ReclaimSignal{1000, 1000, 1000}));

  // Cross the floor; now the triggers discriminate.
  ++r;
  for (std::uint64_t k = 100; k < 100 + 64; ++k) {
    ASSERT_EQ(map.upsert(r, k, k), MapUpsert::kWon);
  }
  ++r;
  for (std::uint64_t k = 100; k < 100 + 64; ++k) {
    ASSERT_EQ(map.erase(r, k), MapUpsert::kWon);
  }
  ASSERT_GE(map.tombstones(), floor);
  EXPECT_FALSE(map.needs_reclaim());                   // static watermark: no
  EXPECT_FALSE(map.needs_reclaim(ReclaimSignal{}));    // zero signal: no
  EXPECT_FALSE(map.needs_reclaim(ReclaimSignal{7, 0, 0}));    // p99 below knob
  EXPECT_TRUE(map.needs_reclaim(ReclaimSignal{8, 0, 0}));     // at the knob
  EXPECT_FALSE(map.needs_reclaim(ReclaimSignal{0, 10, 100}));  // fp at rate: no
  EXPECT_TRUE(map.needs_reclaim(ReclaimSignal{0, 11, 100}));   // fp past rate

  // The gated entry point sweeps, and the floor re-arms: the same signal
  // cannot re-fire against a table whose tombstones are already gone.
  EXPECT_TRUE(map.maybe_reclaim_parallel(1, ReclaimSignal{8, 0, 0}));
  EXPECT_EQ(map.tombstones(), 0u);
  EXPECT_FALSE(map.maybe_reclaim_parallel(1, ReclaimSignal{8, 0, 0}));
}

TEST(ChurnSignal, TelemetryOffYieldsTheZeroSignal) {
  // telemetry_signal() from a telemetry-less table is all-zero, and the
  // zero signal never fires — the static watermark then decides alone.
  Map map(64);
  const ReclaimSignal sig = map.telemetry_signal();
  EXPECT_EQ(sig.probe_p99, 0u);
  EXPECT_EQ(sig.fingerprint_fps, 0u);
  EXPECT_EQ(sig.group_loads, 0u);
  EXPECT_FALSE(map.needs_reclaim(sig));
}

TEST(ChurnBounded, ChainedArenaBoundedOverManyCycles) {
  // The chained set's churn resource is the node arena, not the bucket
  // array: reclaim must recycle tombstoned nodes fast enough that 128
  // cycles × 64 inserts (8k nodes' worth of churn) never exhaust an arena
  // sized for one cycle.
  constexpr std::uint64_t kChurn = 64;
  constexpr int kCycles = 128;
  ChainedHashSet<> set(2 * kChurn, 1);
  for (int c = 0; c < kCycles; ++c) {
    const std::uint64_t base = static_cast<std::uint64_t>(c) * kChurn;
    for (std::uint64_t i = 0; i < kChurn; ++i) {
      ASSERT_EQ(set.insert(0, base + i), SetInsert::kInserted) << "cycle " << c;
    }
    ASSERT_EQ(set.size(), kChurn);
    for (std::uint64_t i = 0; i < kChurn; ++i) ASSERT_TRUE(set.erase(base + i));
    ASSERT_EQ(set.size(), 0u);
    (void)set.maybe_reclaim();
  }
  // Recycling carried the load: fresh arena draw (high_water) stops once
  // the watermark first fires, so all but one warmup-arena's worth of the
  // 8k grants came from recycled tombstones.
  SlotAllocator& alloc = set.allocator();
  EXPECT_EQ(alloc.grants(), static_cast<std::uint64_t>(kCycles) * kChurn);
  EXPECT_GE(alloc.recycled_grants(),
            alloc.grants() - alloc.capacity_for(2 * kChurn));
}

}  // namespace
}  // namespace crcw::ds
