// The BENCH_<name>.json emitter: golden schema (member names in exact
// order), speedup derivation, row replacement semantics, round-trip
// parse, and byte-determinism once the timing-derived fields are
// stripped. scripts/bench_schema.json and scripts/bench_compare.py
// encode the same contract — a version bump must update all three.
#include "obs/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace obs = crcw::obs;
namespace json = crcw::obs::json;

namespace {

obs::ContentionTotals totals(std::uint64_t attempts, std::uint64_t atomics,
                             std::uint64_t wins, std::uint64_t rounds) {
  obs::ContentionTotals t;
  t.attempts = attempts;
  t.atomics = atomics;
  t.wins = wins;
  t.rounds = rounds;
  return t;
}

obs::BenchReport sample_report() {
  obs::BenchReport report("fig5_max_size");
  report.add_row({.series = "fig5/naive",
                  .policy = "naive",
                  .baseline = "naive",
                  .threads = 4,
                  .n = 1024,
                  .m = 0,
                  .samples_ns = {2000.0, 2100.0, 1900.0}});
  report.add_row({.series = "fig5/caslt",
                  .policy = "caslt",
                  .baseline = "naive",
                  .threads = 4,
                  .n = 1024,
                  .m = 0,
                  .samples_ns = {1000.0, 1050.0, 950.0},
                  .counters = totals(1024, 16, 8, 2)});
  return report;
}

std::vector<std::string> member_names(const json::Value& obj) {
  std::vector<std::string> names;
  for (const auto& [k, v] : obj.members()) names.push_back(k);
  return names;
}

TEST(BenchReport, GoldenSchemaFieldOrder) {
  const json::Value doc = sample_report().to_json();

  EXPECT_EQ(member_names(doc), (std::vector<std::string>{
                                   "schema", "schema_version", "bench",
                                   "environment", "rows"}));
  EXPECT_EQ(doc.find("schema")->as_string(), "crcw-bench");
  EXPECT_EQ(doc.find("schema_version")->as_int(), 1);
  EXPECT_EQ(doc.find("bench")->as_string(), "fig5_max_size");
  EXPECT_EQ(member_names(*doc.find("environment")),
            (std::vector<std::string>{"hardware_threads", "omp_max_threads"}));

  const auto& rows = doc.find("rows")->items();
  ASSERT_EQ(rows.size(), 2u);
  const std::vector<std::string> row_fields = {
      "series",  "policy",    "baseline",  "threads",    "n",
      "m",       "reps",      "median_ns", "mean_ns",    "stddev_ns",
      "min_ns",  "max_ns",    "samples_ns", "speedup_vs_baseline", "counters"};
  EXPECT_EQ(member_names(rows[0]), row_fields);
  EXPECT_EQ(member_names(rows[1]), row_fields);

  // The counters object's own schema.
  EXPECT_EQ(member_names(*rows[1].find("counters")),
            (std::vector<std::string>{"attempts", "atomics", "failures", "wins",
                                      "rounds", "refills", "reset_tags",
                                      "tombstones", "reclaimed", "group_loads",
                                      "fingerprint_false_positives", "probe_p50",
                                      "probe_p99"}));
}

TEST(BenchReport, TimingFieldListMatchesSchema) {
  EXPECT_EQ(obs::bench_timing_fields(),
            (std::vector<std::string>{"median_ns", "mean_ns", "stddev_ns", "min_ns",
                                      "max_ns", "samples_ns",
                                      "speedup_vs_baseline"}));
}

TEST(BenchReport, SpeedupDerivation) {
  const json::Value doc = sample_report().to_json();
  const auto& rows = doc.find("rows")->items();
  // The baseline row reports exactly 1; the caslt row the median ratio.
  EXPECT_DOUBLE_EQ(rows[0].find("speedup_vs_baseline")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(rows[1].find("speedup_vs_baseline")->as_double(), 2.0);
}

TEST(BenchReport, NoBaselineMeansNullSpeedupAndNullBaseline) {
  obs::BenchReport report("x");
  report.add_row({.series = "s",
                  .policy = "p",
                  .baseline = "",
                  .threads = 1,
                  .n = 1,
                  .m = 0,
                  .samples_ns = {100.0}});
  const json::Value doc = report.to_json();
  const auto& row = doc.find("rows")->items()[0];
  EXPECT_TRUE(row.find("baseline")->is_null());
  EXPECT_TRUE(row.find("speedup_vs_baseline")->is_null());
}

TEST(BenchReport, UnmatchedBaselineKeyIsNull) {
  obs::BenchReport report("x");
  // Baseline series exists but at different n — no match, null speedup.
  report.add_row({.series = "s/base", .policy = "base", .baseline = "base",
                  .threads = 1, .n = 1, .m = 0, .samples_ns = {100.0}});
  report.add_row({.series = "s/other", .policy = "other", .baseline = "base",
                  .threads = 1, .n = 2, .m = 0, .samples_ns = {100.0}});
  const json::Value doc = report.to_json();
  const auto& rows = doc.find("rows")->items();
  EXPECT_TRUE(rows[1].find("speedup_vs_baseline")->is_null());
}

TEST(BenchReport, ReplacementKeepsEarlierCounters) {
  obs::BenchReport report("x");
  report.add_row({.series = "s", .policy = "p", .baseline = "", .threads = 1,
                  .n = 1, .m = 0, .samples_ns = {100.0},
                  .counters = totals(10, 5, 1, 1)});
  // google-benchmark re-runs replace the timing but carry no counters.
  report.add_row({.series = "s", .policy = "p", .baseline = "", .threads = 1,
                  .n = 1, .m = 0, .samples_ns = {200.0, 210.0}});
  EXPECT_EQ(report.size(), 1u);
  const json::Value doc = report.to_json();
  const auto& row = doc.find("rows")->items()[0];
  EXPECT_EQ(row.find("reps")->as_uint(), 2u);
  ASSERT_FALSE(row.find("counters")->is_null());
  EXPECT_EQ(row.find("counters")->find("attempts")->as_uint(), 10u);
}

TEST(BenchReport, HasCountersAnswersPerKey) {
  obs::BenchReport report("x");
  obs::BenchRow key{.series = "s", .policy = "p", .baseline = "", .threads = 1,
                    .n = 1, .m = 0};
  EXPECT_FALSE(report.has_counters(key));
  obs::BenchRow with = key;
  with.counters = totals(1, 1, 1, 1);
  report.add_row(with);
  EXPECT_TRUE(report.has_counters(key));
}

TEST(BenchReport, RoundTripParse) {
  const std::string dumped = sample_report().to_json().dump();
  const json::Value back = json::parse(dumped);
  EXPECT_EQ(back.find("rows")->items().size(), 2u);
  EXPECT_EQ(back.dump(), dumped);
}

/// Strips the timing-derived members from every row, keeping order.
json::Value strip_timing(const json::Value& doc) {
  const auto& noisy = obs::bench_timing_fields();
  const auto is_noisy = [&](const std::string& k) {
    for (const auto& f : noisy) {
      if (f == k) return true;
    }
    return false;
  };
  json::Value out = json::Value::object();
  for (const auto& [k, v] : doc.members()) {
    if (k != "rows") {
      out.add(k, v);
      continue;
    }
    json::Value rows = json::Value::array();
    for (const auto& row : v.items()) {
      json::Value stripped = json::Value::object();
      for (const auto& [rk, rv] : row.members()) {
        if (!is_noisy(rk)) stripped.add(rk, rv);
      }
      rows.push_back(std::move(stripped));
    }
    out.add("rows", std::move(rows));
  }
  return out;
}

TEST(BenchReport, DeterministicOnceTimingFieldsStripped) {
  // Two runs with different timings but identical workload/counters must
  // serialise identically after the noisy fields are removed — the
  // property bench_compare.py's counter check relies on.
  obs::BenchReport a("d");
  obs::BenchReport b("d");
  // Same rep count: "reps" is workload-derived, not a timing field.
  a.add_row({.series = "s", .policy = "p", .baseline = "", .threads = 1, .n = 8,
             .m = 0, .samples_ns = {100.0, 101.0, 102.0},
             .counters = totals(8, 2, 1, 1)});
  b.add_row({.series = "s", .policy = "p", .baseline = "", .threads = 1, .n = 8,
             .m = 0, .samples_ns = {900.0, 950.0, 1000.0},
             .counters = totals(8, 2, 1, 1)});
  EXPECT_NE(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(strip_timing(a.to_json()).dump(), strip_timing(b.to_json()).dump());
}

TEST(BenchReport, WriteFileCreatesParentDirs) {
  const std::string dir = ::testing::TempDir() + "bench_report_test";
  const std::string path = dir + "/nested/BENCH_x.json";
  const obs::BenchReport report = sample_report();
  report.write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), report.to_json().dump());
}

TEST(BenchReport, DefaultPathHonoursEnvDir) {
  const obs::BenchReport report("mybench");
  ::unsetenv("CRCW_BENCH_JSON_DIR");
  EXPECT_EQ(report.default_path(), "bench_results/BENCH_mybench.json");
  ::setenv("CRCW_BENCH_JSON_DIR", "/tmp/out", 1);
  EXPECT_EQ(report.default_path(), "/tmp/out/BENCH_mybench.json");
  ::unsetenv("CRCW_BENCH_JSON_DIR");
}

}  // namespace
