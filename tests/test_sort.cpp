// Parallel counting / radix sort.
#include "algorithms/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace crcw::algo {
namespace {

TEST(CountingSort, EmptyAndSingleton) {
  EXPECT_TRUE(counting_sort_perm({}, 4).empty());
  const std::vector<std::uint64_t> one = {2};
  EXPECT_EQ(counting_sort_perm(one, 4), (std::vector<std::uint64_t>{0}));
}

TEST(CountingSort, PermutationSortsKeys) {
  const std::vector<std::uint64_t> keys = {3, 1, 2, 1, 0, 3};
  const auto perm = counting_sort_perm(keys, 4);
  ASSERT_EQ(perm.size(), keys.size());
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
}

TEST(CountingSort, IsStable) {
  // Equal keys must keep input order: the two 1s at positions 1 and 3.
  const std::vector<std::uint64_t> keys = {3, 1, 2, 1, 0};
  const auto perm = counting_sort_perm(keys, 4);
  EXPECT_EQ(perm, (std::vector<std::uint64_t>{4, 1, 3, 2, 0}));
}

TEST(CountingSort, Rejections) {
  const std::vector<std::uint64_t> keys = {5};
  EXPECT_THROW((void)counting_sort_perm(keys, 4), std::invalid_argument);
  EXPECT_THROW((void)counting_sort_perm(keys, 0), std::invalid_argument);
}

TEST(RadixSort, EmptySingletonAllEqual) {
  EXPECT_TRUE(radix_sort({}).empty());
  const std::vector<std::uint64_t> one = {7};
  EXPECT_EQ(radix_sort(one), one);
  const std::vector<std::uint64_t> same(100, 9);
  EXPECT_EQ(radix_sort(same), same);
  const std::vector<std::uint64_t> zeros(50, 0);
  EXPECT_EQ(radix_sort(zeros), zeros);
}

TEST(RadixSort, KnownSmall) {
  const std::vector<std::uint64_t> keys = {170, 45, 75, 90, 802, 24, 2, 66};
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(radix_sort(keys), expected);
}

class SortRandomTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t, int>> {};

TEST_P(SortRandomTest, MatchesStdSort) {
  const auto& [n, bound, threads] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    util::Xoshiro256 rng(seed * 101 + n);
    std::vector<std::uint64_t> keys(n);
    for (auto& k : keys) k = bound == 0 ? rng.next() : rng.bounded(bound);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(radix_sort(keys, {.threads = threads}), expected)
        << "n=" << n << " bound=" << bound << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SortRandomTest,
    ::testing::Values(std::make_tuple(std::uint64_t{2}, std::uint64_t{10}, 1),
                      std::make_tuple(std::uint64_t{100}, std::uint64_t{256}, 4),
                      std::make_tuple(std::uint64_t{1000}, std::uint64_t{1 << 20}, 4),
                      std::make_tuple(std::uint64_t{10000}, std::uint64_t{0}, 4),  // full 64-bit
                      std::make_tuple(std::uint64_t{100000}, std::uint64_t{1000}, 8)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_b" +
             std::to_string(std::get<1>(pinfo.param)) + "_t" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(RadixSort, AlreadySortedAndReversed) {
  std::vector<std::uint64_t> asc(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) asc[i] = i * 3;
  EXPECT_EQ(radix_sort(asc), asc);

  std::vector<std::uint64_t> desc(asc.rbegin(), asc.rend());
  EXPECT_EQ(radix_sort(desc), asc);
}

TEST(CountingSort, ThreadSweepStable) {
  util::Xoshiro256 rng(8);
  std::vector<std::uint64_t> keys(5000);
  for (auto& k : keys) k = rng.bounded(16);
  const auto ref = counting_sort_perm(keys, 16, {.threads = 1});
  for (const int t : {2, 4, 8}) {
    ASSERT_EQ(counting_sort_perm(keys, 16, {.threads = t}), ref) << t;
  }
}

}  // namespace
}  // namespace crcw::algo
