// ChainedHashSet: Treiber push, self-tombstone dedup, SlotAllocator-backed
// node arena.
#include "ds/chained_hash_set.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace crcw::ds {
namespace {

TEST(ChainedHashSet, InsertThenContains) {
  ChainedHashSet<> set(16, 1);
  EXPECT_EQ(set.insert(0, 7), SetInsert::kInserted);
  EXPECT_EQ(set.insert(0, 9), SetInsert::kInserted);
  EXPECT_EQ(set.insert(0, 7), SetInsert::kFound);
  EXPECT_TRUE(set.contains(7));
  EXPECT_TRUE(set.contains(9));
  EXPECT_FALSE(set.contains(8));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ChainedHashSet, DuplicatesSpendNoNodesWhenVisible) {
  // A key already in the chain is caught by the pre-scan, so repeats from
  // the same thread never draw from the arena.
  ChainedHashSet<> set(8, 1);
  ASSERT_EQ(set.insert(0, 1), SetInsert::kInserted);
  const std::uint64_t grants_after_first = set.allocator().grants();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(set.insert(0, 1), SetInsert::kFound);
  EXPECT_EQ(set.allocator().grants(), grants_after_first);
}

TEST(ChainedHashSet, ArenaExhaustionReportsKFull) {
  // One lane at the default chunk: arena = capacity + 1·chunk nodes; spend
  // them all on distinct keys and the next insert must report kFull
  // without corrupting existing chains.
  ChainedHashSet<> set(4, 1);
  std::uint64_t k = 0;
  std::vector<std::uint64_t> inserted;
  for (;; ++k) {
    const SetInsert r = set.insert(0, k);
    if (r == SetInsert::kFull) break;
    ASSERT_EQ(r, SetInsert::kInserted);
    inserted.push_back(k);
    ASSERT_LT(k, 10000u) << "arena never filled";
  }
  EXPECT_EQ(set.size(), inserted.size());
  for (const std::uint64_t key : inserted) EXPECT_TRUE(set.contains(key));
  EXPECT_FALSE(set.contains(k));  // the refused key is absent
  EXPECT_EQ(set.insert(0, inserted.front()), SetInsert::kFound);  // lookups intact
}

TEST(ChainedHashSet, ForEachVisitsLiveKeysOnce) {
  ChainedHashSet<> set(128, 1);
  for (std::uint64_t k = 0; k < 100; ++k) (void)set.insert(0, k);
  for (std::uint64_t k = 0; k < 100; ++k) (void)set.insert(0, k);  // dups
  std::multiset<std::uint64_t> seen;
  set.for_each([&](std::uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(seen.count(k), 1u);
}

TEST(ChainedHashSet, ChainStatsSeeSpreadKeys) {
  ChainedHashSet<> set(1024, 1);
  for (std::uint64_t k = 0; k < 1000; ++k) (void)set.insert(0, k);
  const ChainStats stats = set.chain_stats();
  EXPECT_GE(stats.mean_live, 1.0);
  EXPECT_GE(stats.longest_live, 1u);
  // max_load 0.5 and an avalanche mixer: long chains would indicate a
  // broken hash. Generous bound — this is a smoke check, not a tail proof.
  EXPECT_LE(stats.longest_live, 16u);
  EXPECT_EQ(stats.live_nodes, 1000u);
  EXPECT_EQ(stats.dead_nodes, 0u);  // no duplicates, no erases
}

TEST(ChainedHashSet, ChainStatsSplitLiveFromDead) {
  // Tombstoned nodes (here: erased keys) must not inflate the occupancy
  // diagnostics — the old pair-returning chain_stats counted them as chain
  // length, overstating what a lookup pays.
  ChainedHashSet<> set(64, 1);
  for (std::uint64_t k = 0; k < 32; ++k) ASSERT_EQ(set.insert(0, k), SetInsert::kInserted);
  for (std::uint64_t k = 0; k < 16; ++k) ASSERT_TRUE(set.erase(k));
  const ChainStats stats = set.chain_stats();
  EXPECT_EQ(stats.live_nodes, 16u);
  EXPECT_EQ(stats.dead_nodes, 16u);
  EXPECT_EQ(set.size(), 16u);
  EXPECT_EQ(set.tombstones(), 16u);
}

TEST(ChainedHashSet, EraseHidesThenReinsertRevives) {
  ChainedHashSet<> set(16, 1);
  ASSERT_EQ(set.insert(0, 5), SetInsert::kInserted);
  EXPECT_TRUE(set.erase(5));
  EXPECT_FALSE(set.contains(5));
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.erase(5));   // second erase: already dead
  EXPECT_FALSE(set.erase(99));  // absent key
  // Re-insert pushes a fresh node; the dead twin deeper in the chain must
  // not make the insert think the key is present.
  EXPECT_EQ(set.insert(0, 5), SetInsert::kInserted);
  EXPECT_TRUE(set.contains(5));
  EXPECT_EQ(set.size(), 1u);
}

TEST(ChainedHashSet, ReclaimRecyclesNodesIntoTheAllocator) {
  // Churn one phase, reclaim, churn again: the second phase's grants must
  // come from the recycled pool, so the arena never runs out even though
  // total inserts far exceed its capacity.
  ChainedHashSet<> set(64, 1);
  EXPECT_EQ(set.allocator().recycled_grants(), 0u);
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (std::uint64_t k = 0; k < 32; ++k) {
      ASSERT_EQ(set.insert(0, 1000 * static_cast<std::uint64_t>(cycle) + k),
                SetInsert::kInserted);
    }
    for (std::uint64_t k = 0; k < 32; ++k) {
      ASSERT_TRUE(set.erase(1000 * static_cast<std::uint64_t>(cycle) + k));
    }
    EXPECT_EQ(set.tombstones(), 32u);
    EXPECT_EQ(set.reclaim(), 32u);
    EXPECT_EQ(set.tombstones(), 0u);
    EXPECT_EQ(set.size(), 0u);
  }
  // Cycle 1 drew one fresh chunk from the arena; every later cycle was
  // served entirely from the recycled pool, so the arena cursor never
  // advanced again — bounded node consumption under unbounded churn.
  EXPECT_EQ(set.allocator().high_water(), set.allocator().chunk());
  EXPECT_EQ(set.allocator().recycled_grants(), 7 * 32u);
  EXPECT_EQ(set.allocator().grants(), 8 * 32u);
}

TEST(ChainedHashSet, MaybeReclaimHonorsWatermark) {
  // Watermark is against the arena (capacity + one lane's chunk slack):
  // a few tombstones stay put, mass churn crosses it.
  HashConfig cfg;
  cfg.reclaim_ratio = 0.25;
  ChainedHashSet<> set(100, 1, cfg);
  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_EQ(set.insert(0, k), SetInsert::kInserted);
  }
  for (std::uint64_t k = 0; k < 4; ++k) ASSERT_TRUE(set.erase(k));
  EXPECT_FALSE(set.needs_reclaim());  // 4 dead << 25% of the arena
  EXPECT_EQ(set.maybe_reclaim(), 0u);
  EXPECT_EQ(set.tombstones(), 4u);  // the skipped reclaim dropped nothing
  for (std::uint64_t k = 4; k < 100; ++k) ASSERT_TRUE(set.erase(k));
  ASSERT_TRUE(set.needs_reclaim());  // 100 dead ≥ 0.25 × (100 + chunk)
  EXPECT_EQ(set.maybe_reclaim(), 100u);
  EXPECT_EQ(set.tombstones(), 0u);
}

TEST(ChainedHashSet, ParallelInsertOneWinnerPerKey) {
  const int threads = std::max(4, omp_get_max_threads());
  constexpr std::uint64_t kKeys = 1000;
  // Every thread offers every key: arena must absorb up to threads×kKeys
  // nodes (losers tombstone, nodes are never reclaimed).
  ChainedHashSet<> set(kKeys * static_cast<std::uint64_t>(threads), threads);
  std::vector<int> winners(kKeys, 0);
#pragma omp parallel num_threads(threads)
  {
    const int lane = omp_get_thread_num();
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      if (set.insert(lane, k) == SetInsert::kInserted) {
#pragma omp atomic
        ++winners[k];
      }
    }
  }
  EXPECT_EQ(set.size(), kKeys);
  std::multiset<std::uint64_t> seen;
  set.for_each([&](std::uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), kKeys);  // tombstones hid every duplicate
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(winners[k], 1) << "key " << k;
    EXPECT_TRUE(set.contains(k));
    EXPECT_EQ(seen.count(k), 1u);
  }
}

TEST(ChainedHashSet, FlushRoundFoldsAllocatorRefills) {
  obs::MetricsRegistry local;
  {
    const obs::ScopedRegistry scoped(local);
    HashConfig cfg;
    cfg.telemetry = true;
    cfg.site_name = "unit-chained";
    ChainedHashSet<> set(2048, 1, cfg);
    for (std::uint64_t k = 0; k < 600; ++k) (void)set.insert(0, k);
    set.flush_round();
    // 600 grants at chunk 256 → 3 shared-cursor refills, surfaced as the
    // site's refills counter.
    EXPECT_EQ(local.totals().refills, set.allocator().refills());
    EXPECT_GE(local.totals().refills, 2u);
    EXPECT_EQ(local.totals().wins, 600u);
  }
}

TEST(ChainedHashSet, RandomizedAgainstStdSet) {
  util::Xoshiro256 rng(7);
  ChainedHashSet<> set(4000, 1);
  std::set<std::uint64_t> reference;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = rng.bounded(1500);
    const bool fresh = reference.insert(k).second;
    EXPECT_EQ(set.insert(0, k),
              fresh ? SetInsert::kInserted : SetInsert::kFound);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const std::uint64_t k : reference) EXPECT_TRUE(set.contains(k));
}

}  // namespace
}  // namespace crcw::ds
