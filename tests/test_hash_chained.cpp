// ChainedHashSet: Treiber push, self-tombstone dedup, SlotAllocator-backed
// node arena.
#include "ds/chained_hash_set.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace crcw::ds {
namespace {

TEST(ChainedHashSet, InsertThenContains) {
  ChainedHashSet<> set(16, 1);
  EXPECT_EQ(set.insert(0, 7), SetInsert::kInserted);
  EXPECT_EQ(set.insert(0, 9), SetInsert::kInserted);
  EXPECT_EQ(set.insert(0, 7), SetInsert::kFound);
  EXPECT_TRUE(set.contains(7));
  EXPECT_TRUE(set.contains(9));
  EXPECT_FALSE(set.contains(8));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ChainedHashSet, DuplicatesSpendNoNodesWhenVisible) {
  // A key already in the chain is caught by the pre-scan, so repeats from
  // the same thread never draw from the arena.
  ChainedHashSet<> set(8, 1);
  ASSERT_EQ(set.insert(0, 1), SetInsert::kInserted);
  const std::uint64_t grants_after_first = set.allocator().grants();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(set.insert(0, 1), SetInsert::kFound);
  EXPECT_EQ(set.allocator().grants(), grants_after_first);
}

TEST(ChainedHashSet, ArenaExhaustionReportsKFull) {
  // One lane at the default chunk: arena = capacity + 1·chunk nodes; spend
  // them all on distinct keys and the next insert must report kFull
  // without corrupting existing chains.
  ChainedHashSet<> set(4, 1);
  std::uint64_t k = 0;
  std::vector<std::uint64_t> inserted;
  for (;; ++k) {
    const SetInsert r = set.insert(0, k);
    if (r == SetInsert::kFull) break;
    ASSERT_EQ(r, SetInsert::kInserted);
    inserted.push_back(k);
    ASSERT_LT(k, 10000u) << "arena never filled";
  }
  EXPECT_EQ(set.size(), inserted.size());
  for (const std::uint64_t key : inserted) EXPECT_TRUE(set.contains(key));
  EXPECT_FALSE(set.contains(k));  // the refused key is absent
  EXPECT_EQ(set.insert(0, inserted.front()), SetInsert::kFound);  // lookups intact
}

TEST(ChainedHashSet, ForEachVisitsLiveKeysOnce) {
  ChainedHashSet<> set(128, 1);
  for (std::uint64_t k = 0; k < 100; ++k) (void)set.insert(0, k);
  for (std::uint64_t k = 0; k < 100; ++k) (void)set.insert(0, k);  // dups
  std::multiset<std::uint64_t> seen;
  set.for_each([&](std::uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(seen.count(k), 1u);
}

TEST(ChainedHashSet, ChainStatsSeeSpreadKeys) {
  ChainedHashSet<> set(1024, 1);
  for (std::uint64_t k = 0; k < 1000; ++k) (void)set.insert(0, k);
  const auto [mean, longest] = set.chain_stats();
  EXPECT_GE(mean, 1.0);
  EXPECT_GE(longest, 1u);
  // max_load 0.5 and an avalanche mixer: long chains would indicate a
  // broken hash. Generous bound — this is a smoke check, not a tail proof.
  EXPECT_LE(longest, 16u);
}

TEST(ChainedHashSet, ParallelInsertOneWinnerPerKey) {
  const int threads = std::max(4, omp_get_max_threads());
  constexpr std::uint64_t kKeys = 1000;
  // Every thread offers every key: arena must absorb up to threads×kKeys
  // nodes (losers tombstone, nodes are never reclaimed).
  ChainedHashSet<> set(kKeys * static_cast<std::uint64_t>(threads), threads);
  std::vector<int> winners(kKeys, 0);
#pragma omp parallel num_threads(threads)
  {
    const int lane = omp_get_thread_num();
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      if (set.insert(lane, k) == SetInsert::kInserted) {
#pragma omp atomic
        ++winners[k];
      }
    }
  }
  EXPECT_EQ(set.size(), kKeys);
  std::multiset<std::uint64_t> seen;
  set.for_each([&](std::uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), kKeys);  // tombstones hid every duplicate
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(winners[k], 1) << "key " << k;
    EXPECT_TRUE(set.contains(k));
    EXPECT_EQ(seen.count(k), 1u);
  }
}

TEST(ChainedHashSet, FlushRoundFoldsAllocatorRefills) {
  obs::MetricsRegistry local;
  {
    const obs::ScopedRegistry scoped(local);
    HashConfig cfg;
    cfg.telemetry = true;
    cfg.site_name = "unit-chained";
    ChainedHashSet<> set(2048, 1, cfg);
    for (std::uint64_t k = 0; k < 600; ++k) (void)set.insert(0, k);
    set.flush_round();
    // 600 grants at chunk 256 → 3 shared-cursor refills, surfaced as the
    // site's refills counter.
    EXPECT_EQ(local.totals().refills, set.allocator().refills());
    EXPECT_GE(local.totals().refills, 2u);
    EXPECT_EQ(local.totals().wins, 600u);
  }
}

TEST(ChainedHashSet, RandomizedAgainstStdSet) {
  util::Xoshiro256 rng(7);
  ChainedHashSet<> set(4000, 1);
  std::set<std::uint64_t> reference;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = rng.bounded(1500);
    const bool fresh = reference.insert(k).second;
    EXPECT_EQ(set.insert(0, k),
              fresh ? SetInsert::kInserted : SetInsert::kFound);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const std::uint64_t k : reference) EXPECT_TRUE(set.contains(k));
}

}  // namespace
}  // namespace crcw::ds
