// AtomicBitset — concurrent boolean flags (a degenerate concurrent write).
#include "util/atomic_bitset.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>

namespace crcw::util {
namespace {

TEST(AtomicBitset, StartsClear) {
  AtomicBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.test(i));
}

TEST(AtomicBitset, SetTestReset) {
  AtomicBitset bits(70);
  bits.set(0);
  bits.set(63);
  bits.set(64);  // crosses the word boundary
  bits.set(69);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(69));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 4u);

  bits.reset(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_EQ(bits.count(), 3u);
}

TEST(AtomicBitset, TestAndSetReportsFirstSetter) {
  AtomicBitset bits(10);
  EXPECT_TRUE(bits.test_and_set(5));
  EXPECT_FALSE(bits.test_and_set(5));
  EXPECT_TRUE(bits.test(5));
}

TEST(AtomicBitset, TestAndResetReportsFirstClearer) {
  AtomicBitset bits(10);
  EXPECT_FALSE(bits.test_and_reset(5));  // already clear: no transition
  bits.set(5);
  EXPECT_TRUE(bits.test_and_reset(5));   // this call cleared it
  EXPECT_FALSE(bits.test_and_reset(5));  // idempotent afterwards
  EXPECT_FALSE(bits.test(5));
}

TEST(AtomicBitsetStress, ExactlyOneFirstClearerPerBit) {
  // The revive race in ConcurrentHashSet::insert: many threads clearing
  // the same tombstone bit, exactly one observes the 1 → 0 transition.
  constexpr std::size_t kBits = 512;
  AtomicBitset bits(kBits);
  for (std::size_t i = 0; i < kBits; ++i) bits.set(i);
  std::atomic<int> first_clearers{0};

#pragma omp parallel num_threads(8)
  {
    for (std::size_t i = 0; i < kBits; ++i) {
      if (bits.test_and_reset(i)) {
        first_clearers.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  EXPECT_EQ(first_clearers.load(), static_cast<int>(kBits));
  EXPECT_EQ(bits.count(), 0u);
}

TEST(AtomicBitset, Clear) {
  AtomicBitset bits(200);
  for (std::size_t i = 0; i < 200; i += 3) bits.set(i);
  EXPECT_GT(bits.count(), 0u);
  bits.clear();
  EXPECT_EQ(bits.count(), 0u);
}

TEST(AtomicBitsetStress, ExactlyOneFirstSetterPerBit) {
  constexpr std::size_t kBits = 512;
  AtomicBitset bits(kBits);
  std::atomic<int> first_setters{0};

#pragma omp parallel num_threads(8)
  {
    for (std::size_t i = 0; i < kBits; ++i) {
      if (bits.test_and_set(i)) first_setters.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EXPECT_EQ(first_setters.load(), static_cast<int>(kBits));
  EXPECT_EQ(bits.count(), kBits);
}

TEST(AtomicBitsetStress, ConcurrentDisjointSets) {
  constexpr std::size_t kBits = 4096;
  AtomicBitset bits(kBits);
#pragma omp parallel for num_threads(8) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(kBits); ++i) {
    if (i % 2 == 0) bits.set(static_cast<std::size_t>(i));
  }
  EXPECT_EQ(bits.count(), kBits / 2);
  for (std::size_t i = 0; i < kBits; ++i) EXPECT_EQ(bits.test(i), i % 2 == 0);
}

}  // namespace
}  // namespace crcw::util
