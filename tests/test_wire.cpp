// The wire codec without sockets: framing round-trips, chunk-boundary
// reassembly, truncation, and the poisoned-decoder error model for
// garbage framing and bad payload bytes.
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace crcw::serve::wire {
namespace {

[[nodiscard]] std::vector<std::uint8_t> bytes_of_request(const Request& r) {
  std::vector<std::uint8_t> out;
  encode_request(r, out);
  return out;
}

TEST(Wire, RequestRoundTripsAllKinds) {
  RequestDecoder dec(64 * 1024);
  const Request cases[] = {
      {1, Op::upsert(42, 7)},
      {0xffff'ffff'ffff'ffffull, Op::lookup(0)},
      {2, Op::erase(~std::uint64_t{0})},
  };
  for (const Request& in : cases) {
    const auto buf = bytes_of_request(in);
    EXPECT_EQ(buf.size(), kRequestFrameBytes);
    dec.feed(buf.data(), buf.size());
    Request out;
    ASSERT_EQ(dec.next(out), DecodeStatus::kFrame);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.op.kind, in.op.kind);
    EXPECT_EQ(out.op.key, in.op.key);
    EXPECT_EQ(out.op.value, in.op.value);
  }
  Request spare;
  EXPECT_EQ(dec.next(spare), DecodeStatus::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Wire, ResponseRoundTrip) {
  const Response in{77, true, 0x0123'4567'89ab'cdefull, 12345, 3};
  std::vector<std::uint8_t> buf;
  encode_response(in, buf);
  EXPECT_EQ(buf.size(), kResponseFrameBytes);

  ResponseDecoder dec(64 * 1024);
  dec.feed(buf.data(), buf.size());
  Response out;
  ASSERT_EQ(dec.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.won, in.won);
  EXPECT_EQ(out.value, in.value);
  EXPECT_EQ(out.round, in.round);
  EXPECT_EQ(out.shard, in.shard);
}

TEST(Wire, ByteAtATimeFeedingReassembles) {
  // The decoder must be chunk-boundary agnostic — the cruellest chunking
  // is one byte per feed.
  const auto buf = bytes_of_request({9, Op::upsert(5, 55)});
  RequestDecoder dec(64 * 1024);
  Request out;
  for (std::size_t i = 0; i + 1 < buf.size(); ++i) {
    dec.feed(&buf[i], 1);
    ASSERT_EQ(dec.next(out), DecodeStatus::kNeedMore) << "byte " << i;
  }
  dec.feed(&buf[buf.size() - 1], 1);
  ASSERT_EQ(dec.next(out), DecodeStatus::kFrame);
  EXPECT_EQ(out.id, 9u);
  EXPECT_EQ(out.op.value, 55u);
}

TEST(Wire, BackToBackFramesInOneChunk) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t i = 0; i < 16; ++i) {
    encode_request({i, Op::upsert(i * 3 + 1, i)}, stream);
  }
  RequestDecoder dec(64 * 1024);
  dec.feed(stream.data(), stream.size());
  for (std::uint64_t i = 0; i < 16; ++i) {
    Request out;
    ASSERT_EQ(dec.next(out), DecodeStatus::kFrame) << "frame " << i;
    EXPECT_EQ(out.id, i);
  }
  Request spare;
  EXPECT_EQ(dec.next(spare), DecodeStatus::kNeedMore);
}

TEST(Wire, TruncatedFrameStaysPendingNotError) {
  const auto buf = bytes_of_request({1, Op::lookup(2)});
  RequestDecoder dec(64 * 1024);
  dec.feed(buf.data(), buf.size() - 4);  // cut mid-payload
  Request out;
  EXPECT_EQ(dec.next(out), DecodeStatus::kNeedMore);
  EXPECT_EQ(dec.next(out), DecodeStatus::kNeedMore);  // still waiting, no error
  dec.feed(buf.data() + buf.size() - 4, 4);
  EXPECT_EQ(dec.next(out), DecodeStatus::kFrame);
}

TEST(Wire, WrongLengthPrefixPoisonsDecoder) {
  // Any prefix other than the fixed payload size is garbage — oversized,
  // undersized, or absurd; the decoder poisons and never recovers.
  const std::uint32_t bad_lens[] = {0, 1, 24, 26, 0xffff'ffff};
  for (const std::uint32_t bad_len : bad_lens) {
    RequestDecoder dec(64 * 1024);
    std::vector<std::uint8_t> buf;
    put_u32(buf, bad_len);
    buf.resize(buf.size() + 64, 0);  // plenty of payload bytes
    dec.feed(buf.data(), buf.size());
    Request out;
    EXPECT_EQ(dec.next(out), DecodeStatus::kError) << "len " << bad_len;
    // Poisoned: even a now-valid frame is refused.
    const auto good = bytes_of_request({1, Op::lookup(1)});
    dec.feed(good.data(), good.size());
    EXPECT_EQ(dec.next(out), DecodeStatus::kError);
  }
}

TEST(Wire, BadOpKindPoisonsDecoder) {
  auto buf = bytes_of_request({1, Op::lookup(1)});
  buf[kLenBytes] = 0x7f;  // kind byte: not an OpKind
  RequestDecoder dec(64 * 1024);
  dec.feed(buf.data(), buf.size());
  Request out;
  EXPECT_EQ(dec.next(out), DecodeStatus::kError);
  const auto good = bytes_of_request({2, Op::lookup(2)});
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(out), DecodeStatus::kError);  // stays poisoned
}

TEST(Wire, ReservedStatusBitsPoisonResponseDecoder) {
  std::vector<std::uint8_t> buf;
  encode_response({1, true, 2, 3, 0}, buf);
  buf[kLenBytes] = 0x83;  // reserved bits set alongside the won bit
  ResponseDecoder dec(64 * 1024);
  dec.feed(buf.data(), buf.size());
  Response out;
  EXPECT_EQ(dec.next(out), DecodeStatus::kError);
}

TEST(Wire, ArbitraryGarbageNeverCrashes) {
  // Fuzz-shaped smoke: a deterministic xorshift byte stream fed at odd
  // chunk sizes must only ever yield kNeedMore/kError — no crash, no
  // unbounded buffering past the first error.
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  std::vector<std::uint8_t> noise(4096);
  for (auto& b : noise) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  RequestDecoder dec(64 * 1024);
  bool errored = false;
  std::size_t off = 0;
  for (std::size_t chunk = 1; off < noise.size(); chunk = chunk % 7 + 1) {
    const std::size_t n = std::min(chunk, noise.size() - off);
    dec.feed(noise.data() + off, n);
    off += n;
    Request out;
    const DecodeStatus st = dec.next(out);
    EXPECT_NE(st, DecodeStatus::kFrame);  // 25-byte prefix in noise: ~2^-32
    errored = errored || st == DecodeStatus::kError;
  }
  EXPECT_TRUE(errored);  // random u32 ≠ 25 almost surely, and that poisons
}

TEST(Wire, StreamKindsRoundTrip) {
  // The stream vocabulary reuses the fixed 25-byte frame: packed edges in
  // key, vertex pairs split across key/value — nothing about the framing
  // may change per kind.
  RequestDecoder dec(64 * 1024);
  const Request cases[] = {
      {10, Op::edge_insert(3, 7, 99)},
      {11, Op::edge_erase(0xffff'fffe, 0)},
      {12, Op::same_component(5, 0xffff'ffff)},
      {13, Op::component_size(0)},
  };
  for (const Request& in : cases) {
    const auto buf = bytes_of_request(in);
    EXPECT_EQ(buf.size(), kRequestFrameBytes);
    dec.feed(buf.data(), buf.size());
    Request out;
    ASSERT_EQ(dec.next(out), DecodeStatus::kFrame);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.op.kind, in.op.kind);
    EXPECT_EQ(out.op.key, in.op.key);
    EXPECT_EQ(out.op.value, in.op.value);
  }
}

TEST(Wire, StreamKindTruncationSweep) {
  // Every proper prefix of every stream-kind frame must park the decoder
  // at kNeedMore (never a bogus frame, never an error), and the remainder
  // must complete it.
  const Request cases[] = {
      {1, Op::edge_insert(1, 2, 7)},
      {2, Op::edge_erase(8, 9)},
      {3, Op::same_component(4, 5)},
      {4, Op::component_size(6)},
  };
  for (const Request& in : cases) {
    const auto buf = bytes_of_request(in);
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
      RequestDecoder dec(64 * 1024);
      dec.feed(buf.data(), cut);
      Request out;
      ASSERT_EQ(dec.next(out), DecodeStatus::kNeedMore)
          << "kind " << static_cast<int>(in.op.kind) << " cut " << cut;
      dec.feed(buf.data() + cut, buf.size() - cut);
      ASSERT_EQ(dec.next(out), DecodeStatus::kFrame);
      EXPECT_EQ(out.op.key, in.op.key);
    }
  }
}

TEST(Wire, SnapshotKindsRoundTripAndSurviveTruncationSweep) {
  // The snapshot vocabulary rides the same fixed frame with zeroed
  // key/value; framing, truncation parking and reassembly must behave
  // exactly like every other kind.
  const Request cases[] = {
      {21, Op::snapshot_create()},
      {22, Op::snapshot_scan()},
  };
  for (const Request& in : cases) {
    const auto buf = bytes_of_request(in);
    EXPECT_EQ(buf.size(), kRequestFrameBytes);
    for (std::size_t cut = 1; cut < buf.size(); ++cut) {
      RequestDecoder dec(64 * 1024);
      dec.feed(buf.data(), cut);
      Request out;
      ASSERT_EQ(dec.next(out), DecodeStatus::kNeedMore)
          << "kind " << static_cast<int>(in.op.kind) << " cut " << cut;
      dec.feed(buf.data() + cut, buf.size() - cut);
      ASSERT_EQ(dec.next(out), DecodeStatus::kFrame);
      EXPECT_EQ(out.id, in.id);
      EXPECT_EQ(out.op.kind, in.op.kind);
      EXPECT_EQ(out.op.key, 0u);
      EXPECT_EQ(out.op.value, 0u);
    }
  }
}

TEST(Wire, SnapshotKindsWithGarbagePayloadBytesStillDecode) {
  // Fuzz-shaped: a snapshot op's key/value are ignored by the server, and
  // the decoder must not reject frames whose payload bytes are nonzero —
  // only the kind byte is validated. (Poisoning on payload content would
  // let an old client's stale buffer wedge a healthy connection.)
  std::uint64_t x = 0x243f6a8885a308d3ull;
  for (int trial = 0; trial < 64; ++trial) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    Request in{trial % 2 == 0 ? x : ~x,
               {trial % 2 == 0 ? OpKind::kSnapshotCreate : OpKind::kSnapshotScan,
                x * 0x9e37u, ~x}};
    const auto buf = bytes_of_request(in);
    RequestDecoder dec(64 * 1024);
    dec.feed(buf.data(), buf.size());
    Request out;
    ASSERT_EQ(dec.next(out), DecodeStatus::kFrame) << "trial " << trial;
    EXPECT_EQ(out.op.kind, in.op.kind);
    EXPECT_EQ(out.op.key, in.op.key);
  }
}

TEST(Wire, KindsJustPastTheStreamVocabularyPoison) {
  // The valid range grew to kSnapshotScan; the first byte past it (and
  // anything beyond) must poison exactly like 0x7f always did — an old
  // decoder updated for the new kinds must not silently widen further.
  for (const std::uint8_t bad : {std::uint8_t{9}, std::uint8_t{10}, std::uint8_t{0x7f},
                                 std::uint8_t{0xff}}) {
    auto buf = bytes_of_request({1, Op::component_size(1)});
    buf[kLenBytes] = bad;  // kind byte
    RequestDecoder dec(64 * 1024);
    dec.feed(buf.data(), buf.size());
    Request out;
    EXPECT_EQ(dec.next(out), DecodeStatus::kError) << "kind " << int{bad};
    const auto good = bytes_of_request({2, Op::same_component(1, 2)});
    dec.feed(good.data(), good.size());
    EXPECT_EQ(dec.next(out), DecodeStatus::kError) << "must stay poisoned";
  }
}

TEST(Wire, FrameReaderCompactsConsumedPrefix) {
  // A long-lived connection must not buffer the whole stream: after the
  // frames are consumed and the reader drains, the buffer resets.
  FrameReader reader(kRequestPayloadBytes, 64 * 1024);
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 100; ++i) {
    const auto buf = bytes_of_request({static_cast<std::uint64_t>(i), Op::lookup(1)});
    reader.feed(buf.data(), buf.size());
    ASSERT_EQ(reader.next(payload), DecodeStatus::kFrame);
  }
  EXPECT_EQ(reader.next(payload), DecodeStatus::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

}  // namespace
}  // namespace crcw::serve::wire
