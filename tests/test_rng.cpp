// RNG determinism and distribution sanity.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace crcw::util {
namespace {

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 from the canonical splitmix64.c.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(g.next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(g.next(), 0x06c45d188009454full);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 g(5);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(g.bounded(bound), bound);
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 g(5);
  EXPECT_EQ(g.bounded(0), 0u);
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 g(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(g.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedCoversSmallRange) {
  Xoshiro256 g(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(g.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 g(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[g.bounded(kBuckets)];
  // Expected 10000 per bucket; allow ±5 sigma (~±470).
  for (const int c : counts) {
    EXPECT_GT(c, 9500);
    EXPECT_LT(c, 10500);
  }
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 g(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = g.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, JumpDecorrelatesStreams) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ull);
  Xoshiro256 g(1);
  EXPECT_NE(g(), g());
}

}  // namespace
}  // namespace crcw::util
