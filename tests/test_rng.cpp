// RNG determinism, distribution sanity, and mixing (avalanche) quality.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "ds/hash_common.hpp"

namespace crcw::util {
namespace {

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 from the canonical splitmix64.c.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(g.next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(g.next(), 0x06c45d188009454full);
}

TEST(SplitMix64, AvalancheSmoke) {
  // The mixer behind seeding AND the ds/ tables' bucket spread: flipping
  // any single input bit should flip about half the output bits. A weak
  // mixer here means clustered home buckets and quadratic probe walks, so
  // pin the property, not just known vectors. Thresholds are loose (smoke,
  // not BigCrush): per-flip within [12, 52] of 64, grand mean within ±2 of
  // 32 over 64 bits × 64 seeds.
  std::uint64_t total_flips = 0;
  int trials = 0;
  SplitMix64 seeds(0xdecafbadULL);
  for (int s = 0; s < 64; ++s) {
    const std::uint64_t x = seeds.next();
    const std::uint64_t base = SplitMix64(x).next();
    for (int b = 0; b < 64; ++b) {
      const std::uint64_t flipped = SplitMix64(x ^ (1ull << b)).next();
      const int flips = std::popcount(base ^ flipped);
      ASSERT_GE(flips, 12) << "seed " << x << " bit " << b;
      ASSERT_LE(flips, 52) << "seed " << x << " bit " << b;
      total_flips += static_cast<std::uint64_t>(flips);
      ++trials;
    }
  }
  const double mean = static_cast<double>(total_flips) / trials;
  EXPECT_NEAR(mean, 32.0, 2.0);
}

TEST(SplitMix64, DsMixerIsTheSameFinalizer) {
  // ds::mix64 is splitmix64's finalizer; SplitMix64::next() is that
  // finalizer applied to state + gamma. Pin the relationship so the two
  // can't drift apart (the avalanche evidence above then covers both).
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ull;
  SplitMix64 seeds(42);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = seeds.next();
    EXPECT_EQ(ds::mix64(x + kGamma), SplitMix64(x).next());
    EXPECT_EQ(ds::mix64(x, 1), SplitMix64(x).next());  // seeded form, seed 1
  }
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 g(5);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(g.bounded(bound), bound);
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 g(5);
  EXPECT_EQ(g.bounded(0), 0u);
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 g(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(g.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedCoversSmallRange) {
  Xoshiro256 g(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(g.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 g(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[g.bounded(kBuckets)];
  // Expected 10000 per bucket; allow ±5 sigma (~±470).
  for (const int c : counts) {
    EXPECT_GT(c, 9500);
    EXPECT_LT(c, 10500);
  }
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 g(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = g.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, JumpDecorrelatesStreams) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ull);
  Xoshiro256 g(1);
  EXPECT_NE(g(), g());
}

}  // namespace
}  // namespace crcw::util
