// Gatekeeper — the prefix-sum baseline of paper Figure 2.
#include "core/gatekeeper.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "core/arbiter.hpp"

namespace crcw {
namespace {

TEST(Gatekeeper, FirstContenderWins) {
  Gatekeeper g;
  EXPECT_TRUE(g.try_acquire());
  EXPECT_FALSE(g.try_acquire());
  EXPECT_FALSE(g.try_acquire());
}

TEST(Gatekeeper, CountsContenders) {
  Gatekeeper g;
  (void)g.try_acquire();
  (void)g.try_acquire();
  (void)g.try_acquire();
  EXPECT_EQ(g.contenders(), 3u);
  EXPECT_TRUE(g.taken());
}

TEST(Gatekeeper, RequiresResetBetweenRounds) {
  Gatekeeper g;
  ASSERT_TRUE(g.try_acquire());
  // Without a reset, no one can ever win again — the structural weakness
  // CAS-LT removes (§5).
  EXPECT_FALSE(g.try_acquire());
  g.reset();
  EXPECT_TRUE(g.try_acquire());
}

TEST(Gatekeeper, SkipVariantSameWinnerSemantics) {
  Gatekeeper g;
  EXPECT_TRUE(g.try_acquire_skip());
  EXPECT_FALSE(g.try_acquire_skip());
  g.reset();
  EXPECT_TRUE(g.try_acquire_skip());
}

TEST(Gatekeeper, SkipVariantAvoidsRmwWhenTaken) {
  Gatekeeper g;
  ASSERT_TRUE(g.try_acquire());
  const auto before = g.contenders();
  // The mitigated check must not bump the counter once a winner exists.
  EXPECT_FALSE(g.try_acquire_skip());
  EXPECT_EQ(g.contenders(), before);
  // The unmitigated check always pays the RMW.
  EXPECT_FALSE(g.try_acquire());
  EXPECT_EQ(g.contenders(), before + 1);
}

TEST(GatekeeperStress, ExactlyOneWinnerPerRound) {
  Gatekeeper g;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (g.try_acquire()) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << round;
    ASSERT_EQ(g.contenders(), static_cast<std::uint64_t>(threads));
    g.reset();
  }
}

TEST(GatekeeperStress, SkipExactlyOneWinnerPerRound) {
  Gatekeeper g;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (g.try_acquire_skip()) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << round;
    // With the skip, contenders that arrive after the winner never RMW.
    ASSERT_LE(g.contenders(), static_cast<std::uint64_t>(threads));
    g.reset();
  }
}

TEST(Gatekeeper, SizeIsOneWord) {
  EXPECT_EQ(sizeof(Gatekeeper), sizeof(std::uint64_t));
}

/// Reset racing late acquires: one thread resets at full speed while the
/// rest hammer both acquire paths with no round structure. Every win
/// consumes a zero, and zeros only come from the initial state or a reset,
/// so total wins <= resets + 1. (The release/acquire pair added to
/// reset()/try_acquire_skip() also makes this hand-off well-ordered for
/// payloads — the TSan stress tier checks that half; see
/// tests/stress/stress_gatekeeper.cpp.)
TEST(GatekeeperStress, ResetRacingLateAcquiresBoundedWins) {
  Gatekeeper gate;
  const int threads = std::max(4, omp_get_max_threads());
  constexpr int kResets = 500;
  std::atomic<std::uint64_t> total_wins{0};
  std::atomic<bool> stop{false};

#pragma omp parallel num_threads(threads)
  {
    const int tid = omp_get_thread_num();
    if (tid == 0) {
      for (int e = 0; e < kResets; ++e) gate.reset();
      stop.store(true, std::memory_order_release);
    } else {
      std::uint64_t wins = 0;
      do {
        if (tid % 2 == 0 ? gate.try_acquire_skip() : gate.try_acquire()) ++wins;
      } while (!stop.load(std::memory_order_acquire));
      total_wins.fetch_add(wins, std::memory_order_relaxed);
    }
  }

  EXPECT_GE(total_wins.load(), 1u);
  EXPECT_LE(total_wins.load(), static_cast<std::uint64_t>(kResets) + 1);
}

/// Per-round exactly-one-winner with the reset issued by a *different*
/// thread each round (rotating coordinator): the release reset must hand
/// the re-opened gate to whichever thread resets next, regardless of
/// affinity.
TEST(GatekeeperStress, RotatingCoordinatorExactlyOneWinnerPerRound) {
  Gatekeeper gate;
  const int threads = std::max(4, omp_get_max_threads());
  constexpr int kRounds = 200;
  std::atomic<int> winners{0};
  std::atomic<int> failures{0};

#pragma omp parallel num_threads(threads)
  {
    const int tid = omp_get_thread_num();
    for (int r = 0; r < kRounds; ++r) {
      if (gate.try_acquire_skip()) winners.fetch_add(1, std::memory_order_relaxed);
#pragma omp barrier
      if (tid == r % threads) {
        if (winners.exchange(0, std::memory_order_relaxed) != 1) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        gate.reset();
      }
#pragma omp barrier
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

/// Sparse-reset torture: frontier-shaped rounds (a small distinct target
/// set under full thread contention) reset through the touched lists must
/// leave the arbiter in exactly the state the full Θ(N) sweep produces —
/// every tag fresh, every list empty. The touched count also pins the
/// winner-only recording: one entry per won target, none for losers.
TEST(GatekeeperStress, SparseResetMatchesFullResetState) {
  constexpr std::size_t kTargets = 4096;
  constexpr int kRounds = 100;
  const int threads = std::max(4, omp_get_max_threads());

  ArbiterConfig cfg;
  cfg.tracking = TouchTracking::kEnabled;
  cfg.lanes = threads;
  WriteArbiter<GatekeeperPolicy> sparse(kTargets, cfg);
  WriteArbiter<GatekeeperPolicy> full(kTargets);

  for (int r = 0; r < kRounds; ++r) {
    // Distinct strided target set, size varying per round (131 ⊥ 4096).
    const std::size_t writes = 1 + (static_cast<std::size_t>(r) * 37) % 512;
    std::atomic<std::uint64_t> sparse_wins{0};
    std::atomic<std::uint64_t> full_wins{0};
    {
      auto sparse_scope = sparse.next_round(ResetMode::kNone);
      auto full_scope = full.next_round(ResetMode::kNone);
#pragma omp parallel num_threads(threads)
      {
        for (std::size_t a = 0; a < writes; ++a) {
          const std::size_t target = (a * 131) % kTargets;
          if (sparse_scope.acquire(target)) {
            sparse_wins.fetch_add(1, std::memory_order_relaxed);
          }
          if (full_scope.acquire(target)) {
            full_wins.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
    ASSERT_EQ(sparse_wins.load(), writes) << "round " << r;
    ASSERT_EQ(full_wins.load(), writes) << "round " << r;
    ASSERT_EQ(sparse.touched_count(), writes) << "round " << r;

    sparse.reset_tags_sparse(threads);
    full.reset_tags_parallel(threads);
    ASSERT_EQ(sparse.touched_count(), 0u);

    // Both reset paths must agree on the full tag state: everything fresh.
    for (std::size_t i = 0; i < kTargets; ++i) {
      ASSERT_EQ(sparse.tag(i).contenders(), full.tag(i).contenders());
      ASSERT_EQ(sparse.tag(i).contenders(), 0u) << "stale tag " << i;
    }
  }
}

/// Tracking off = the documented fallback: reset_tags_sparse degrades to
/// the full sweep, so correctness never depends on the config.
TEST(GatekeeperStress, SparseResetFallsBackWithoutTracking) {
  constexpr std::size_t kTargets = 512;
  WriteArbiter<GatekeeperPolicy> arbiter(kTargets);  // tracking disabled
  EXPECT_FALSE(arbiter.tracking());
  {
    auto scope = arbiter.next_round(ResetMode::kNone);
    for (std::size_t i = 0; i < kTargets; i += 3) ASSERT_TRUE(scope.acquire(i));
  }
  arbiter.reset_tags_sparse();  // must sweep everything despite no lists
  for (std::size_t i = 0; i < kTargets; ++i) {
    ASSERT_EQ(arbiter.tag(i).contenders(), 0u) << "stale tag " << i;
  }
}

}  // namespace
}  // namespace crcw
