// Gatekeeper — the prefix-sum baseline of paper Figure 2.
#include "core/gatekeeper.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>

namespace crcw {
namespace {

TEST(Gatekeeper, FirstContenderWins) {
  Gatekeeper g;
  EXPECT_TRUE(g.try_acquire());
  EXPECT_FALSE(g.try_acquire());
  EXPECT_FALSE(g.try_acquire());
}

TEST(Gatekeeper, CountsContenders) {
  Gatekeeper g;
  (void)g.try_acquire();
  (void)g.try_acquire();
  (void)g.try_acquire();
  EXPECT_EQ(g.contenders(), 3u);
  EXPECT_TRUE(g.taken());
}

TEST(Gatekeeper, RequiresResetBetweenRounds) {
  Gatekeeper g;
  ASSERT_TRUE(g.try_acquire());
  // Without a reset, no one can ever win again — the structural weakness
  // CAS-LT removes (§5).
  EXPECT_FALSE(g.try_acquire());
  g.reset();
  EXPECT_TRUE(g.try_acquire());
}

TEST(Gatekeeper, SkipVariantSameWinnerSemantics) {
  Gatekeeper g;
  EXPECT_TRUE(g.try_acquire_skip());
  EXPECT_FALSE(g.try_acquire_skip());
  g.reset();
  EXPECT_TRUE(g.try_acquire_skip());
}

TEST(Gatekeeper, SkipVariantAvoidsRmwWhenTaken) {
  Gatekeeper g;
  ASSERT_TRUE(g.try_acquire());
  const auto before = g.contenders();
  // The mitigated check must not bump the counter once a winner exists.
  EXPECT_FALSE(g.try_acquire_skip());
  EXPECT_EQ(g.contenders(), before);
  // The unmitigated check always pays the RMW.
  EXPECT_FALSE(g.try_acquire());
  EXPECT_EQ(g.contenders(), before + 1);
}

TEST(GatekeeperStress, ExactlyOneWinnerPerRound) {
  Gatekeeper g;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (g.try_acquire()) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << round;
    ASSERT_EQ(g.contenders(), static_cast<std::uint64_t>(threads));
    g.reset();
  }
}

TEST(GatekeeperStress, SkipExactlyOneWinnerPerRound) {
  Gatekeeper g;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (g.try_acquire_skip()) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << round;
    // With the skip, contenders that arrive after the winner never RMW.
    ASSERT_LE(g.contenders(), static_cast<std::uint64_t>(threads));
    g.reset();
  }
}

TEST(Gatekeeper, SizeIsOneWord) {
  EXPECT_EQ(sizeof(Gatekeeper), sizeof(std::uint64_t));
}

}  // namespace
}  // namespace crcw
