// ConWriteSlot — multi-word concurrent writes, and the torn-write failure
// mode the paper's §4 warns about ("a structure that does not match any of
// the ones being written").
#include "core/slot.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cstdint>

namespace crcw {
namespace {

using Payload = Stamped<8>;

TEST(Stamped, ConsistencyDetection) {
  Payload p(42);
  EXPECT_TRUE(p.consistent());
  EXPECT_EQ(p.stamp(), 42u);
  p.words[3] = 7;
  EXPECT_FALSE(p.consistent());
}

TEST(ConWriteSlot, WinnerWritesWholeStruct) {
  ConWriteSlot<Payload> slot;
  EXPECT_TRUE(slot.try_write(1, Payload(5)));
  EXPECT_TRUE(slot.read().consistent());
  EXPECT_EQ(slot.read().stamp(), 5u);
  EXPECT_FALSE(slot.try_write(1, Payload(6)));
  EXPECT_EQ(slot.read().stamp(), 5u);
}

TEST(ConWriteSlot, RoundsAdvanceWithoutReset) {
  ConWriteSlot<Payload> slot;
  for (round_t r = 1; r <= 20; ++r) {
    ASSERT_TRUE(slot.try_write(r, Payload(r)));
    ASSERT_FALSE(slot.try_write(r, Payload(r + 100)));
    ASSERT_EQ(slot.read().stamp(), r);
  }
}

/// Protected multi-word arbitrary CW: under heavy contention the payload is
/// never torn and always equals one of the offered values.
TEST(ConWriteSlotStress, ProtectedWritesNeverTear) {
  const int threads = std::max(4, omp_get_max_threads());
  ConWriteSlot<Payload> slot(Payload(0));
  for (round_t round = 1; round <= 300; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      const auto stamp = static_cast<std::uint64_t>(omp_get_thread_num() + 1) * 1000000 +
                         static_cast<std::uint64_t>(round);
      if (slot.try_write(round, Payload(stamp))) {
        winners.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ASSERT_EQ(winners.load(), 1);
    ASSERT_TRUE(slot.read().consistent()) << "torn multi-word write in round " << round;
    ASSERT_EQ(slot.read().stamp() % 1000000, round % 1000000);
  }
}

/// The demonstration the paper argues from: unprotected racing struct
/// copies CAN tear. We can't force tearing deterministically, so this test
/// only *checks the detector plumbing* under race and asserts the stronger
/// property that each word carries SOME offered stamp — and records
/// (without failing) whether tearing was observed.
TEST(ConWriteSlotStress, UnprotectedWritesAreDetectablyUnsafe) {
  const int threads = std::max(4, omp_get_max_threads());
  ConWriteSlot<Payload> slot(Payload(0));
  int torn_observed = 0;
  for (int round = 1; round <= 300; ++round) {
#pragma omp parallel num_threads(threads)
    {
      const auto stamp =
          static_cast<std::uint64_t>(omp_get_thread_num() + 1) * 1000000 +
          static_cast<std::uint64_t>(round);
      Payload p(stamp);
      slot.write_unprotected(p);
    }
    const Payload& seen = slot.read();
    if (!seen.consistent()) ++torn_observed;
    // Every word must be one of this round's offers (stores are word-wise).
    for (const std::uint64_t w : seen.words) {
      const std::uint64_t tid = w / 1000000;
      const std::uint64_t r = w % 1000000;
      ASSERT_GE(tid, 1u);
      ASSERT_LE(tid, static_cast<std::uint64_t>(threads));
      ASSERT_EQ(r, static_cast<std::uint64_t>(round));
    }
  }
  // Informational: on a single-core box preemption-induced tearing is rare;
  // on real multicores this is routinely nonzero.
  RecordProperty("torn_rounds", torn_observed);
}

TEST(ConWriteSlot, CriticalPolicySlot) {
  ConWriteSlot<Payload, CriticalPolicy> slot;
  EXPECT_TRUE(slot.try_write(1, Payload(9)));
  EXPECT_FALSE(slot.try_write(1, Payload(10)));
  EXPECT_EQ(slot.read().stamp(), 9u);
}

}  // namespace
}  // namespace crcw
