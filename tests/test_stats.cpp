// Statistics used by the benchmark harness (geomean speedups etc.).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace crcw::util {
namespace {

TEST(Accumulator, EmptyState) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
}

TEST(Accumulator, MeanAndVariance) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(Accumulator, HandlesNegatives) {
  Accumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), -3.0);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Summarize, OrderStatistics) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(QuantileSorted, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.5);
}

TEST(QuantileSorted, Rejections) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile_sorted(xs, 1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 1.0);
}

TEST(GeometricMean, MatchesHandComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_NEAR(geometric_mean(xs), 2.0, 1e-12);
}

TEST(GeometricMean, PaperStyleSpeedups) {
  // Per-point speedups like §7.2's "geometric mean 1.98x".
  const std::vector<double> speedups = {1.5, 2.0, 2.5, 1.98};
  const double g = geometric_mean(speedups);
  EXPECT_GT(g, 1.5);
  EXPECT_LT(g, 2.5);
}

TEST(GeometricMean, EmptyIsZero) { EXPECT_EQ(geometric_mean({}), 0.0); }

TEST(GeometricMean, RejectsNonPositive) {
  const std::vector<double> bad = {1.0, 0.0};
  EXPECT_THROW(geometric_mean(bad), std::invalid_argument);
  const std::vector<double> neg = {1.0, -2.0};
  EXPECT_THROW(geometric_mean(neg), std::invalid_argument);
}

TEST(Ratios, ElementWise) {
  const std::vector<double> a = {10.0, 9.0};
  const std::vector<double> b = {2.0, 3.0};
  const auto r = ratios(a, b);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
}

TEST(Ratios, Rejections) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(ratios(a, b), std::invalid_argument);
  const std::vector<double> z = {1.0, 0.0};
  EXPECT_THROW(ratios(a, z), std::invalid_argument);
}

}  // namespace
}  // namespace crcw::util
