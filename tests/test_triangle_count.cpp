// triangle_count: known closed forms on structured graphs, agreement on
// random graphs, both ds/ tables against the serial baseline.
#include "algorithms/triangle_count.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "algorithms/dispatch.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace crcw::algo {
namespace {

using graph::build_csr;

TEST(TriangleCount, EmptyAndTinyGraphs) {
  for (const auto& method : triangle_methods()) {
    EXPECT_EQ(run_triangles(method, graph::Csr{}), 0u) << method;
    EXPECT_EQ(run_triangles(method, build_csr(2, graph::path(2))), 0u) << method;
  }
}

TEST(TriangleCount, KnownClosedForms) {
  // K_n has C(n,3) triangles; paths and cycles >3 have none; C_3 is one.
  const struct {
    graph::Csr g;
    std::uint64_t expected;
  } cases[] = {
      {build_csr(3, graph::complete(3)), 1},
      {build_csr(4, graph::complete(4)), 4},
      {build_csr(7, graph::complete(7)), 35},
      {build_csr(10, graph::path(10)), 0},
      {build_csr(3, graph::cycle(3)), 1},
      {build_csr(8, graph::cycle(8)), 0},
      {build_csr(9, graph::star(9)), 0},
  };
  for (const auto& [g, expected] : cases) {
    for (const auto& method : triangle_methods()) {
      EXPECT_EQ(run_triangles(method, g), expected)
          << method << " on n=" << g.num_vertices();
    }
  }
}

TEST(TriangleCount, MethodsAgreeOnRandomGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const graph::Csr g = build_csr(300, graph::gnm_simple(300, 2000, seed));
    const std::uint64_t expected = triangle_count_serial(g);
    for (const auto& method : triangle_methods()) {
      EXPECT_EQ(run_triangles(method, g), expected) << method << " seed " << seed;
    }
  }
}

TEST(TriangleCount, SingleThreadMatchesParallel) {
  const graph::Csr g = build_csr(200, graph::gnm_simple(200, 1500, 9));
  TriangleOptions serial;
  serial.threads = 1;
  const std::uint64_t expected = triangle_count_serial(g);
  for (const auto& method : triangle_methods()) {
    EXPECT_EQ(run_triangles(method, g, serial), expected) << method;
  }
}

TEST(TriangleCount, ProfileReportsEdgeTableWork) {
  const graph::Csr g = build_csr(100, graph::gnm_simple(100, 800, 5));
  for (const auto& method : triangle_methods()) {
    const auto totals = profile_triangles(method, g);
    if (method == "serial") {
      EXPECT_FALSE(totals.has_value());
      continue;
    }
    ASSERT_TRUE(totals.has_value()) << method;
    // One win per undirected edge (the build inserts each exactly once).
    EXPECT_EQ(totals->wins, g.num_edges() / 2) << method;
    EXPECT_GE(totals->attempts, totals->wins) << method;
  }
}

TEST(TriangleCount, UnknownMethodThrows) {
  EXPECT_THROW((void)run_triangles("nope", graph::Csr{}), std::invalid_argument);
}

}  // namespace
}  // namespace crcw::algo
