// The JSON document model under the BENCH_*.json emitter: deterministic
// serialisation, insertion-ordered objects, and a parser good enough to
// round-trip everything the emitter produces.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

namespace json = crcw::obs::json;

namespace {

TEST(ObsJson, ScalarsDumpCanonically) {
  // dump() is newline-terminated (documents are written to files whole).
  EXPECT_EQ(json::Value(nullptr).dump(), "null\n");
  EXPECT_EQ(json::Value(true).dump(), "true\n");
  EXPECT_EQ(json::Value(false).dump(), "false\n");
  EXPECT_EQ(json::Value(std::int64_t{-42}).dump(), "-42\n");
  EXPECT_EQ(json::Value(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615\n");
  EXPECT_EQ(json::Value("hi").dump(), "\"hi\"\n");
}

TEST(ObsJson, DoublesUseShortestRoundTrip) {
  // std::to_chars shortest form: no trailing zeros, round-trips exactly.
  EXPECT_EQ(json::Value(0.5).dump(), "0.5\n");
  EXPECT_EQ(json::Value(1.0).dump(), json::Value(1.0).dump());
  const double v = 123456.789;
  EXPECT_DOUBLE_EQ(json::parse(json::Value(v).dump()).as_double(), v);
}

TEST(ObsJson, StringEscapes) {
  const json::Value v("a\"b\\c\nd\te");
  const std::string dumped = v.dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\"\n");
  EXPECT_EQ(json::parse(dumped).as_string(), "a\"b\\c\nd\te");
}

TEST(ObsJson, ObjectKeepsInsertionOrder) {
  json::Value obj = json::Value::object();
  obj.add("zebra", 1);
  obj.add("alpha", 2);
  obj.add("mid", 3);
  ASSERT_EQ(obj.members().size(), 3u);
  EXPECT_EQ(obj.members()[0].first, "zebra");
  EXPECT_EQ(obj.members()[1].first, "alpha");
  EXPECT_EQ(obj.members()[2].first, "mid");
  // Order survives a dump/parse round trip (the schema is position-stable).
  const json::Value back = json::parse(obj.dump());
  EXPECT_EQ(back.members()[0].first, "zebra");
  EXPECT_EQ(back.members()[2].first, "mid");
}

TEST(ObsJson, DumpIsByteDeterministic) {
  const auto build = [] {
    json::Value doc = json::Value::object();
    doc.add("name", "bench");
    json::Value arr = json::Value::array();
    arr.push_back(1);
    arr.push_back(2.5);
    arr.push_back(json::Value(nullptr));
    doc.add("xs", std::move(arr));
    return doc.dump();
  };
  EXPECT_EQ(build(), build());
}

TEST(ObsJson, RoundTripNestedDocument) {
  json::Value doc = json::Value::object();
  doc.add("schema", "crcw-bench");
  doc.add("version", 1);
  json::Value row = json::Value::object();
  row.add("median_ns", 1234.5);
  row.add("counters", json::Value(nullptr));
  json::Value rows = json::Value::array();
  rows.push_back(std::move(row));
  doc.add("rows", std::move(rows));

  const json::Value back = json::parse(doc.dump());
  ASSERT_NE(back.find("rows"), nullptr);
  const auto& rows_back = back.find("rows")->items();
  ASSERT_EQ(rows_back.size(), 1u);
  EXPECT_DOUBLE_EQ(rows_back[0].find("median_ns")->as_double(), 1234.5);
  EXPECT_TRUE(rows_back[0].find("counters")->is_null());
  // Re-dumping the parsed document reproduces the original bytes.
  EXPECT_EQ(back.dump(), doc.dump());
}

TEST(ObsJson, ParseNumberTypes) {
  EXPECT_EQ(json::parse("7").type(), json::Value::Type::kInt);
  EXPECT_EQ(json::parse("-7").as_int(), -7);
  EXPECT_EQ(json::parse("18446744073709551615").as_uint(), 18446744073709551615ull);
  EXPECT_EQ(json::parse("2.5").type(), json::Value::Type::kDouble);
  EXPECT_DOUBLE_EQ(json::parse("1e3").as_double(), 1000.0);
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), std::invalid_argument);
  EXPECT_THROW((void)json::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("{} trailing"), std::invalid_argument);
}

TEST(ObsJson, FindOnlyWorksOnObjects) {
  json::Value obj = json::Value::object();
  obj.add("k", 1);
  ASSERT_NE(obj.find("k"), nullptr);
  EXPECT_EQ(obj.find("absent"), nullptr);
  EXPECT_EQ(json::Value(1).find("k"), nullptr);
}

}  // namespace
