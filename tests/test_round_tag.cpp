// RoundTag unit tests: the CAS-LT primitive of paper Figure 1.
#include "core/round_tag.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace crcw {
namespace {

TEST(RoundTag, FreshTagHoldsInitialRound) {
  RoundTag tag;
  EXPECT_EQ(tag.last_round(), kInitialRound);
  EXPECT_FALSE(tag.committed(kInitialRound + 1));
}

TEST(RoundTag, FirstAcquireWins) {
  RoundTag tag;
  EXPECT_TRUE(tag.try_acquire(1));
  EXPECT_EQ(tag.last_round(), 1u);
  EXPECT_TRUE(tag.committed(1));
}

TEST(RoundTag, SecondAcquireSameRoundFails) {
  RoundTag tag;
  ASSERT_TRUE(tag.try_acquire(1));
  EXPECT_FALSE(tag.try_acquire(1));
}

TEST(RoundTag, NewRoundNeedsNoReset) {
  RoundTag tag;
  ASSERT_TRUE(tag.try_acquire(1));
  // Bumping the round re-arms the tag "for free" (paper §5).
  EXPECT_TRUE(tag.try_acquire(2));
  EXPECT_FALSE(tag.try_acquire(2));
}

TEST(RoundTag, StaleRoundFails) {
  RoundTag tag;
  ASSERT_TRUE(tag.try_acquire(5));
  EXPECT_FALSE(tag.try_acquire(3));
  EXPECT_FALSE(tag.try_acquire(5));
  EXPECT_TRUE(tag.try_acquire(6));
}

TEST(RoundTag, ResetRestoresInitialState) {
  RoundTag tag;
  ASSERT_TRUE(tag.try_acquire(7));
  tag.reset();
  EXPECT_EQ(tag.last_round(), kInitialRound);
  EXPECT_TRUE(tag.try_acquire(1));
}

TEST(RoundTag, RetryVariantMatchesStrictSemantics) {
  RoundTag tag;
  EXPECT_TRUE(tag.try_acquire_retry(1));
  EXPECT_FALSE(tag.try_acquire_retry(1));
  EXPECT_TRUE(tag.try_acquire_retry(2));
  EXPECT_FALSE(tag.try_acquire_retry(1));
}

TEST(RoundTag, NoSkipVariantMatchesStrictSemantics) {
  RoundTag tag;
  EXPECT_TRUE(tag.try_acquire_no_skip(1));
  EXPECT_FALSE(tag.try_acquire_no_skip(1));
  EXPECT_TRUE(tag.try_acquire_no_skip(2));
  EXPECT_FALSE(tag.try_acquire_no_skip(1));
}

/// Regression for the kInitialRound CAS seed: the old implementation's
/// first CAS compared against kInitialRound, so on a fresh tag
/// try_acquire_no_skip(kInitialRound) "won" round 0 — a round that is
/// reserved and never live (no other acquire path can win it).
TEST(RoundTag, NoSkipNeverWinsTheInitialRound) {
  RoundTag tag;
  EXPECT_FALSE(tag.try_acquire_no_skip(kInitialRound));
  EXPECT_EQ(tag.last_round(), kInitialRound);
  // The refused attempt must not have consumed anything: round 1 still wins.
  EXPECT_TRUE(tag.try_acquire_no_skip(1));
}

/// The no-skip rewrite must leave the tag monotone even when probed with
/// stale rounds: a committed round is re-stored, never regressed.
TEST(RoundTag, NoSkipStaleRoundNeverMovesTagBackward) {
  RoundTag tag;
  ASSERT_TRUE(tag.try_acquire_no_skip(9));
  EXPECT_FALSE(tag.try_acquire_no_skip(4));
  EXPECT_EQ(tag.last_round(), 9u);
  EXPECT_FALSE(tag.try_acquire_no_skip(9));
  EXPECT_EQ(tag.last_round(), 9u);
  EXPECT_TRUE(tag.try_acquire_no_skip(10));
}

TEST(RoundTag, SizeIsOneWord) {
  // §5: one auxiliary memory location per concurrent-write target.
  EXPECT_EQ(sizeof(RoundTag), sizeof(std::uint64_t));
}

/// Exactly-one-winner invariant under real contention: many OpenMP threads
/// race one tag per round, over many rounds.
TEST(RoundTagStress, ExactlyOneWinnerPerRound) {
  RoundTag tag;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());
  for (round_t round = 1; round <= kRounds; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (tag.try_acquire(round)) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << round;
  }
}

TEST(RoundTagStress, RetryExactlyOneWinnerPerRound) {
  RoundTag tag;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());
  for (round_t round = 1; round <= kRounds; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (tag.try_acquire_retry(round)) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << round;
  }
}

/// Monotone rounds from concurrent threads: with mixed rounds in flight the
/// strict single-shot contract does not apply, but the retry variant must
/// still admit at most one winner per distinct round value.
TEST(RoundTagStress, RetryMixedRoundsAtMostOneWinnerEach) {
  RoundTag tag;
  constexpr int kRoundsInFlight = 8;
  std::vector<std::atomic<int>> winners(kRoundsInFlight + 1);
  for (auto& w : winners) w.store(0);

#pragma omp parallel for num_threads(8) schedule(static)
  for (int i = 0; i < 400; ++i) {
    const round_t round = 1 + static_cast<round_t>(i % kRoundsInFlight);
    if (tag.try_acquire_retry(round)) {
      winners[static_cast<std::size_t>(round)].fetch_add(1, std::memory_order_relaxed);
    }
  }

  for (std::size_t r = 1; r < winners.size(); ++r) {
    EXPECT_LE(winners[r].load(), 1) << "round " << r;
  }
  // The largest round always ends up committed.
  EXPECT_EQ(tag.last_round(), static_cast<round_t>(kRoundsInFlight));
}

/// Mixed-round misuse torture for the STRICT single-shot acquire: distinct
/// rounds race one tag (the contract forbids it, a defensive library must
/// survive it). Guarantees that still hold off-contract: at most one winner
/// per round value, and a tag that only ever moves forward (every
/// successful CAS strictly raises it, so no ABA re-admission).
TEST(RoundTagStress, StrictMixedRoundsAtMostOneWinnerEach) {
  RoundTag tag;
  const int threads = std::max(4, omp_get_max_threads());
  constexpr int kEpochs = 300;

  std::vector<std::atomic<int>> winners(
      static_cast<std::size_t>(kEpochs) * static_cast<std::size_t>(threads) + 1);
  for (auto& w : winners) w.store(0);

#pragma omp parallel num_threads(threads)
  {
    const int tid = omp_get_thread_num();
    round_t seen_floor = kInitialRound;
    for (int e = 0; e < kEpochs; ++e) {
      // All-distinct rounds in flight: one per thread per epoch.
      const auto round = static_cast<round_t>(e * threads + tid + 1);
      if (tag.try_acquire(round)) {
        winners[static_cast<std::size_t>(round)].fetch_add(1, std::memory_order_relaxed);
      }
      const round_t now = tag.last_round();
      if (now < seen_floor) {
        ADD_FAILURE() << "tag regressed from " << seen_floor << " to " << now;
      }
      seen_floor = now;
    }
  }

  for (std::size_t r = 1; r < winners.size(); ++r) {
    ASSERT_LE(winners[r].load(), 1) << "round " << r;
  }
  EXPECT_GT(tag.last_round(), kInitialRound);
}

/// The repaired no-skip path under full same-round contention: exactly one
/// winner per round even though every contender (winner and losers alike)
/// issues an RMW.
TEST(RoundTagStress, NoSkipExactlyOneWinnerPerRound) {
  RoundTag tag;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());
  for (round_t round = 1; round <= kRounds; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (tag.try_acquire_no_skip(round)) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << round;
    ASSERT_EQ(tag.last_round(), round);
  }
}

/// Reset racing late acquires: a coordinator rewinds the tag while workers
/// hammer a fixed round window. Each era (initial state or one reset)
/// re-opens a round value at most once, so total wins are bounded by
/// (eras) * (window size) — and the schedule must not deadlock or corrupt
/// the tag word.
TEST(RoundTagStress, ResetRacingLateAcquiresBoundedWins) {
  RoundTag tag;
  const int threads = std::max(4, omp_get_max_threads());
  constexpr int kResets = 200;
  constexpr round_t kWindow = 8;
  std::atomic<std::uint64_t> total_wins{0};
  std::atomic<bool> stop{false};

#pragma omp parallel num_threads(threads)
  {
    if (omp_get_thread_num() == 0) {
      for (int e = 0; e < kResets; ++e) tag.reset();
      stop.store(true, std::memory_order_release);
    } else {
      std::uint64_t wins = 0;
      do {
        for (round_t r = 1; r <= kWindow; ++r) {
          if (tag.try_acquire(r)) ++wins;
        }
      } while (!stop.load(std::memory_order_acquire));
      total_wins.fetch_add(wins, std::memory_order_relaxed);
    }
  }

  EXPECT_GE(total_wins.load(), 1u);
  EXPECT_LE(total_wins.load(), static_cast<std::uint64_t>(kResets + 1) * kWindow);
}

}  // namespace
}  // namespace crcw
