// RoundTag unit tests: the CAS-LT primitive of paper Figure 1.
#include "core/round_tag.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace crcw {
namespace {

TEST(RoundTag, FreshTagHoldsInitialRound) {
  RoundTag tag;
  EXPECT_EQ(tag.last_round(), kInitialRound);
  EXPECT_FALSE(tag.committed(kInitialRound + 1));
}

TEST(RoundTag, FirstAcquireWins) {
  RoundTag tag;
  EXPECT_TRUE(tag.try_acquire(1));
  EXPECT_EQ(tag.last_round(), 1u);
  EXPECT_TRUE(tag.committed(1));
}

TEST(RoundTag, SecondAcquireSameRoundFails) {
  RoundTag tag;
  ASSERT_TRUE(tag.try_acquire(1));
  EXPECT_FALSE(tag.try_acquire(1));
}

TEST(RoundTag, NewRoundNeedsNoReset) {
  RoundTag tag;
  ASSERT_TRUE(tag.try_acquire(1));
  // Bumping the round re-arms the tag "for free" (paper §5).
  EXPECT_TRUE(tag.try_acquire(2));
  EXPECT_FALSE(tag.try_acquire(2));
}

TEST(RoundTag, StaleRoundFails) {
  RoundTag tag;
  ASSERT_TRUE(tag.try_acquire(5));
  EXPECT_FALSE(tag.try_acquire(3));
  EXPECT_FALSE(tag.try_acquire(5));
  EXPECT_TRUE(tag.try_acquire(6));
}

TEST(RoundTag, ResetRestoresInitialState) {
  RoundTag tag;
  ASSERT_TRUE(tag.try_acquire(7));
  tag.reset();
  EXPECT_EQ(tag.last_round(), kInitialRound);
  EXPECT_TRUE(tag.try_acquire(1));
}

TEST(RoundTag, RetryVariantMatchesStrictSemantics) {
  RoundTag tag;
  EXPECT_TRUE(tag.try_acquire_retry(1));
  EXPECT_FALSE(tag.try_acquire_retry(1));
  EXPECT_TRUE(tag.try_acquire_retry(2));
  EXPECT_FALSE(tag.try_acquire_retry(1));
}

TEST(RoundTag, NoSkipVariantMatchesStrictSemantics) {
  RoundTag tag;
  EXPECT_TRUE(tag.try_acquire_no_skip(1));
  EXPECT_FALSE(tag.try_acquire_no_skip(1));
  EXPECT_TRUE(tag.try_acquire_no_skip(2));
  EXPECT_FALSE(tag.try_acquire_no_skip(1));
}

TEST(RoundTag, SizeIsOneWord) {
  // §5: one auxiliary memory location per concurrent-write target.
  EXPECT_EQ(sizeof(RoundTag), sizeof(std::uint64_t));
}

/// Exactly-one-winner invariant under real contention: many OpenMP threads
/// race one tag per round, over many rounds.
TEST(RoundTagStress, ExactlyOneWinnerPerRound) {
  RoundTag tag;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());
  for (round_t round = 1; round <= kRounds; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (tag.try_acquire(round)) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << round;
  }
}

TEST(RoundTagStress, RetryExactlyOneWinnerPerRound) {
  RoundTag tag;
  constexpr int kRounds = 200;
  const int threads = std::max(4, omp_get_max_threads());
  for (round_t round = 1; round <= kRounds; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (tag.try_acquire_retry(round)) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1) << "round " << round;
  }
}

/// Monotone rounds from concurrent threads: with mixed rounds in flight the
/// strict single-shot contract does not apply, but the retry variant must
/// still admit at most one winner per distinct round value.
TEST(RoundTagStress, RetryMixedRoundsAtMostOneWinnerEach) {
  RoundTag tag;
  constexpr int kRoundsInFlight = 8;
  std::vector<std::atomic<int>> winners(kRoundsInFlight + 1);
  for (auto& w : winners) w.store(0);

#pragma omp parallel for num_threads(8) schedule(static)
  for (int i = 0; i < 400; ++i) {
    const round_t round = 1 + static_cast<round_t>(i % kRoundsInFlight);
    if (tag.try_acquire_retry(round)) {
      winners[static_cast<std::size_t>(round)].fetch_add(1, std::memory_order_relaxed);
    }
  }

  for (std::size_t r = 1; r < winners.size(); ++r) {
    EXPECT_LE(winners[r].load(), 1) << "round " << r;
  }
  // The largest round always ends up committed.
  EXPECT_EQ(tag.last_round(), static_cast<round_t>(kRoundsInFlight));
}

}  // namespace
}  // namespace crcw
