// Constant-time Maximum (Fig 4) — all CW methods must agree with the
// sequential reference on every input, at every thread count.
#include "algorithms/max.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "algorithms/dispatch.hpp"
#include "util/rng.hpp"

namespace crcw::algo {
namespace {

std::vector<std::uint32_t> random_list(std::uint64_t n, std::uint64_t seed,
                                       std::uint32_t bound) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> xs(n);
  for (auto& x : xs) x = static_cast<std::uint32_t>(rng.bounded(bound));
  return xs;
}

TEST(MaxSeq, BasicAndTies) {
  const std::vector<std::uint32_t> xs = {3, 9, 2, 9, 5};
  EXPECT_EQ(max_index_seq(xs), 3u) << "ties go to the last occurrence (Fig 4)";
  const std::vector<std::uint32_t> single = {42};
  EXPECT_EQ(max_index_seq(single), 0u);
}

TEST(MaxSeq, EmptyThrows) {
  EXPECT_THROW((void)max_index_seq({}), std::invalid_argument);
}

TEST(MaxReduce, MatchesSeq) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto xs = random_list(777, seed, 1000);
    EXPECT_EQ(max_index_reduce(xs), max_index_seq(xs)) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Property sweep: method × size × threads.

using MaxParam = std::tuple<std::string, std::uint64_t, int>;

class MaxMethodTest : public ::testing::TestWithParam<MaxParam> {};

TEST_P(MaxMethodTest, MatchesSequentialReference) {
  const auto& [method, n, threads] = GetParam();
  const MaxOptions opts{.threads = threads};
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto xs = random_list(n, seed * 31 + 1, 1u << 20);
    EXPECT_EQ(run_max(method, xs, opts), max_index_seq(xs))
        << method << " n=" << n << " threads=" << threads << " seed=" << seed;
  }
}

TEST_P(MaxMethodTest, HandlesAllEqualValues) {
  // The all-ties worst case: every pair writes; the survivor must be the
  // last index.
  const auto& [method, n, threads] = GetParam();
  const std::vector<std::uint32_t> xs(n, 7);
  EXPECT_EQ(run_max(method, xs, MaxOptions{.threads = threads}), n - 1);
}

TEST_P(MaxMethodTest, HandlesSortedInputs) {
  const auto& [method, n, threads] = GetParam();
  std::vector<std::uint32_t> ascending(n);
  for (std::uint64_t i = 0; i < n; ++i) ascending[i] = static_cast<std::uint32_t>(i);
  EXPECT_EQ(run_max(method, ascending, MaxOptions{.threads = threads}), n - 1);

  std::vector<std::uint32_t> descending(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    descending[i] = static_cast<std::uint32_t>(n - i);
  }
  EXPECT_EQ(run_max(method, descending, MaxOptions{.threads = threads}), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsBySizesByThreads, MaxMethodTest,
    ::testing::Combine(
        ::testing::Values("naive", "gatekeeper", "gatekeeper-skip", "caslt", "critical"),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{17},
                          std::uint64_t{128}),
        ::testing::Values(1, 4, 8)),
    [](const ::testing::TestParamInfo<MaxParam>& pinfo) {
      auto name = std::get<0>(pinfo.param) + "_n" + std::to_string(std::get<1>(pinfo.param)) +
                  "_t" + std::to_string(std::get<2>(pinfo.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MaxDispatch, UnknownMethodThrows) {
  const std::vector<std::uint32_t> xs = {1};
  EXPECT_THROW((void)run_max("bogus", xs), std::invalid_argument);
}

TEST(MaxDispatch, MethodListIsStable) {
  const auto ms = max_methods();
  ASSERT_EQ(ms.size(), 5u);
  EXPECT_EQ(ms.front(), "naive");
  EXPECT_EQ(ms[3], "caslt");
}

TEST(MaxMethods, LargerListStaysCorrect) {
  // One bigger instance (2K → 4M pair comparisons) per protected method.
  const auto xs = random_list(2000, 13, 1u << 30);
  const auto expected = max_index_seq(xs);
  EXPECT_EQ(max_index_caslt(xs), expected);
  EXPECT_EQ(max_index_gatekeeper_skip(xs), expected);
  EXPECT_EQ(max_index_naive(xs), expected);
}

}  // namespace
}  // namespace crcw::algo
