// Sparse-table range-minimum queries (substrate of the biconnectivity
// kernel's subtree low/high aggregation).
#include "util/rmq.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace crcw::util {
namespace {

TEST(Rmq, EmptyTable) {
  SparseTableRmq<int> rmq;
  EXPECT_EQ(rmq.size(), 0u);
}

TEST(Rmq, SingleElement) {
  const std::vector<int> xs = {42};
  const SparseTableRmq<int> rmq(xs);
  EXPECT_EQ(rmq.best(0, 0), 42);
  EXPECT_EQ(rmq.argbest(0, 0), 0u);
}

TEST(Rmq, SmallKnownAnswers) {
  const std::vector<int> xs = {5, 2, 8, 1, 9, 3};
  const SparseTableRmq<int> rmq(xs);
  EXPECT_EQ(rmq.best(0, 5), 1);
  EXPECT_EQ(rmq.argbest(0, 5), 3u);
  EXPECT_EQ(rmq.best(0, 2), 2);
  EXPECT_EQ(rmq.best(4, 5), 3);
  EXPECT_EQ(rmq.best(2, 2), 8);
  EXPECT_EQ(rmq.best(1, 3), 1);
}

TEST(Rmq, MaxViaGreaterComparator) {
  const std::vector<int> xs = {5, 2, 8, 1, 9, 3};
  const SparseTableRmq<int, std::greater<int>> rmq(xs);
  EXPECT_EQ(rmq.best(0, 5), 9);
  EXPECT_EQ(rmq.best(0, 2), 8);
  EXPECT_EQ(rmq.best(5, 5), 3);
}

TEST(Rmq, BadRangesThrow) {
  const std::vector<int> xs = {1, 2, 3};
  const SparseTableRmq<int> rmq(xs);
  EXPECT_THROW((void)rmq.argbest(2, 1), std::out_of_range);
  EXPECT_THROW((void)rmq.argbest(0, 3), std::out_of_range);
}

class RmqRandomTest : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(RmqRandomTest, EveryRangeMatchesLinearScan) {
  const auto& [n, threads] = GetParam();
  util::Xoshiro256 rng(n * 31 + 7);
  std::vector<std::uint64_t> xs(n);
  for (auto& x : xs) x = rng.bounded(1000);
  const SparseTableRmq<std::uint64_t> rmq(xs, threads);

  // All ranges for small n, random sample for larger.
  const std::size_t samples = n <= 64 ? 0 : 500;
  if (samples == 0) {
    for (std::size_t lo = 0; lo < n; ++lo) {
      for (std::size_t hi = lo; hi < n; ++hi) {
        const auto expected = *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo),
                                                xs.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
        ASSERT_EQ(rmq.best(lo, hi), expected) << lo << ".." << hi;
      }
    }
  } else {
    for (std::size_t s = 0; s < samples; ++s) {
      std::size_t lo = rng.bounded(n);
      std::size_t hi = rng.bounded(n);
      if (lo > hi) std::swap(lo, hi);
      const auto expected = *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo),
                                              xs.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
      ASSERT_EQ(rmq.best(lo, hi), expected) << lo << ".." << hi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RmqRandomTest,
                         ::testing::Values(std::make_tuple(std::size_t{2}, 1),
                                           std::make_tuple(std::size_t{3}, 1),
                                           std::make_tuple(std::size_t{17}, 4),
                                           std::make_tuple(std::size_t{64}, 4),
                                           std::make_tuple(std::size_t{1000}, 4),
                                           std::make_tuple(std::size_t{100000}, 8)),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(std::get<0>(pinfo.param)) + "_t" +
                                  std::to_string(std::get<1>(pinfo.param));
                         });

TEST(Rmq, ArgbestReturnsAWitness) {
  util::Xoshiro256 rng(3);
  std::vector<std::uint64_t> xs(300);
  for (auto& x : xs) x = rng.bounded(50);  // many ties
  const SparseTableRmq<std::uint64_t> rmq(xs);
  for (int s = 0; s < 100; ++s) {
    std::size_t lo = rng.bounded(xs.size());
    std::size_t hi = rng.bounded(xs.size());
    if (lo > hi) std::swap(lo, hi);
    const std::size_t arg = rmq.argbest(lo, hi);
    ASSERT_GE(arg, lo);
    ASSERT_LE(arg, hi);
    ASSERT_EQ(xs[arg], rmq.best(lo, hi));
  }
}

}  // namespace
}  // namespace crcw::util
