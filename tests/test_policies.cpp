// Write-policy contract: every policy admits exactly one winner per
// (tag, round) — the invariant all §7 kernels rest on. Parameterised over
// thread count to sweep contention levels (a property-style suite).
#include "core/policies.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <limits>
#include <string>
#include <type_traits>

#include "core/concurrent_write.hpp"

namespace crcw {
namespace {

template <WritePolicy P>
struct PolicyUnderTest {
  using policy = P;
};

template <typename T>
class PolicyContractTest : public ::testing::Test {};

using AllSingleWinnerPolicies =
    ::testing::Types<PolicyUnderTest<CasLtPolicy>, PolicyUnderTest<CasLtRetryPolicy>,
                     PolicyUnderTest<CasLtNoSkipPolicy>, PolicyUnderTest<GatekeeperPolicy>,
                     PolicyUnderTest<GatekeeperSkipPolicy>, PolicyUnderTest<CriticalPolicy>>;
TYPED_TEST_SUITE(PolicyContractTest, AllSingleWinnerPolicies);

TYPED_TEST(PolicyContractTest, SerialFirstWinsRestFail) {
  using P = typename TypeParam::policy;
  typename P::tag_type tag{};
  EXPECT_TRUE(P::try_acquire(tag, 1));
  EXPECT_FALSE(P::try_acquire(tag, 1));
  EXPECT_FALSE(P::try_acquire(tag, 1));
}

TYPED_TEST(PolicyContractTest, ResetReopensTheTag) {
  using P = typename TypeParam::policy;
  typename P::tag_type tag{};
  ASSERT_TRUE(P::try_acquire(tag, 1));
  P::reset(tag);
  EXPECT_TRUE(P::try_acquire(tag, 1));
}

TYPED_TEST(PolicyContractTest, RoundAdvanceBehaviour) {
  using P = typename TypeParam::policy;
  typename P::tag_type tag{};
  ASSERT_TRUE(P::try_acquire(tag, 1));
  if constexpr (P::kNeedsRoundReset) {
    // Round-stateful tags stay closed until reset, whatever the round.
    EXPECT_FALSE(P::try_acquire(tag, 2));
    P::reset(tag);
    EXPECT_TRUE(P::try_acquire(tag, 2));
  } else {
    // Round-aware tags re-arm by just advancing the round (§5).
    EXPECT_TRUE(P::try_acquire(tag, 2));
    EXPECT_FALSE(P::try_acquire(tag, 2));
  }
}

TYPED_TEST(PolicyContractTest, ExactlyOneWinnerUnderContention) {
  using P = typename TypeParam::policy;
  typename P::tag_type tag{};
  const int threads = std::max(4, omp_get_max_threads());
  for (round_t round = 1; round <= 100; ++round) {
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      // Several attempts per thread: models P_PRAM > P_Phys contenders.
      for (int a = 0; a < 8; ++a) {
        if (P::try_acquire(tag, round)) winners.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ASSERT_EQ(winners.load(), 1) << P::kName << " round " << round;
    if constexpr (P::kNeedsRoundReset) P::reset(tag);
  }
}

TYPED_TEST(PolicyContractTest, NameIsNonEmpty) {
  using P = typename TypeParam::policy;
  EXPECT_FALSE(std::string(P::kName).empty());
}

TEST(NaivePolicy, AdmitsEveryone) {
  NaivePolicy::tag_type tag{};
  EXPECT_TRUE(NaivePolicy::try_acquire(tag, 1));
  EXPECT_TRUE(NaivePolicy::try_acquire(tag, 1));
  static_assert(!kSingleWinner<NaivePolicy>);
  static_assert(kSingleWinner<CasLtPolicy>);
}

TEST(PaperApi, CanConWriteCASLTMatchesFigure1) {
  std::atomic<unsigned> last_round{0};
  EXPECT_TRUE(canConWriteCASLT(last_round, 1));
  EXPECT_FALSE(canConWriteCASLT(last_round, 1));
  EXPECT_TRUE(canConWriteCASLT(last_round, 2));
  EXPECT_FALSE(canConWriteCASLT(last_round, 1));  // stale round
  EXPECT_EQ(last_round.load(), 2u);
}

TEST(PaperApi, CanConWriteAtomicMatchesFigure2) {
  std::atomic<unsigned> gatekeeper{0};
  EXPECT_TRUE(canConWriteAtomic(gatekeeper));
  EXPECT_FALSE(canConWriteAtomic(gatekeeper));
  EXPECT_EQ(gatekeeper.load(), 2u);  // every call pays the RMW
  gatekeeper.store(0);               // the required re-initialisation
  EXPECT_TRUE(canConWriteAtomic(gatekeeper));
}

TEST(PaperApi, OmpAtomicCaptureFormMatchesFigure2) {
  unsigned gatekeeper = 0;
  EXPECT_TRUE(canConWriteAtomicOmp(gatekeeper));
  EXPECT_FALSE(canConWriteAtomicOmp(gatekeeper));
  EXPECT_EQ(gatekeeper, 2u);
  gatekeeper = 0;
  EXPECT_TRUE(canConWriteAtomicOmp(gatekeeper));
}

TEST(PaperApi, Round32AliasMatchesThePublishedShape) {
  // The figure API stores rounds in `unsigned` (what the paper's listings
  // declare); round32_t is that type, not a new one — existing callers that
  // pass unsigned keep compiling unchanged.
  static_assert(std::is_same_v<round32_t, unsigned>);
  static_assert(sizeof(round32_t) == 4);
  static_assert(sizeof(round_t) == 8);
}

TEST(PaperApi, ToRound32ConvertsLibraryRounds) {
  EXPECT_EQ(to_round32(kInitialRound), 0u);
  EXPECT_EQ(to_round32(round_t{1}), 1u);
  EXPECT_EQ(to_round32(round_t{0xFFFF'FFFFull}), 0xFFFF'FFFFu);
  static_assert(to_round32(round_t{42}) == 42u);  // usable in constant context

  // Driving the figure shape from a 64-bit library counter.
  std::atomic<round32_t> last_round{0};
  round_t library_round = 0;
  EXPECT_TRUE(canConWriteCASLT(last_round, to_round32(++library_round)));
  EXPECT_FALSE(canConWriteCASLT(last_round, to_round32(library_round)));
  EXPECT_TRUE(canConWriteCASLT(last_round, to_round32(++library_round)));
}

TEST(PaperApi, Round32WrapHazardIsTheDocumentedOne) {
  // What the 32-bit figure shape does at its horizon — the hazard the
  // round_t interfaces avoid: once the tag saturates, every later round is
  // "stale" and refused. to_round32's debug assert exists so a 64-bit
  // counter cannot silently wrap into this regime.
  std::atomic<round32_t> last_round{std::numeric_limits<round32_t>::max()};
  EXPECT_FALSE(canConWriteCASLT(last_round, 1));  // wrapped round looks stale
  EXPECT_FALSE(canConWriteCASLT(last_round, std::numeric_limits<round32_t>::max()));
}

TEST(PaperApi, ToRound32RefusesToCrossTheWrapHorizon) {
  // The first library round the figure shape cannot represent. In debug
  // builds the checked narrowing trips its assert instead of wrapping; with
  // NDEBUG it truncates — producing exactly the stale-looking round the
  // wrap-hazard comment describes (2^32 → 0 < any committed tag).
  constexpr round_t kWrap = round_t{1} << 32;
#ifdef NDEBUG
  EXPECT_EQ(to_round32(kWrap), 0u);
  EXPECT_EQ(to_round32(kWrap + 7), 7u);
#else
  EXPECT_DEATH((void)to_round32(kWrap), "wrap horizon");
#endif
  // The last representable round converts exactly; one past it is the
  // boundary the assert guards.
  EXPECT_EQ(to_round32(kWrap - 1), std::numeric_limits<round32_t>::max());
}

TEST(PaperApi, OmpAtomicCaptureExactlyOneWinnerUnderContention) {
  const int threads = std::max(4, omp_get_max_threads());
  for (int round = 0; round < 100; ++round) {
    unsigned gatekeeper = 0;
    std::atomic<int> winners{0};
#pragma omp parallel num_threads(threads)
    {
      if (canConWriteAtomicOmp(gatekeeper)) winners.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_EQ(winners.load(), 1);
    ASSERT_EQ(gatekeeper, static_cast<unsigned>(threads));
  }
}

}  // namespace
}  // namespace crcw
