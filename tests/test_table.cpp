// Table formatting / CSV export.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace crcw::util {
namespace {

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::fmt(0.5), "0.500");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"method", "time_ms"});
  t.add_row({"caslt", "1.5"});
  t.add_row({"gatekeeper", "3.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("caslt"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvRoundTrippableShape) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Table, SaveCsvCreatesDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "crcw_table_test";
  std::filesystem::remove_all(dir);
  Table t({"x"});
  t.add_row({"1"});
  const auto path = (dir / "sub" / "out.csv").string();
  t.save_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace crcw::util
