#!/usr/bin/env python3
"""Validate and compare machine-readable benchmark results (BENCH_*.json).

The bench binaries emit one schema-stable JSON document each (schema
"crcw-bench", see scripts/bench_schema.json and src/obs/bench_report.hpp).
This tool is the CI regression gate over those documents:

  bench_compare.py BASELINE_DIR CURRENT_DIR          # full gate
  bench_compare.py --validate-only CURRENT_DIR       # schema check alone
  bench_compare.py --counters-only BASELINE_DIR CURRENT_DIR

Gate semantics, per row matched on (bench, series, threads, n, m):

  * timing — FAIL when current median_ns exceeds the baseline median by
    more than --threshold (default 0.15 = 15%), widened per row to three
    baseline coefficients of variation (3·stddev_ns/median_ns) when the
    baseline's own reps disperse more than the floor — a row is never
    flagged for varying less than its committed baseline demonstrably
    varies. Medians, not means: one noisy rep must not trip the gate.
  * counters — attempts/atomics/wins are compared with a relative
    tolerance (--counter-tol, default 0.25). Contended counts are
    scheduling-dependent, so mismatches WARN by default and only fail
    under --counters-strict. `rounds` and `wins` of single-winner
    policies are deterministic in theory, but cross-machine baselines
    may legitimately differ in sweep shape, so strictness is opt-in.

Exit codes: 0 = gate passed, 1 = validation failure or regression,
2 = usage / IO error. No third-party dependencies (runs on a bare
python3): the schema file is interpreted by the small validator below
rather than by the `jsonschema` package.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent / "bench_schema.json"

# refills / reset_tags / tombstones / reclaimed / group_loads /
# fingerprint_false_positives are additive within schema_version 1:
# baselines emitted before they existed simply lack them, so each counter
# is compared only when both sides carry it. probe_p50/probe_p99 are
# deliberately NOT gated: they are upper bounds of power-of-two histogram
# buckets, so a one-bucket shift doubles the value — far too coarse for a
# relative-tolerance comparison.
COUNTER_FIELDS = (
    "attempts",
    "atomics",
    "failures",
    "wins",
    "rounds",
    "refills",
    "reset_tags",
    "tombstones",
    "reclaimed",
    "group_loads",
    "fingerprint_false_positives",
)


# --------------------------------------------------------------------------
# Minimal JSON-Schema-subset validator (type/const/required/properties/
# items/minimum) — enough for bench_schema.json, no dependencies.


def _type_ok(value, expected):
    types = expected if isinstance(expected, list) else [expected]
    for t in types:
        if t == "object" and isinstance(value, dict):
            return True
        if t == "array" and isinstance(value, list):
            return True
        if t == "string" and isinstance(value, str):
            return True
        if t == "integer" and isinstance(value, int) and not isinstance(value, bool):
            return True
        if (
            t == "number"
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        ):
            return True
        if t == "boolean" and isinstance(value, bool):
            return True
        if t == "null" and value is None:
            return True
    return False


def validate(value, schema, path="$"):
    """Returns a list of human-readable schema violations."""
    errors = []
    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return errors
    if "type" in schema and not _type_ok(value, schema["type"]):
        errors.append(f"{path}: expected type {schema['type']}, got {value!r}")
        return errors
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required member {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                errors.extend(validate(value[key], sub, f"{path}.{key}"))
    elif isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    return errors


# --------------------------------------------------------------------------
# Loading and comparison


def load_dir(directory: Path):
    """Returns {bench_name: doc} for every BENCH_*.json in `directory`."""
    docs = {}
    for f in sorted(directory.glob("BENCH_*.json")):
        try:
            doc = json.loads(f.read_text())
        except json.JSONDecodeError as e:
            raise SystemExit(f"error: {f}: not valid JSON: {e}")
        docs[doc.get("bench", f.stem)] = (f, doc)
    return docs


def validate_docs(docs, schema):
    failures = 0
    for bench, (path, doc) in docs.items():
        errors = validate(doc, schema)
        if errors:
            failures += 1
            print(f"SCHEMA FAIL {path}")
            for e in errors[:20]:
                print(f"    {e}")
        else:
            print(f"schema ok   {path} ({len(doc['rows'])} rows)")
    return failures


def report_presence(base_docs, cur_docs):
    """Doc-level presence notice. A BENCH file on only one side is not a row
    mismatch but a whole benchmark appearing or retiring; say so explicitly,
    otherwise a brand-new bench silently skips the gate (no overlapping rows)
    and a stale baseline lingers forever. Notices, not failures: adding or
    retiring a benchmark is a legitimate change — the notice tells the author
    which baseline refresh to run."""
    for bench in sorted(set(cur_docs) - set(base_docs)):
        path, doc = cur_docs[bench]
        print(f"NEW      {path.name}: benchmark only in current "
              f"({len(doc['rows'])} rows, not gated) — commit a baseline via "
              f"scripts/run_bench_smoke.sh build bench_results/baseline")
    for bench in sorted(set(base_docs) - set(cur_docs)):
        path, doc = base_docs[bench]
        print(f"REMOVED  {path.name}: benchmark only in baseline "
              f"({len(doc['rows'])} rows) — delete the committed BENCH file "
              f"if the bench was intentionally retired")


def row_index(docs):
    index = {}
    for bench, (_path, doc) in docs.items():
        for row in doc["rows"]:
            key = (bench, row["series"], row["threads"], row["n"], row["m"])
            index[key] = row
    return index


def fmt_key(key):
    bench, series, threads, n, m = key
    return f"{bench}:{series} t={threads} n={n} m={m}"


def row_threshold(base_row, threshold):
    """Per-row regression threshold: the --threshold floor, widened to three
    baseline coefficients of variation when the baseline's own reps disperse
    more than the floor allows. A row cannot be flagged for varying less than
    its committed baseline already varies rep-to-rep (the CC figures converge
    in a nondeterministic number of iterations, so their wall time legitimately
    moves run to run; the baseline's stddev records exactly how much)."""
    base_med = base_row["median_ns"]
    stddev = base_row.get("stddev_ns")
    if not stddev or base_med <= 0:
        return threshold
    return max(threshold, 3.0 * stddev / base_med)


def compare_timing(base_index, cur_index, threshold):
    regressions = 0
    compared = 0
    for key, base_row in sorted(base_index.items()):
        cur_row = cur_index.get(key)
        if cur_row is None:
            print(f"MISSING  {fmt_key(key)} (in baseline, not in current)")
            continue
        base_med, cur_med = base_row["median_ns"], cur_row["median_ns"]
        if base_med <= 0:
            continue
        compared += 1
        ratio = cur_med / base_med
        delta = (ratio - 1.0) * 100.0
        row_thresh = row_threshold(base_row, threshold)
        if ratio > 1.0 + row_thresh:
            regressions += 1
            print(
                f"REGRESS  {fmt_key(key)}: {base_med:.0f}ns -> {cur_med:.0f}ns "
                f"({delta:+.1f}% > {row_thresh * 100:.0f}% threshold)"
            )
        else:
            print(f"ok       {fmt_key(key)}: {delta:+.1f}%")
    return compared, regressions


def compare_counters(base_index, cur_index, tol, strict):
    mismatches = 0
    compared = 0
    for key, base_row in sorted(base_index.items()):
        cur_row = cur_index.get(key)
        if cur_row is None:
            continue
        base_c, cur_c = base_row["counters"], cur_row["counters"]
        if base_c is None or cur_c is None:
            if (base_c is None) != (cur_c is None):
                print(f"COUNTERS {fmt_key(key)}: presence changed "
                      f"(baseline {'has' if base_c else 'lacks'} counters, "
                      f"current {'has' if cur_c else 'lacks'})")
                mismatches += 1
            continue
        compared += 1
        for field in COUNTER_FIELDS:
            if field not in base_c or field not in cur_c:
                continue
            b, c = base_c[field], cur_c[field]
            if b == c:
                continue
            rel = abs(c - b) / max(b, 1)
            if rel > tol:
                mismatches += 1
                print(
                    f"COUNTERS {fmt_key(key)}.{field}: {b} -> {c} "
                    f"({rel * 100:.1f}% > {tol * 100:.0f}% tolerance)"
                )
    label = "failures" if strict else "warnings"
    print(f"counters: {compared} rows compared, {mismatches} {label}")
    return mismatches if strict else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Regression gate over BENCH_*.json benchmark results."
    )
    parser.add_argument("dirs", nargs="+", type=Path,
                        help="BASELINE_DIR CURRENT_DIR (CURRENT_DIR alone "
                             "with --validate-only)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative median slowdown that fails the gate "
                             "(default 0.15)")
    parser.add_argument("--counter-tol", type=float, default=0.25,
                        help="relative counter drift reported (default 0.25)")
    parser.add_argument("--counters-strict", action="store_true",
                        help="counter drift beyond tolerance fails the gate")
    parser.add_argument("--validate-only", action="store_true",
                        help="schema-check CURRENT_DIR, skip comparison")
    parser.add_argument("--counters-only", action="store_true",
                        help="compare counters, skip the timing gate")
    args = parser.parse_args(argv)

    schema = json.loads(SCHEMA_PATH.read_text())

    if args.validate_only:
        if len(args.dirs) != 1:
            parser.error("--validate-only takes exactly one directory")
        docs = load_dir(args.dirs[0])
        if not docs:
            print(f"error: no BENCH_*.json in {args.dirs[0]}", file=sys.stderr)
            return 2
        return 1 if validate_docs(docs, schema) else 0

    if len(args.dirs) != 2:
        parser.error("expected BASELINE_DIR CURRENT_DIR")
    base_docs = load_dir(args.dirs[0])
    cur_docs = load_dir(args.dirs[1])
    if not base_docs:
        print(f"error: no BENCH_*.json in {args.dirs[0]}", file=sys.stderr)
        return 2
    if not cur_docs:
        print(f"error: no BENCH_*.json in {args.dirs[1]}", file=sys.stderr)
        return 2

    failures = validate_docs(base_docs, schema) + validate_docs(cur_docs, schema)
    report_presence(base_docs, cur_docs)
    base_index, cur_index = row_index(base_docs), row_index(cur_docs)

    if not args.counters_only:
        compared, regressions = compare_timing(base_index, cur_index, args.threshold)
        if compared == 0:
            print("error: no overlapping rows between baseline and current",
                  file=sys.stderr)
            return 2
        failures += regressions
        print(f"timing: {compared} rows compared, {regressions} regressions "
              f"(threshold {args.threshold * 100:.0f}%)")

    failures += compare_counters(base_index, cur_index, args.counter_tol,
                                 args.counters_strict)

    print("gate PASSED" if failures == 0 else f"gate FAILED ({failures} failures)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
