#!/usr/bin/env bash
# Reduced-size benchmark pass: the nightly CI job and the source of the
# committed baseline under bench_results/baseline/.
#
#   scripts/run_bench_smoke.sh [build-dir] [out-dir]
#
# CRCW_BENCH_SMOKE=1 makes every harness truncate its sweeps (size sweeps
# keep their first point, thread sweeps keep {1,2}) and paper_tables runs
# --quick with 2 reps, so one full pass stays in CI-minutes territory while
# still emitting a schema-valid BENCH_<name>.json per binary for
# scripts/bench_compare.py.
#
# To refresh the committed baseline after an intentional perf change (or
# on new reference hardware):
#
#   scripts/run_bench_smoke.sh build bench_results/baseline
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_results/smoke}"
MIN_TIME="${CRCW_BENCH_MIN_TIME:-0.02}"
mkdir -p "$OUT_DIR"
export CRCW_BENCH_SMOKE=1
export CRCW_BENCH_JSON_DIR="$OUT_DIR"

echo "== environment =="
nproc || true
echo "OMP_WAIT_POLICY=${OMP_WAIT_POLICY:-unset} CRCW_BENCH_THREADS=${CRCW_BENCH_THREADS:-unset}"

echo "== paper_tables (quick, 2 reps) =="
"$BUILD_DIR/bench/paper_tables" --quick --reps 2 > "$OUT_DIR/paper_tables.txt"

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  case "$name" in
    paper_tables|CMakeFiles|*.cmake|CTestTestfile.cmake) continue ;;
  esac
  [ -x "$bench" ] || continue
  echo "== $name =="
  "$bench" --benchmark_min_time="$MIN_TIME" > "$OUT_DIR/$name.txt"
done

echo "smoke results (BENCH_*.json + tables) in $OUT_DIR/"
