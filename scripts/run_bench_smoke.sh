#!/usr/bin/env bash
# Reduced-size benchmark pass: the nightly CI job and the source of the
# committed baseline under bench_results/baseline/.
#
#   scripts/run_bench_smoke.sh [build-dir] [out-dir]
#
# CRCW_BENCH_SMOKE=1 makes every harness truncate its sweeps (size sweeps
# keep their first point, thread sweeps keep {1,2}) and paper_tables runs
# --quick with 3 reps, so one full pass stays in CI-minutes territory while
# still emitting a schema-valid BENCH_<name>.json per binary for
# scripts/bench_compare.py. New bench binaries are picked up by the glob
# below automatically — micro_reset (sparse vs full gatekeeper reset, with
# the refills/reset_tags counters) rides in this pass and the nightly
# bench-smoke workflow without further registration.
#
# To refresh the committed baseline after an intentional perf change (or
# on new reference hardware):
#
#   scripts/run_bench_smoke.sh build bench_results/baseline
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_results/smoke}"
# 0.1s per measurement and 3 reps for paper_tables: the regression gate
# compares medians one-sided, so the smoke pass needs enough samples that a
# single descheduled rep cannot move the median past the 15% threshold
# (median-of-2 is a mean; median-of-3 drops the outlier).
MIN_TIME="${CRCW_BENCH_MIN_TIME:-0.1}"
mkdir -p "$OUT_DIR"
export CRCW_BENCH_SMOKE=1
export CRCW_BENCH_JSON_DIR="$OUT_DIR"

echo "== environment =="
nproc || true
echo "OMP_WAIT_POLICY=${OMP_WAIT_POLICY:-unset} CRCW_BENCH_THREADS=${CRCW_BENCH_THREADS:-unset}"

echo "== paper_tables (quick, 3 reps) =="
"$BUILD_DIR/bench/paper_tables" --quick --reps 3 > "$OUT_DIR/paper_tables.txt"

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  case "$name" in
    paper_tables|CMakeFiles|*.cmake|CTestTestfile.cmake) continue ;;
  esac
  [ -x "$bench" ] || continue
  echo "== $name =="
  "$bench" --benchmark_min_time="$MIN_TIME" > "$OUT_DIR/$name.txt"
done

echo "smoke results (BENCH_*.json + tables) in $OUT_DIR/"
