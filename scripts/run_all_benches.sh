#!/usr/bin/env bash
# Regenerates every benchmark result in one pass.
#
#   scripts/run_all_benches.sh [build-dir] [out-dir]
#
# Produces:
#   out-dir/paper_tables.txt + per-figure CSVs   (Figures 5-12 summaries)
#   out-dir/<bench>.txt                          (every google-benchmark binary)
#   out-dir/BENCH_<bench>.json                   (machine-readable, schema
#                                                 crcw-bench; see
#                                                 docs/reproducing.md)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_results}"
mkdir -p "$OUT_DIR"
export CRCW_BENCH_JSON_DIR="$OUT_DIR"

echo "== environment =="
nproc || true
echo "OMP_WAIT_POLICY=${OMP_WAIT_POLICY:-unset} CRCW_BENCH_THREADS=${CRCW_BENCH_THREADS:-unset}"

echo "== paper_tables (Figures 5-12) =="
"$BUILD_DIR/bench/paper_tables" --csv-dir "$OUT_DIR" | tee "$OUT_DIR/paper_tables.txt"

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  case "$name" in
    paper_tables|CMakeFiles|*.cmake|CTestTestfile.cmake) continue ;;
  esac
  [ -x "$bench" ] || continue
  echo "== $name =="
  "$bench" --benchmark_min_time=0.05 | tee "$OUT_DIR/$name.txt"
done

echo "all benchmark outputs in $OUT_DIR/ (tables: *.txt, machine-readable: BENCH_*.json)"
