// bfs_demo — Rodinia-style level-synchronous BFS (paper Figure 3) on a
// random or file-loaded graph, across all concurrent-write methods, with
// structural validation of the arbitrary-CW parent tree.
//
//   ./build/examples/bfs_demo --vertices 100000 --edges 1000000 --threads 4
//   ./build/examples/bfs_demo --load graph.txt --source 5
#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/dispatch.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reference.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) try {
  const crcw::util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const auto source = static_cast<crcw::graph::vertex_t>(cli.get_uint("source", 0));

  crcw::graph::Csr g;
  if (const auto path = cli.get("load"); path.has_value() && !path->empty()) {
    // Accept any of the three formats: binary CSR, Rodinia, edge list.
    try {
      g = crcw::graph::load_csr_binary(*path);
    } catch (const std::exception&) {
      try {
        g = crcw::graph::load_rodinia(*path).graph;
      } catch (const std::exception&) {
        const auto loaded = crcw::graph::load_edge_list(*path);
        g = crcw::graph::build_csr(loaded.num_vertices, loaded.edges);
      }
    }
    std::printf("loaded %s: ", path->c_str());
  } else {
    const std::uint64_t n = cli.get_uint("vertices", 100'000);
    const std::uint64_t m = cli.get_uint("edges", 1'000'000);
    g = crcw::graph::random_graph(n, m, cli.get_uint("seed", 42));
    std::printf("generated G(n=%llu, m=%llu): ", static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(m));
  }
  std::printf("%llu vertices, %llu directed edge slots, max degree %llu\n",
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.max_degree()));
  std::printf("environment: %s\n\n", crcw::util::environment_summary().c_str());

  const auto ref = crcw::graph::bfs_levels(g, source);
  std::uint64_t reached = 0;
  std::int64_t depth = 0;
  for (const auto l : ref) {
    if (l >= 0) {
      ++reached;
      depth = std::max(depth, l);
    }
  }
  std::printf("reference BFS from %u: %llu reachable vertices, eccentricity %lld\n\n",
              source, static_cast<unsigned long long>(reached),
              static_cast<long long>(depth));

  auto methods = crcw::algo::bfs_methods();
  methods.push_back("frontier");
  methods.push_back("direction-optimizing");

  crcw::util::Table table({"method", "time_ms", "rounds", "levels_ok", "tree_ok"});
  for (const auto& method : methods) {
    double best = 1e300;
    crcw::algo::BfsResult result;
    for (int r = 0; r < reps; ++r) {
      crcw::util::Timer timer;
      result = crcw::algo::run_bfs(method, g, source, {.threads = threads});
      best = std::min(best, timer.seconds());
    }
    bool levels_ok = true;
    for (std::size_t v = 0; v < ref.size(); ++v) levels_ok &= result.level[v] == ref[v];
    // The naive method guarantees levels only (§4); the protected methods
    // must also produce a consistent parent tree.
    const bool tree_ok =
        crcw::graph::validate_bfs_tree(g, source, result.level, result.parent);
    table.add_row({method, crcw::util::Table::fmt(best * 1e3),
                   std::to_string(result.rounds), levels_ok ? "yes" : "NO",
                   tree_ok ? "yes" : (method == "naive" ? "n/a (unsafe by design)" : "NO")});
    if (!levels_ok || (!tree_ok && method != "naive")) return 1;
  }
  table.print(std::cout);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
