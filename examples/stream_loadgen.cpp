// stream_loadgen — drive a streaming wire server (edge updates +
// connectivity queries) over real TCP.
//
// Two modes:
//
//   client (default)   connect to a running BasicWireServer<StreamScheduler>
//                      and pump edge ops through WireClients — the external
//                      process bench/ext_stream.cpp spawns for its wire
//                      sweep:
//                        stream_loadgen --port 9000 --ops 32768
//                                       --threads 2 --vertices 16384
//                      Prints one summary line and exits 0 iff every op
//                      completed and the connectivity audit held.
//
//   --self-host        bring up a stream session + wire server on an
//                      ephemeral loopback port in-process, then run the
//                      client path against it — the ctest
//                      example_stream_loadgen smoke entry.
//
// The workload: each client thread owns a disjoint vertex block, so its
// connectivity expectations are exact despite other clients' traffic.
// Cycles of: build a path (pipelined) → query both ends connected and the
// component size (RYW via the wire round protocol) → erase the middle
// edge → query the split → tear down. Between cycles a pipelined burst of
// Zipf-skewed same_component probes models the read-heavy hot tail.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "serve/serve_server.hpp"
#include "serve/serve_session.hpp"
#include "serve/wire_client.hpp"
#include "stream/stream_scheduler.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using StreamSession = crcw::serve::BasicServeSession<crcw::stream::StreamScheduler>;
using StreamWireServer = crcw::serve::BasicWireServer<crcw::stream::StreamScheduler>;

struct ClientStats {
  std::uint64_t ops = 0;
  std::uint64_t won = 0;
  std::uint64_t stale_retries = 0;
  std::uint64_t audit_failures = 0;
};

/// One client thread: audit cycles over its own vertex block until `ops`
/// operations have been issued.
ClientStats run_client(const std::string& host, std::uint16_t port, int tid,
                       int threads, std::uint64_t ops, std::uint32_t vertices,
                       std::uint64_t window) {
  namespace sv = crcw::serve;
  sv::WireClient client(host, port);
  ClientStats stats;

  // Disjoint block: [base, base + block); single writer → exact audits.
  const std::uint32_t span = vertices / static_cast<std::uint32_t>(threads);
  const std::uint32_t base = static_cast<std::uint32_t>(tid) * span;
  const std::uint32_t block = std::min<std::uint32_t>(span, 32);
  if (block < 4) return stats;  // audit needs a real path

  crcw::graph::ZipfSampler zipf(block, 0.9,
                                0x5eedULL + static_cast<std::uint64_t>(tid));
  const auto one = [&](const sv::Op& op) {
    const sv::wire::Response r = client.call(op);
    ++stats.ops;
    if (r.won) ++stats.won;
    return r;
  };
  const auto audit = [&](bool ok, const char* what) {
    if (!ok) {
      ++stats.audit_failures;
      std::fprintf(stderr, "stream_loadgen: audit failed (%s), client %d\n", what,
                   tid);
    }
  };

  while (stats.ops < ops) {
    // Build the path base..base+block-1 as one pipelined window.
    std::vector<sv::Op> path;
    for (std::uint32_t v = 1; v < block; ++v) {
      path.push_back(sv::Op::edge_insert(base + v - 1, base + v, v));
    }
    const auto built = client.pipeline(path, window);
    stats.ops += built.size();
    for (const auto& r : built) {
      if (r.won) ++stats.won;
    }
    audit(built.size() == path.size(), "pipeline completion");

    // RYW connectivity: the wire protocol re-issues stale reads, so these
    // must observe every committed insert above.
    audit(one(sv::Op::same_component(base, base + block - 1)).value == 1,
          "path ends connected");
    audit(one(sv::Op::component_size(base)).value == block, "component size");

    // Split at the middle edge, check both sides.
    const std::uint32_t mid = base + block / 2;
    audit(one(sv::Op::edge_erase(mid - 1, mid)).won, "erase won");
    audit(one(sv::Op::same_component(base, base + block - 1)).value == 0,
          "split observed");
    audit(one(sv::Op::component_size(base)).value == block / 2, "half size");

    // Zipf-skewed read burst over the block (hot vertices probed most).
    std::vector<sv::Op> probes;
    for (std::uint64_t i = 0; i < window; ++i) {
      const auto u = static_cast<std::uint32_t>(zipf.next());
      const auto v = static_cast<std::uint32_t>(zipf.next());
      probes.push_back(sv::Op::same_component(base + u, base + v));
    }
    const auto probed = client.pipeline(probes, window);
    stats.ops += probed.size();
    for (const auto& r : probed) {
      if (r.won) ++stats.won;
    }
    audit(probed.size() == probes.size(), "probe completion");

    // Tear down so the next cycle starts clean (edge-table churn).
    std::vector<sv::Op> down;
    for (std::uint32_t v = 1; v < block; ++v) {
      if (v != block / 2) down.push_back(sv::Op::edge_erase(base + v - 1, base + v));
    }
    const auto torn = client.pipeline(down, window);
    stats.ops += torn.size();
    for (const auto& r : torn) {
      if (r.won) ++stats.won;
    }
    audit(one(sv::Op::component_size(base)).value == 1, "teardown isolated");
  }
  stats.stale_retries = client.stale_retries();
  return stats;
}

int run(const crcw::util::Cli& cli) {
  const std::string host = cli.get_string("host", "127.0.0.1");
  auto port = static_cast<std::uint16_t>(cli.get_uint("port", 0));
  const std::uint64_t ops = cli.get_uint("ops", 1 << 14);
  const int threads = static_cast<int>(cli.get_uint("threads", 2));
  const std::uint64_t window = cli.get_uint("window", 64);
  const auto vertices = static_cast<std::uint32_t>(cli.get_uint("vertices", 1 << 14));
  const bool self_host = cli.get_bool("self-host", false);

  StreamSession* session = nullptr;
  StreamWireServer* server = nullptr;
  if (self_host) {
    const auto cfg = crcw::serve::ServeConfig{}
                         .with_vertices(vertices)
                         .with_expected_keys(1 << 12)
                         .with_max_wait_us(100);
    session = new StreamSession(cfg);
    session->start_pump();
    server = new StreamWireServer(*session, cfg.wire);
    server->start();
    port = server->port();
  } else if (port == 0) {
    std::fprintf(stderr, "stream_loadgen: --port is required (or --self-host)\n");
    return 2;
  }

  crcw::util::Timer timer;
  std::vector<ClientStats> stats(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  const std::uint64_t per_thread = ops / static_cast<std::uint64_t>(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      stats[static_cast<std::size_t>(t)] =
          run_client(host, port, t, threads, per_thread, vertices, window);
    });
  }
  for (auto& w : workers) w.join();
  const double secs = timer.seconds();

  ClientStats total;
  for (const ClientStats& s : stats) {
    total.ops += s.ops;
    total.won += s.won;
    total.stale_retries += s.stale_retries;
    total.audit_failures += s.audit_failures;
  }
  std::printf("stream_loadgen: ops=%" PRIu64 " won=%" PRIu64 " stale_retries=%" PRIu64
              " audit_failures=%" PRIu64 " secs=%.3f ops_per_sec=%.0f\n",
              total.ops, total.won, total.stale_retries, total.audit_failures, secs,
              static_cast<double>(total.ops) / (secs > 0 ? secs : 1e-9));

  int rc = 0;
  if (total.ops < per_thread * static_cast<std::uint64_t>(threads)) rc = 1;
  if (total.audit_failures != 0) rc = 1;

  if (server != nullptr) {
    server->stop();
    session->stop_pump();
    const auto st = session->stats();
    std::printf("stream_loadgen: server rounds=%" PRIu64 " served=%" PRIu64
                " edges=%" PRIu64 " components=%" PRIu64 " rebuilds=%" PRIu64
                " p99_commit_us=%.1f\n",
                st.rounds, st.ops_served, session->backend().graph().edges(),
                session->backend().cc().components(),
                session->backend().cc().rebuilds(),
                static_cast<double>(session->metrics().p99_enqueue_to_commit_ns()) /
                    1e3);
    if (st.ops_served < total.ops) rc = 1;
    delete server;
    delete session;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const crcw::util::Cli cli(argc, argv);
  return run(cli);
}
