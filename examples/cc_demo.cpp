// cc_demo — Awerbuch–Shiloach Connected Components (paper §7.2) across the
// concurrent-write methods, validated against union–find, plus the Borůvka
// MSF extension driven by priority concurrent writes.
//
//   ./build/examples/cc_demo --vertices 50000 --edges 500000 --threads 4
#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "algorithms/boruvka.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/dispatch.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) try {
  const crcw::util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("vertices", 50'000);
  const std::uint64_t m = cli.get_uint("edges", 500'000);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const std::uint64_t seed = cli.get_uint("seed", 42);

  const auto g = crcw::graph::random_graph(n, m, seed);
  const std::uint64_t expected = crcw::graph::count_components(g);
  std::printf("G(n=%llu, m=%llu): %llu connected components (union-find)\n",
              static_cast<unsigned long long>(n), static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(expected));
  std::printf("environment: %s\n\n", crcw::util::environment_summary().c_str());

  crcw::util::Table table({"method", "time_ms", "iterations", "components", "partition_ok"});
  for (const auto& method : crcw::algo::cc_methods()) {
    double best = 1e300;
    crcw::algo::CcResult result;
    for (int r = 0; r < reps; ++r) {
      crcw::util::Timer timer;
      result = crcw::algo::run_cc(method, g, {.threads = threads});
      best = std::min(best, timer.seconds());
    }
    const bool ok = crcw::graph::validate_components(g, result.label);
    table.add_row({method, crcw::util::Table::fmt(best * 1e3),
                   std::to_string(result.iterations), std::to_string(result.components),
                   ok ? "yes" : "NO"});
    if (!ok) return 1;
  }
  table.print(std::cout);

  // ---- Extension: Borůvka MSF via priority concurrent writes --------------
  const std::uint64_t msf_edges = std::min<std::uint64_t>(m, 200'000);
  const auto wedges = crcw::algo::random_weighted_edges(n, msf_edges, 100'000, seed);
  crcw::util::Timer timer;
  const auto msf = crcw::algo::boruvka_msf(n, wedges, {.threads = threads});
  const double msf_s = timer.seconds();
  const std::uint64_t kruskal = crcw::algo::msf_weight_kruskal(n, wedges);
  std::printf("\nBoruvka MSF (priority CW, %llu weighted edges): weight=%llu in %.3f ms, "
              "%llu rounds — Kruskal agrees: %s\n",
              static_cast<unsigned long long>(msf_edges),
              static_cast<unsigned long long>(msf.total_weight), msf_s * 1e3,
              static_cast<unsigned long long>(msf.rounds),
              msf.total_weight == kruskal ? "yes" : "NO");
  return msf.total_weight == kruskal ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
