// pram_sim_demo — the CRCW PRAM *model* simulator as a teaching tool:
// run classic one-step CRCW programs under different memory-access modes,
// watch conflict resolution happen, and see exclusive-write modes reject
// the same programs (the §2 taxonomy, executable).
//
//   ./build/examples/pram_sim_demo [--n 16] [--seed 1]
#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "sim/programs.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using crcw::sim::AccessMode;
using crcw::sim::ModelViolation;
using crcw::sim::Simulator;
using crcw::sim::word_t;

void banner(const char* title) { std::printf("\n--- %s ---\n", title); }

}  // namespace

int main(int argc, char** argv) try {
  const crcw::util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("n", 16);
  const std::uint64_t seed = cli.get_uint("seed", 1);

  crcw::util::Xoshiro256 rng(seed);
  std::vector<word_t> list(n);
  for (auto& x : list) x = static_cast<word_t>(rng.bounded(100));

  std::printf("input list:");
  for (const auto x : list) std::printf(" %lld", static_cast<long long>(x));
  std::printf("\n");

  banner("constant-time Maximum on CRCW-Common (Fig 4, one parallel step)");
  {
    Simulator sim(AccessMode::kCommon, 1, seed);
    const auto idx = crcw::sim::programs::max_constant_time(sim, list);
    const auto& stats = sim.history().back();
    std::printf("max = list[%llu] = %lld\n", static_cast<unsigned long long>(idx),
                static_cast<long long>(list[idx]));
    std::printf("work=%llu depth=%llu; step used %llu processors, %llu writes into %llu "
                "cells, max contention %llu\n",
                static_cast<unsigned long long>(sim.counters().work),
                static_cast<unsigned long long>(sim.counters().depth),
                static_cast<unsigned long long>(stats.processors),
                static_cast<unsigned long long>(stats.writes),
                static_cast<unsigned long long>(stats.cells_written),
                static_cast<unsigned long long>(stats.max_contention));
  }

  banner("the same program on CREW fails — concurrent writes are illegal");
  try {
    Simulator sim(AccessMode::kCREW, 1, seed);
    (void)crcw::sim::programs::max_constant_time(sim, list);
    std::printf("UNEXPECTED: no violation raised\n");
    return 1;
  } catch (const ModelViolation& v) {
    std::printf("ModelViolation as expected: %s\n", v.what());
  }

  banner("parallel OR in one step (the classic CRCW vs CREW separator)");
  {
    Simulator sim(AccessMode::kCommon, 1, seed);
    std::vector<word_t> bits(n, 0);
    bits[n / 2] = 1;
    const bool result = crcw::sim::programs::parallel_or(sim, bits);
    std::printf("OR = %d (depth %llu)\n", result ? 1 : 0,
                static_cast<unsigned long long>(sim.counters().depth));
  }

  banner("Priority(min-value): first set bit in one step");
  {
    Simulator sim(AccessMode::kPriorityMinValue, 1, seed);
    std::vector<word_t> bits(n, 0);
    bits[n / 3] = bits[n - 1] = 1;
    std::printf("first_one = %llu\n",
                static_cast<unsigned long long>(crcw::sim::programs::first_one(sim, bits)));
  }

  banner("Arbitrary CW: different seeds, different winners, same levels");
  {
    // A tiny diamond graph: both 1 and 2 discover 3; the arbitrary rule
    // picks the parent. Levels never change; the parent may.
    const std::vector<std::uint64_t> offsets = {0, 2, 4, 6, 8};
    const std::vector<std::uint32_t> edges = {1, 2, 0, 3, 0, 3, 1, 2};
    for (const std::uint64_t s : {0ull, 1ull, 2ull, 3ull}) {
      Simulator sim(AccessMode::kArbitrary, 1, s);
      const auto r = crcw::sim::programs::bfs(sim, offsets, edges, 0);
      std::printf("seed %llu: level(3)=%lld parent(3)=%lld\n",
                  static_cast<unsigned long long>(s), static_cast<long long>(r.level[3]),
                  static_cast<long long>(r.parent[3]));
    }
  }

  banner("traced execution: watch conflict resolution happen (--trace full for accesses)");
  {
    Simulator sim(AccessMode::kArbitrary, 4, seed);
    const bool full = cli.get_string("trace", "") == "full";
    sim.set_trace(&std::cout, {.accesses = full, .resolutions = true, .summary = true});
    sim.step(6, [](Simulator::Proc& p) {
      // Three processors fight over cell 2; the arbitrary rule picks one.
      if (p.id() < 3) p.write(2, static_cast<word_t>(100 + p.id()));
      if (p.id() >= 3) p.write(3, 7);  // a common write on cell 3
    });
    sim.set_trace(nullptr);
  }

  banner("pointer jumping to roots on CREW (no concurrent writes needed)");
  {
    Simulator sim(AccessMode::kCREW, 1, seed);
    std::vector<std::uint64_t> parent(n);
    parent[0] = 0;
    for (std::uint64_t i = 1; i < n; ++i) parent[i] = i - 1;  // one long chain
    const auto roots = crcw::sim::programs::pointer_jump_roots(sim, parent);
    std::printf("chain of %llu collapsed to root %llu in depth %llu (log-steps)\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(roots[n - 1]),
                static_cast<unsigned long long>(sim.counters().depth));
  }

  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
