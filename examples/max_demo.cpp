// max_demo — the constant-time Maximum algorithm (paper Figure 4) end to
// end: generate a list, run every concurrent-write method, verify they
// agree, and report per-method timings.
//
//   ./build/examples/max_demo --n 4096 --threads 4 --reps 3
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <vector>

#include "algorithms/dispatch.hpp"
#include "algorithms/max.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) try {
  const crcw::util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("n", 4096);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int reps = static_cast<int>(cli.get_int("reps", 3));

  std::printf("constant-time Maximum: n=%llu (%llu pair comparisons), %d threads\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(n * n), threads);
  std::printf("environment: %s\n\n", crcw::util::environment_summary().c_str());

  crcw::util::Xoshiro256 rng(cli.get_uint("seed", 42));
  std::vector<std::uint32_t> list(n);
  for (auto& x : list) x = static_cast<std::uint32_t>(rng.bounded(1u << 30));

  const std::uint64_t expected = crcw::algo::max_index_seq(list);
  std::printf("sequential reference: max = list[%llu] = %u\n\n",
              static_cast<unsigned long long>(expected), list[expected]);

  crcw::util::Table table({"method", "time_ms", "result", "ok"});
  for (const auto& method : crcw::algo::max_methods()) {
    double best = 1e300;
    std::uint64_t got = 0;
    for (int r = 0; r < reps; ++r) {
      crcw::util::Timer timer;
      got = crcw::algo::run_max(method, list, {.threads = threads});
      best = std::min(best, timer.seconds());
    }
    table.add_row({method, crcw::util::Table::fmt(best * 1e3), std::to_string(got),
                   got == expected ? "yes" : "NO"});
    if (got != expected) {
      std::fprintf(stderr, "MISMATCH for %s\n", method.c_str());
      return 1;
    }
  }
  table.print(std::cout);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
