// analytics_demo — the extension algorithms in one pipeline: take a graph,
// compute connected components (and the spanning forest the hooks record),
// biconnected components + articulation points, a maximal matching, the
// k-core decomposition, and root a spanning tree via Euler tours. Every
// stage is validated against its sequential reference before printing.
//
//   ./build/examples/analytics_demo --vertices 2000 --extra 3000 --threads 4
#include <algorithm>
#include <cstdio>
#include <exception>
#include <iostream>
#include <set>
#include <vector>

#include "algorithms/bicc.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/matching.hpp"
#include "algorithms/tree_ops.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

/// Connected simple graph: random spanning tree + extra distinct edges.
crcw::graph::EdgeList connected_simple_graph(std::uint64_t n, std::uint64_t extra,
                                             std::uint64_t seed) {
  using crcw::graph::vertex_t;
  auto edges = crcw::graph::random_tree(n, seed);
  std::set<std::uint64_t> used;
  for (const auto& e : edges) {
    used.insert((static_cast<std::uint64_t>(std::min(e.u, e.v)) << 32) |
                std::max(e.u, e.v));
  }
  crcw::util::Xoshiro256 rng(seed + 1);
  std::uint64_t added = 0;
  while (added < extra) {
    const auto u = static_cast<vertex_t>(rng.bounded(n));
    auto v = static_cast<vertex_t>(rng.bounded(n - 1));
    if (v >= u) ++v;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
    if (used.insert(key).second) {
      edges.push_back({u, v});
      ++added;
    }
  }
  return edges;
}

}  // namespace

int main(int argc, char** argv) try {
  const crcw::util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("vertices", 2000);
  const std::uint64_t extra = cli.get_uint("extra", 3000);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const std::uint64_t seed = cli.get_uint("seed", 42);

  const auto edges = connected_simple_graph(n, extra, seed);
  const auto g = crcw::graph::build_csr(n, edges);
  std::printf("connected simple graph: n=%llu, undirected edges=%zu\n",
              static_cast<unsigned long long>(n), edges.size());
  print_stats(std::cout, crcw::graph::compute_stats(g));

  // --- connected components + hook forest ---------------------------------
  {
    crcw::util::Timer t;
    const auto cc = crcw::algo::cc_caslt(g, {.threads = threads});
    const bool ok = crcw::graph::validate_components(g, cc.label) &&
                    cc.forest_edges.size() == n - cc.components;
    std::printf("\nCC (A-S, caslt): %llu component(s), forest of %zu hooks, %.3f ms — %s\n",
                static_cast<unsigned long long>(cc.components), cc.forest_edges.size(),
                t.seconds() * 1e3, ok ? "valid" : "INVALID");
    if (!ok) return 1;
  }

  // --- biconnectivity -------------------------------------------------------
  {
    crcw::util::Timer t;
    const auto bicc = crcw::algo::biconnected_components(n, edges, {.threads = threads});
    std::uint64_t arts = 0;
    for (const auto a : bicc.is_articulation) arts += a;
    std::printf("BiCC (Tarjan-Vishkin): %llu component(s), %llu articulation point(s), "
                "%zu bridge(s), %.3f ms\n",
                static_cast<unsigned long long>(bicc.components),
                static_cast<unsigned long long>(arts), bicc.bridges.size(),
                t.seconds() * 1e3);
  }

  // --- maximal matching -----------------------------------------------------
  {
    crcw::util::Timer t;
    const auto m = crcw::algo::maximal_matching(n, edges, {.threads = threads});
    const bool ok = crcw::algo::validate_matching(n, edges, m);
    std::printf("Maximal matching (priority CW): %zu edges in %llu rounds, %.3f ms — %s\n",
                m.edges.size(), static_cast<unsigned long long>(m.rounds),
                t.seconds() * 1e3, ok ? "valid+maximal" : "INVALID");
    if (!ok) return 1;
  }

  // --- k-core ---------------------------------------------------------------
  {
    crcw::util::Timer t;
    const auto kc = crcw::algo::kcore(g, {.threads = threads});
    const bool ok = kc.core == crcw::algo::kcore_seq(g);
    std::printf("k-core (combining decrements): degeneracy %u, %llu peel waves, "
                "%.3f ms — %s\n",
                kc.degeneracy, static_cast<unsigned long long>(kc.peel_rounds),
                t.seconds() * 1e3, ok ? "matches reference" : "MISMATCH");
    if (!ok) return 1;
  }

  // --- Euler-tour rooting of a spanning tree -------------------------------
  {
    const auto cc = crcw::algo::cc_caslt(g, {.threads = threads});
    crcw::graph::EdgeList tree_edges;
    std::vector<crcw::graph::vertex_t> slot_src(g.num_edges());
    for (crcw::graph::vertex_t u = 0; u < n; ++u) {
      for (auto j = g.offset(u); j < g.offset(u) + g.degree(u); ++j) slot_src[j] = u;
    }
    for (const auto j : cc.forest_edges) {
      tree_edges.push_back({slot_src[j], g.targets()[j]});
    }
    const auto tree = crcw::graph::build_csr(n, tree_edges);
    crcw::util::Timer t;
    const auto rooted = crcw::algo::root_tree(tree, 0, {.threads = threads});
    std::uint64_t max_depth = 0;
    for (const auto d : rooted.depth) max_depth = std::max(max_depth, d);
    std::printf("Euler-tour rooting of the hook forest: height %llu, root subtree %llu, "
                "%.3f ms\n",
                static_cast<unsigned long long>(max_depth),
                static_cast<unsigned long long>(rooted.subtree[0]), t.seconds() * 1e3);
  }

  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
