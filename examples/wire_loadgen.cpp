// wire_loadgen — drive a serve wire server over real TCP.
//
// Two modes:
//
//   client (default)   connect to a running server and pump ops through
//                      pipelined WireClients — the external-process load
//                      generator bench/ext_serve.cpp spawns for its wire
//                      sweep:
//                        wire_loadgen --port 9000 --ops 65536 --threads 2 \
//                                     --window 64 --mixed
//                      Prints one summary line and exits 0 iff every op
//                      completed and the read-your-writes audit held.
//
//   --self-host        bring up a ShardedServeSession + WireServer on an
//                      ephemeral loopback port in-process, then run the
//                      client path against it — a socket-to-socket smoke
//                      test with no external orchestration (the ctest
//                      example_wire_loadgen entry).
//
// The workload: each client thread owns a key range; --mixed alternates
// upsert/lookup per op (lookups audited to see the thread's own latest
// write via the wire RYW protocol), otherwise it is upsert-only.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve_server.hpp"
#include "serve/serve_session.hpp"
#include "serve/wire_client.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

struct ClientStats {
  std::uint64_t ops = 0;
  std::uint64_t won = 0;
  std::uint64_t stale_retries = 0;
  std::uint64_t audit_failures = 0;
};

/// One client thread: `ops` ops over its own key block, windowed pipeline.
ClientStats run_client(const std::string& host, std::uint16_t port, int tid,
                       std::uint64_t ops, std::uint64_t window, bool mixed) {
  crcw::serve::WireClient client(host, port);
  ClientStats stats;

  // Own key block so the RYW audit has a single writer per key; values
  // encode the write index so staleness is detectable.
  const std::uint64_t base = static_cast<std::uint64_t>(tid + 1) << 32;
  constexpr std::uint64_t kKeySpan = 512;

  std::vector<crcw::serve::Op> batch;
  std::vector<std::uint64_t> expect;  // per lookup: the latest value written
  std::vector<std::uint64_t> latest(kKeySpan, 0);
  batch.reserve(window * 2);
  std::uint64_t issued = 0;
  while (issued < ops) {
    batch.clear();
    expect.clear();
    // One window's worth of work, submitted as a pipeline: the windows
    // keep writes and their audit lookups in separate pipeline calls, so
    // a lookup's RYW retry loop always has the write's round on record.
    while (issued < ops && batch.size() < window) {
      const std::uint64_t k = issued % kKeySpan;
      if (mixed && issued % 2 != 0) {
        batch.push_back(crcw::serve::Op::lookup(base + k));
        expect.push_back(latest[k]);
      } else {
        const std::uint64_t v = issued + 1;
        batch.push_back(crcw::serve::Op::upsert(base + k, v));
        latest[k] = v;
        expect.push_back(0);
      }
      ++issued;
    }
    const auto replies = client.pipeline(batch, window);
    for (std::size_t i = 0; i < replies.size(); ++i) {
      ++stats.ops;
      if (replies[i].won) ++stats.won;
      if (batch[i].kind != crcw::serve::OpKind::kLookup) continue;
      // RYW audit: this thread is its keys' only writer, so a lookup must
      // see exactly the last value the thread wrote before this window.
      if (expect[i] != 0 && replies[i].value < expect[i]) ++stats.audit_failures;
    }
  }
  stats.stale_retries = client.stale_retries();
  return stats;
}

int run(const crcw::util::Cli& cli) {
  const std::string host = cli.get_string("host", "127.0.0.1");
  auto port = static_cast<std::uint16_t>(cli.get_uint("port", 0));
  const std::uint64_t ops = cli.get_uint("ops", 1 << 14);
  const int threads = static_cast<int>(cli.get_uint("threads", 2));
  const std::uint64_t window = cli.get_uint("window", 64);
  const bool mixed = cli.get_bool("mixed", false);
  const bool self_host = cli.get_bool("self-host", false);

  // Self-host mode owns the whole loop: session → server → clients.
  crcw::serve::ShardedServeSession* session = nullptr;
  crcw::serve::WireServer* server = nullptr;
  if (self_host) {
    const auto cfg = crcw::serve::ServeConfig{}
                         .with_shards(static_cast<int>(cli.get_uint("shards", 4)))
                         .with_max_wait_us(100)
                         .with_counters(true);
    session = new crcw::serve::ShardedServeSession(cfg);
    server = new crcw::serve::WireServer(*session, cfg.wire);
    server->start();
    port = server->port();
  } else if (port == 0) {
    std::fprintf(stderr, "wire_loadgen: --port is required (or --self-host)\n");
    return 2;
  }

  crcw::util::Timer timer;
  std::vector<ClientStats> stats(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  const std::uint64_t per_thread = ops / static_cast<std::uint64_t>(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      stats[static_cast<std::size_t>(t)] =
          run_client(host, port, t, per_thread, window, mixed);
    });
  }
  for (auto& w : workers) w.join();
  const double secs = timer.seconds();

  ClientStats total;
  for (const ClientStats& s : stats) {
    total.ops += s.ops;
    total.won += s.won;
    total.stale_retries += s.stale_retries;
    total.audit_failures += s.audit_failures;
  }
  std::printf("wire_loadgen: ops=%" PRIu64 " won=%" PRIu64 " stale_retries=%" PRIu64
              " audit_failures=%" PRIu64 " secs=%.3f ops_per_sec=%.0f\n",
              total.ops, total.won, total.stale_retries, total.audit_failures,
              secs, static_cast<double>(total.ops) / (secs > 0 ? secs : 1e-9));

  int rc = 0;
  if (total.ops != per_thread * static_cast<std::uint64_t>(threads)) rc = 1;
  if (total.audit_failures != 0) rc = 1;

  if (server != nullptr) {
    server->stop();
    const auto st = session->stats();
    std::printf("wire_loadgen: server rounds=%" PRIu64 " served=%" PRIu64
                " shards=%d hit_rate=%.3f p99_commit_us=%.1f\n",
                st.rounds, st.ops_served, st.shards,
                session->metrics().routing_hit_rate(),
                static_cast<double>(session->metrics().p99_enqueue_to_commit_ns()) / 1e3);
    if (st.ops_served < total.ops) rc = 1;
    delete server;
    delete session;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const crcw::util::Cli cli(argc, argv);
  return run(cli);
}
