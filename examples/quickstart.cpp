// Quickstart: the CAS-LT concurrent write in ~60 lines.
//
// Scenario: 8 OpenMP threads all want to announce "the answer" into one
// shared cell, PRAM-style — an *arbitrary* concurrent write. We run three
// rounds; in each round exactly one thread wins, the rest skip the write
// entirely, and nobody needs to re-initialise anything between rounds.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <omp.h>

#include <cstdio>

#include "core/concurrent_write.hpp"

int main() {
  // A concurrent-write cell: payload + conflict-resolution tag in one
  // object. CasLtPolicy is the paper's method; swap in GatekeeperPolicy or
  // CriticalPolicy to feel the difference.
  crcw::ConWriteCell<int, crcw::CasLtPolicy> cell;

  const int threads = 8;
  std::printf("running %d threads, 3 concurrent-write rounds\n", threads);

  for (crcw::round_t round = 1; round <= 3; ++round) {
    int winner = -1;

#pragma omp parallel num_threads(threads)
    {
      const int me = omp_get_thread_num();
      // Every thread offers its own value — only one store happens.
      if (cell.try_write(round, me * 100)) {
        winner = me;  // only the winner executes this branch
      }
    }
    // The implicit barrier at the end of the parallel region is the PRAM
    // synchronisation point: reads below see the winner's write.
    std::printf("round %llu: thread %d won, cell = %d\n",
                static_cast<unsigned long long>(round), winner, cell.read());
  }

  // The same primitive in its raw Figure-1 form, for C-style call sites:
  std::atomic<unsigned> last_round_updated{0};
  int raw_winners = 0;
#pragma omp parallel num_threads(threads)
  {
    if (crcw::canConWriteCASLT(last_round_updated, 1)) {
#pragma omp atomic
      ++raw_winners;
    }
  }
  std::printf("canConWriteCASLT admitted %d winner(s) out of %d threads\n",
              raw_winners, threads);
  return 0;
}
