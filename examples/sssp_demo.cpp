// sssp_demo — single-source shortest paths driven by priority concurrent
// writes: the two-phase PriorityCell protocol (with CAS-LT tie-breaking on
// the multi-word (dist, parent) commit) vs the combining fetch-min
// formulation, both validated against Dijkstra.
//
//   ./build/examples/sssp_demo --vertices 20000 --edges 100000 --threads 4
#include <cstdio>
#include <exception>
#include <iostream>

#include "algorithms/sssp.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) try {
  const crcw::util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("vertices", 20'000);
  const std::uint64_t m = cli.get_uint("edges", 100'000);
  const auto max_w = static_cast<std::uint32_t>(cli.get_uint("max-weight", 1000));
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const auto source = static_cast<crcw::graph::vertex_t>(cli.get_uint("source", 0));

  const auto edges =
      crcw::algo::random_weighted_edges(n, m, max_w, cli.get_uint("seed", 42));
  std::printf("weighted G(n=%llu, m=%llu), weights in [0, %u], source %u\n",
              static_cast<unsigned long long>(n), static_cast<unsigned long long>(m),
              max_w, source);
  std::printf("environment: %s\n\n", crcw::util::environment_summary().c_str());

  crcw::util::Timer ref_timer;
  const auto expected = crcw::algo::sssp_dijkstra(n, edges, source);
  const double ref_ms = ref_timer.seconds() * 1e3;
  std::uint64_t reachable = 0;
  for (const auto d : expected) reachable += d != crcw::algo::kUnreachable ? 1 : 0;
  std::printf("Dijkstra reference: %.3f ms, %llu reachable vertices\n\n", ref_ms,
              static_cast<unsigned long long>(reachable));

  crcw::util::Table table({"method", "time_ms", "rounds", "valid"});
  const auto run = [&](const char* name, auto fn) {
    double best = 1e300;
    crcw::algo::SsspResult r;
    for (int rep = 0; rep < reps; ++rep) {
      crcw::util::Timer timer;
      r = fn(n, edges, source, crcw::algo::SsspOptions{.threads = threads});
      best = std::min(best, timer.seconds());
    }
    const bool ok = crcw::algo::validate_sssp(n, edges, source, r);
    table.add_row({name, crcw::util::Table::fmt(best * 1e3), std::to_string(r.rounds),
                   ok ? "yes" : "NO"});
    return ok;
  };

  bool all_ok = true;
  all_ok &= run("two-phase priority CW", [](auto... args) {
    return crcw::algo::sssp_two_phase(args...);
  });
  all_ok &= run("fetch-min combining CW", [](auto... args) {
    return crcw::algo::sssp_fetch_min(args...);
  });
  table.print(std::cout);
  return all_ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
