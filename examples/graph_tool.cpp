// graph_tool — generate, convert, and inspect benchmark graphs from the
// command line; the standalone face of the graph substrate.
//
//   graph_tool gen --kind gnm --vertices 1000 --edges 5000 --out g.txt
//   graph_tool gen --kind rmat --vertices 1024 --edges 8192 --out g.csr --format binary
//   graph_tool convert g.txt --out g.graph --format rodinia --source 0
//   graph_tool stats g.txt
//
// Formats: edgelist (text), binary (CSR), rodinia (the BFS-suite layout the
// paper's kernels consume).
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reference.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"

namespace {

using namespace crcw::graph;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  graph_tool gen     --kind gnm|gnm-simple|rmat|path|cycle|star|grid|tree|components\n"
               "                     --vertices N [--edges M] [--seed S] [--rows R --cols C]\n"
               "                     [--k K --per P --extra E]\n"
               "                     --out FILE [--format edgelist|binary|rodinia] [--source V]\n"
               "  graph_tool convert IN --out FILE [--format ...] [--source V]\n"
               "  graph_tool stats   IN\n");
  std::exit(2);
}

EdgeList generate(const crcw::util::Cli& cli, std::uint64_t& n_out) {
  const std::string kind = cli.get_string("kind", "gnm");
  const std::uint64_t n = cli.get_uint("vertices", 1000);
  const std::uint64_t m = cli.get_uint("edges", 4 * n);
  const std::uint64_t seed = cli.get_uint("seed", 42);
  n_out = n;
  if (kind == "gnm") return gnm(n, m, seed);
  if (kind == "gnm-simple") return gnm_simple(n, m, seed);
  if (kind == "rmat") {
    // round n_out up to the power of two rmat actually uses
    std::uint64_t size = 1;
    while (size < n) size *= 2;
    n_out = size;
    return rmat(n, m, seed);
  }
  if (kind == "path") return path(n);
  if (kind == "cycle") return cycle(n);
  if (kind == "star") return star(n);
  if (kind == "tree") return random_tree(n, seed);
  if (kind == "grid") {
    const std::uint64_t rows = cli.get_uint("rows", 32);
    const std::uint64_t cols = cli.get_uint("cols", 32);
    n_out = rows * cols;
    return grid2d(rows, cols);
  }
  if (kind == "components") {
    const std::uint64_t k = cli.get_uint("k", 4);
    const std::uint64_t per = cli.get_uint("per", 256);
    const std::uint64_t extra = cli.get_uint("extra", per / 4);
    n_out = k * per;
    return planted_components(k, per, extra, seed);
  }
  std::fprintf(stderr, "unknown --kind '%s'\n", kind.c_str());
  usage();
}

/// Recovers the undirected edge list from a symmetrised CSR: each pair kept
/// once (u <= v), so re-symmetrising on save does not double the graph.
EdgeList undirected_edges(const Csr& g) {
  EdgeList out;
  out.reserve(g.num_edges() / 2);
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    for (const vertex_t v : g.neighbors(u)) {
      if (u <= v) out.push_back({u, v});
    }
  }
  return out;
}

/// Loads any supported input by extension-agnostic sniffing: binary magic,
/// else rodinia (leading integer + node records), else edge list.
std::pair<std::uint64_t, EdgeList> load_any(const std::string& path) {
  try {
    const Csr g = load_csr_binary(path);
    return {g.num_vertices(), undirected_edges(g)};
  } catch (const std::exception&) {
  }
  try {
    const RodiniaGraph rg = load_rodinia(path);
    return {rg.graph.num_vertices(), undirected_edges(rg.graph)};
  } catch (const std::exception&) {
  }
  const LoadedEdgeList el = load_edge_list(path);
  return {el.num_vertices, el.edges};
}

void save(const crcw::util::Cli& cli, std::uint64_t n, const EdgeList& edges) {
  const std::string out = cli.get_string("out", "");
  if (out.empty()) usage();
  const std::string format = cli.get_string("format", "edgelist");

  if (format == "edgelist") {
    save_edge_list(out, n, edges);
  } else if (format == "binary") {
    save_csr_binary(out, build_csr(n, edges));
  } else if (format == "rodinia") {
    const auto source = static_cast<vertex_t>(cli.get_uint("source", 0));
    save_rodinia(out, build_csr(n, edges), source);
  } else {
    std::fprintf(stderr, "unknown --format '%s'\n", format.c_str());
    usage();
  }
  std::printf("wrote %s (%llu vertices, %llu undirected edges, %s)\n", out.c_str(),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(edges.size()), format.c_str());
}

void stats(const std::string& path) {
  const auto [n, edges] = load_any(path);
  const Csr g = build_csr(n, edges);
  std::printf("%s:\n", path.c_str());
  std::printf("  undirected edges   %llu\n",
              static_cast<unsigned long long>(edges.size()));
  print_stats(std::cout, compute_stats(g));
  if (n > 0) {
    const auto levels = bfs_levels(g, 0);
    std::int64_t ecc = 0;
    for (const auto l : levels) ecc = std::max(ecc, l);
    std::printf("  eccentricity(0)    %lld\n", static_cast<long long>(ecc));
  }
}

}  // namespace

int main(int argc, char** argv) try {
  const crcw::util::Cli cli(argc, argv);
  if (cli.positional().empty()) usage();
  const std::string& command = cli.positional()[0];

  if (command == "gen") {
    std::uint64_t n = 0;
    const EdgeList edges = generate(cli, n);
    save(cli, n, edges);
    return 0;
  }
  if (command == "convert") {
    if (cli.positional().size() < 2) usage();
    const auto [n, edges] = load_any(cli.positional()[1]);
    save(cli, n, edges);
    return 0;
  }
  if (command == "stats") {
    if (cli.positional().size() < 2) usage();
    stats(cli.positional()[1]);
    return 0;
  }
  usage();
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
